// Reproduces paper Table 1: the four dataset moments for the EU ISP, CDN
// and Internet2 traces, measured on the synthetic reproductions and
// printed against the paper's values.
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Table 1 — Data sets used in the evaluation",
                "Measured moments of the synthetic datasets vs the paper.");

  std::vector<workload::DatasetStats> measured;
  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
        workload::DatasetKind::Internet2}) {
    measured.push_back(workload::compute_stats(bench::dataset(kind)));
  }
  std::cout << "Measured (seed 42, 400 flows):\n";
  workload::print_table1(std::cout, measured);

  std::cout << "\nPaper Table 1 targets:\n";
  util::TextTable paper({"Data set", "w-avg dist (mi)", "CV dist",
                         "Aggregate (Gbps)", "CV demand"});
  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
        workload::DatasetKind::Internet2}) {
    const auto spec = workload::paper_spec(kind);
    paper.add_row(std::string(spec.name),
                  {spec.wavg_distance_miles, spec.cv_distance,
                   spec.aggregate_gbps, spec.cv_demand},
                  2);
  }
  paper.print(std::cout);
  return 0;
}
