// Shared setup for the per-figure benchmark binaries.
//
// Every binary regenerates one table or figure from the paper using the
// paper's default parameters (§4.2.2): price sensitivity alpha = 1.1,
// blended rate P0 = $20, linear cost with base fraction theta = 0.2, and
// logit no-purchase share s0 = 0.2. Datasets are the seeded synthetic
// reproductions of Table 1.
#pragma once

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "pricing/counterfactual.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/table1.hpp"

namespace manytiers::bench {

struct Defaults {
  double alpha = 1.1;
  double blended_price = 20.0;
  double theta = 0.2;
  double s0 = 0.2;
  std::uint64_t seed = 42;
  std::size_t n_flows = 400;
  std::size_t max_bundles = 6;
};

inline workload::FlowSet dataset(workload::DatasetKind kind,
                                 const Defaults& d = {}) {
  return workload::generate_dataset(kind,
                                    {.seed = d.seed, .n_flows = d.n_flows});
}

inline pricing::Market market(const workload::FlowSet& flows,
                              demand::DemandKind demand_kind,
                              const cost::CostModel& cost_model,
                              const Defaults& d = {}) {
  pricing::DemandSpec spec;
  spec.kind = demand_kind;
  spec.alpha = d.alpha;
  spec.no_purchase_share = d.s0;
  return pricing::Market::calibrate(flows, spec, cost_model, d.blended_price);
}

inline pricing::Market linear_market(workload::DatasetKind kind,
                                     demand::DemandKind demand_kind,
                                     const Defaults& d = {}) {
  const auto flows = dataset(kind, d);
  const auto cost = cost::make_linear_cost(d.theta);
  return market(flows, demand_kind, *cost, d);
}

// Capture-vs-bundles table: one row per strategy (Figs. 8 and 9).
inline util::TextTable capture_table(
    const pricing::Market& m, const std::vector<pricing::Strategy>& strategies,
    std::size_t max_bundles) {
  std::vector<std::string> headers{"Strategy"};
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    headers.push_back("B=" + std::to_string(b));
  }
  util::TextTable table(std::move(headers));
  for (const auto s : strategies) {
    table.add_row(std::string(to_string(s)),
                  pricing::capture_series(m, s, max_bundles), 3);
  }
  return table;
}

// Theta-sweep table (Figs. 10-13): one row per theta, columns are bundle
// counts. As in the paper, profits are normalized to the highest profit
// headroom observed across the whole figure, so plateaus show how much
// attainable profit each theta setting leaves on the table.
template <typename CostFactory>
util::TextTable theta_sweep_table(const workload::FlowSet& flows,
                                  demand::DemandKind kind,
                                  const CostFactory& make_cost,
                                  const std::vector<double>& thetas,
                                  pricing::Strategy strategy,
                                  const Defaults& d = {}) {
  struct Row {
    double theta;
    double original;
    std::vector<double> profits;
  };
  std::vector<Row> rows;
  double best_headroom = 0.0;
  for (const double theta : thetas) {
    const auto cost = make_cost(theta);
    const auto m = market(flows, kind, *cost, d);
    Row row;
    row.theta = theta;
    row.original = pricing::blended_profit(m);
    for (std::size_t b = 1; b <= d.max_bundles; ++b) {
      // The class-aware strategy needs one bundle per class; fall back to
      // plain profit-weighted below that (same convention as
      // capture_series).
      const auto effective =
          (strategy == pricing::Strategy::ClassAwareProfitWeighted &&
           b < m.cost_class_count())
              ? pricing::Strategy::ProfitWeighted
              : strategy;
      row.profits.push_back(
          pricing::run_strategy(m, effective, b).pricing.profit);
    }
    best_headroom =
        std::max(best_headroom, pricing::max_profit(m) - row.original);
    rows.push_back(std::move(row));
  }
  std::vector<std::string> headers{"theta"};
  for (std::size_t b = 1; b <= d.max_bundles; ++b) {
    headers.push_back("B=" + std::to_string(b));
  }
  util::TextTable table(std::move(headers));
  for (const auto& row : rows) {
    std::vector<double> cells;
    for (const double profit : row.profits) {
      cells.push_back((profit - row.original) / best_headroom);
    }
    table.add_row(util::format_double(row.theta, 2), cells, 3);
  }
  return table;
}

inline const char* demand_name(demand::DemandKind kind) {
  return kind == demand::DemandKind::ConstantElasticity
             ? "Constant Elasticity Demand"
             : "Logit Demand";
}

inline void header(const char* figure, const char* summary) {
  // The bench binaries take no flags, so MANYTIERS_TRACE is how a run
  // gets a Perfetto timeline; header() is the one call they all share.
  obs::maybe_start_trace_from_env();
  std::cout << "==================================================\n"
            << figure << "\n"
            << summary << "\n"
            << "==================================================\n\n";
}

// --- Timing harness ---
//
// Wall-clock measurement with warmup iterations (caches, allocator, CPU
// frequency settle) followed by `reps` timed repetitions; the reported
// figure is the median, which shrugs off one-off scheduler hiccups that
// poison means. Results are also emitted as one JSON object per line
// (prefixed "BENCH_JSON ") so future PRs can scrape a perf trajectory
// out of bench logs without parsing the human tables.

struct TimingOptions {
  std::size_t warmup = 1;
  std::size_t reps = 5;
};

template <typename Fn>
double median_wall_ms(Fn&& fn, const TimingOptions& opt = {}) {
  for (std::size_t i = 0; i < opt.warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(opt.reps);
  for (std::size_t i = 0; i < opt.reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 == 1
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

// Process resource footprint from getrusage: peak RSS plus cumulative
// user/system CPU. Reported alongside wall time so bench logs carry a
// memory trajectory too; note max_rss_kb is a process high-water mark,
// so within one binary later benches inherit earlier benches' peak.
struct ResourceUsage {
  long max_rss_kb = 0;
  double cpu_user_s = 0.0;
  double cpu_sys_s = 0.0;
};

inline ResourceUsage resource_usage() {
  ResourceUsage usage;
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.max_rss_kb = ru.ru_maxrss;  // Linux reports kilobytes
    usage.cpu_user_s = static_cast<double>(ru.ru_utime.tv_sec) +
                       static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    usage.cpu_sys_s = static_cast<double>(ru.ru_stime.tv_sec) +
                      static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
  }
  return usage;
}

inline void emit_timing_json(const std::string& name, std::size_t n,
                             double wall_ms, std::size_t threads) {
  const ResourceUsage usage = resource_usage();
  std::cout << "BENCH_JSON {\"bench\":\"" << name << "\",\"n\":" << n
            << ",\"wall_ms\":" << wall_ms << ",\"threads\":" << threads
            << ",\"max_rss_kb\":" << usage.max_rss_kb
            << ",\"cpu_user_s\":" << usage.cpu_user_s
            << ",\"cpu_sys_s\":" << usage.cpu_sys_s << "}\n";
}

// Time `fn` (median of reps after warmup), emit the JSON record, and
// return the median for further reporting.
template <typename Fn>
double run_timed(const std::string& name, std::size_t n, std::size_t threads,
                 Fn&& fn, const TimingOptions& opt = {}) {
  const double ms = median_wall_ms(fn, opt);
  emit_timing_json(name, n, ms, threads);
  return ms;
}

}  // namespace manytiers::bench
