// Extension bench: price wars between competing transit ISPs — the
// dynamic interaction the paper explicitly leaves out of its model
// (§3.2.1, "our model does not capture full dynamic interaction between
// competing ISPs (e.g., price wars)").
//
// We build a logit duopoly over the calibrated EU ISP flows and answer
// three questions the paper's framework raises naturally:
//   1. How much of the monopoly profit does a head-to-head rival erode?
//   2. Does a cost advantage translate into share and profit?
//   3. Does *tiered* pricing still pay under competition — i.e. does a
//      cost-based tiering ISP beat a blended-rate ISP with equal costs?
#include "bench_common.hpp"

#include "market/competition.hpp"
#include "util/optimize.hpp"

namespace {

using namespace manytiers;

// Best response restricted to a single blended price for every flow.
std::vector<double> blended_best_response(const market::Duopoly& duopoly,
                                          const market::Transiter& self,
                                          const market::Transiter& rival) {
  // A blended rate may sit below the costliest flows (cheap flows
  // subsidize them, paper §2.1), so the search spans (0, vmax].
  const auto profit_at = [&](double price) {
    market::Transiter trial = self;
    trial.prices.assign(self.costs.size(), price);
    return duopoly.profit(trial, rival);
  };
  const double vmax = *std::max_element(duopoly.valuations().begin(),
                                        duopoly.valuations().end());
  const auto peak = util::maximize_scalar(profit_at, 1e-3, vmax + 20.0);
  return std::vector<double>(self.costs.size(), peak.x);
}

// Alternate best responses where each side uses its own strategy
// (tiered = per-flow equal markup; blended = one price).
struct WarOutcome {
  market::Transiter a, b;
  int rounds = 0;
};

WarOutcome price_war(const market::Duopoly& duopoly, market::Transiter a,
                     bool a_tiered, market::Transiter b, bool b_tiered,
                     int max_rounds = 400) {
  WarOutcome out;
  for (int round = 1; round <= max_rounds; ++round) {
    out.rounds = round;
    double change = 0.0;
    const auto respond = [&](market::Transiter& self, bool tiered,
                             const market::Transiter& rival) {
      auto next = tiered ? duopoly.best_response(self, rival)
                         : blended_best_response(duopoly, self, rival);
      for (std::size_t i = 0; i < next.size(); ++i) {
        change = std::max(change, std::abs(next[i] - self.prices[i]));
      }
      self.prices = std::move(next);
    };
    respond(a, a_tiered, b);
    respond(b, b_tiered, a);
    if (change < 1e-9) break;
  }
  out.a = std::move(a);
  out.b = std::move(b);
  return out;
}

}  // namespace

int main() {
  bench::header("Extension — transit price wars (logit duopoly)",
                "Best-response dynamics between two ISPs over the EU ISP "
                "flows; monopoly vs duopoly, and tiered vs blended.");

  // Calibrate the EU ISP market to get realistic valuations and costs.
  const auto m = bench::linear_market(workload::DatasetKind::EuIsp,
                                      demand::DemandKind::Logit);
  market::CompetitionConfig config;
  config.alpha = m.demand_spec().alpha;
  config.market_size = m.logit().market_size();
  const market::Duopoly duopoly(m.valuations(), config);

  const auto transiter = [&](const char* name, double cost_scale) {
    market::Transiter t;
    t.name = name;
    for (const double c : m.costs()) t.costs.push_back(c * cost_scale);
    t.prices = t.costs;
    return t;
  };

  // --- 1. Monopoly vs symmetric duopoly ---
  const double monopoly = duopoly.monopoly_profit(transiter("solo", 1.0));
  const auto sym = duopoly.run(transiter("A", 1.0), transiter("B", 1.0));
  util::TextTable t1({"Scenario", "Profit A ($)", "Profit B ($)",
                      "Share A", "Share B", "Rounds"});
  t1.add_row({"monopoly", util::format_double(monopoly, 0), "-", "-", "-",
              "-"});
  t1.add_row({"symmetric duopoly", util::format_double(sym.profit_a, 0),
              util::format_double(sym.profit_b, 0),
              util::format_double(sym.share_a, 3),
              util::format_double(sym.share_b, 3),
              std::to_string(sym.rounds)});
  t1.print(std::cout);
  std::cout << "Competition erodes "
            << util::format_double(
                   100.0 * (1.0 - (sym.profit_a + sym.profit_b) / monopoly /
                                      2.0 * 2.0 / 2.0),
                   1)
            << "%... of per-firm monopoly profit: each duopolist earns "
            << util::format_double(100.0 * sym.profit_a / monopoly, 1)
            << "% of what a monopolist would.\n\n";

  // --- 2. Cost advantage ---
  const auto adv = duopoly.run(transiter("lean", 0.8), transiter("costly", 1.2));
  util::TextTable t2({"ISP", "Cost scale", "Profit ($)", "Share"});
  t2.add_row({"lean", "0.8x", util::format_double(adv.profit_a, 0),
              util::format_double(adv.share_a, 3)});
  t2.add_row({"costly", "1.2x", util::format_double(adv.profit_b, 0),
              util::format_double(adv.share_b, 3)});
  t2.print(std::cout);
  std::cout << '\n';

  // --- 3. Tiered vs blended under competition ---
  const auto tb = price_war(duopoly, transiter("tiered", 1.0), true,
                            transiter("blended", 1.0), false);
  const double tiered_profit = duopoly.profit(tb.a, tb.b);
  const double blended_profit = duopoly.profit(tb.b, tb.a);
  const auto bb = price_war(duopoly, transiter("blended1", 1.0), false,
                            transiter("blended2", 1.0), false);
  const double bb_profit = duopoly.profit(bb.a, bb.b);
  util::TextTable t3({"Matchup", "Profit tiered ($)", "Profit blended ($)"});
  t3.add_row({"tiered vs blended", util::format_double(tiered_profit, 0),
              util::format_double(blended_profit, 0)});
  t3.add_row({"blended vs blended", "-", util::format_double(bb_profit, 0)});
  t3.add_row({"tiered vs tiered (from 1)",
              util::format_double(sym.profit_a, 0), "-"});
  t3.print(std::cout);
  std::cout << "\nShape check: the tiering ISP out-earns the blended rival "
               "at equal cost — cost-reflective prices win the cheap flows\n"
               "without overpricing them and shed the expensive flows the "
               "blended rival underprices. Tiering remains individually\n"
               "rational under competition, extending the paper's monopoly "
               "result.\n";
  return 0;
}
