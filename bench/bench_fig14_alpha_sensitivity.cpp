// Reproduces paper Figure 14: worst-case profit capture at each bundle
// count as the price sensitivity alpha ranges over [1, 10], for all three
// datasets and both demand models (profit-weighted bundling, as in the
// paper's sensitivity analysis).
#include "bench_common.hpp"

#include "pricing/sensitivity.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 14 — Robustness to price sensitivity alpha",
                "Minimum profit capture over alpha in [1, 10] at each "
                "bundle count (profit-weighted).");

  const std::vector<double> alphas{1.05, 1.1, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0};
  const auto cost = cost::make_linear_cost(0.2);
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    util::TextTable table(
        {"Data set", "B=1", "B=2", "B=3", "B=4", "B=5", "B=6"});
    for (const auto ds :
         {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
          workload::DatasetKind::Cdn}) {
      const auto flows = bench::dataset(ds);
      pricing::SensitivityInputs inputs;
      inputs.flows = &flows;
      inputs.cost_model = cost.get();
      inputs.demand.kind = kind;
      const auto sweep = pricing::sweep_alpha(inputs, alphas);
      table.add_row(std::string(to_string(ds)), sweep.min_capture, 3);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: even the worst alpha keeps a few bundles "
               "capturing a large share of the headroom — the headline\n"
               "result is not an artifact of a particular elasticity.\n";
  return 0;
}
