// Ablations for the design choices called out in DESIGN.md:
//  1. Profit-weighted tier boundaries: cost-ordered traversal (ours /
//     the paper's near-optimal heuristic) vs traversal by decreasing
//     potential profit (the naive reading of the token bucket).
//  2. Logit pricing: exact equal-markup fixed point vs the paper's
//     gradient-descent heuristic.
//  3. Optimal bundling: exact interval DP vs exhaustive set-partition
//     search (small instance), demonstrating they agree.
#include "bench_common.hpp"

#include <chrono>

#include "bundling/optimal.hpp"
#include "bundling/strategies.hpp"

int main() {
  using namespace manytiers;
  bench::header("Ablation — bundling and pricing design choices",
                "Cost-ordered vs profit-ordered tiers; exact vs gradient "
                "logit pricing; DP vs exhaustive optimal.");

  // --- 1. Tier traversal order ---
  std::cout << "1) Profit-weighted traversal order (CED, EU ISP):\n";
  const auto m = bench::linear_market(workload::DatasetKind::EuIsp,
                                      demand::DemandKind::ConstantElasticity);
  const auto pi = pricing::potential_profits(m);
  util::TextTable order_table(
      {"Bundles", "Optimal", "Cost-ordered (ours)", "Profit-ordered"});
  for (std::size_t b = 1; b <= 6; ++b) {
    const double opt =
        pricing::run_strategy(m, pricing::Strategy::Optimal, b).capture;
    const double ours =
        pricing::capture_of(m, bundling::profit_weighted(pi, m.costs(), b));
    const double naive =
        pricing::capture_of(m, bundling::token_bucket(pi, b));
    order_table.add_row(std::to_string(b), {opt, ours, naive}, 3);
  }
  order_table.print(std::cout);
  std::cout << "Cost-contiguous tiers sized by profit mass track the "
               "optimum; ordering flows by profit alone mixes cheap and\n"
               "expensive flows in the tail bundle and captures far less.\n\n";

  // --- 2. Logit pricing solvers ---
  std::cout << "2) Logit pricing: exact fixed point vs gradient heuristic:\n";
  const auto ml =
      bench::linear_market(workload::DatasetKind::EuIsp,
                           demand::DemandKind::Logit);
  util::TextTable solver_table(
      {"Bundles", "Exact profit", "Gradient profit", "Rel. diff"});
  for (std::size_t b : {2u, 4u, 6u}) {
    const auto res =
        pricing::run_strategy(ml, pricing::Strategy::ProfitWeighted, b);
    // Re-price the same bundles with the gradient heuristic.
    std::vector<double> bundle_v, bundle_c;
    for (const auto& bundle : res.pricing.bundles) {
      std::vector<double> v, c;
      for (const auto i : bundle) {
        v.push_back(ml.valuations()[i]);
        c.push_back(ml.costs()[i]);
      }
      bundle_v.push_back(ml.logit().bundle_valuation(v));
      bundle_c.push_back(ml.logit().bundle_cost(v, c));
    }
    const double exact =
        ml.logit().optimal_prices(bundle_v, bundle_c).profit;
    const double grad =
        ml.logit().gradient_prices(bundle_v, bundle_c).profit;
    solver_table.add_row(std::to_string(b),
                         {exact, grad, std::abs(exact - grad) / exact}, 6);
  }
  solver_table.print(std::cout);
  std::cout << "The heuristic lands on the same optimum; the fixed point "
               "is exact and orders of magnitude cheaper.\n\n";

  // --- 3. DP vs exhaustive ---
  std::cout << "3) Optimal bundling: interval DP vs exhaustive search "
               "(n = 12 flows, CED):\n";
  util::Rng rng(5);
  std::vector<double> v(12), c(12);
  for (std::size_t i = 0; i < 12; ++i) {
    v[i] = rng.uniform(0.5, 3.0);
    c[i] = rng.uniform(0.2, 5.0);
  }
  const demand::CedModel model(1.6);
  const auto evaluate = [&](const bundling::Bundling& b) {
    double total = 0.0;
    for (const auto& bundle : b) {
      std::vector<double> bv, bc;
      for (const auto i : bundle) {
        bv.push_back(v[i]);
        bc.push_back(c[i]);
      }
      const double price = model.bundle_price(bv, bc);
      for (std::size_t i = 0; i < bv.size(); ++i) {
        total += model.flow_profit(bv[i], bc[i], price);
      }
    }
    return total;
  };
  util::TextTable dp_table(
      {"Bundles", "DP profit", "Exhaustive profit", "DP us", "Exhaustive us"});
  for (std::size_t b : {2u, 3u, 4u}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto dp = bundling::ced_optimal(v, c, 1.6, b);
    const auto t1 = std::chrono::steady_clock::now();
    const auto ex = bundling::exhaustive_optimal(12, b, evaluate);
    const auto t2 = std::chrono::steady_clock::now();
    const auto us = [](auto d) {
      return double(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    dp_table.add_row(std::to_string(b),
                     {evaluate(dp), evaluate(ex), us(t1 - t0), us(t2 - t1)},
                     3);
  }
  dp_table.print(std::cout);
  std::cout << "Identical profit, polynomial time: the cost-contiguity "
               "property makes exhaustive search unnecessary.\n";
  return 0;
}
