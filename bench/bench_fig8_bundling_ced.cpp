// Reproduces paper Figure 8 (a-c): profit capture vs number of bundles
// for the six bundling strategies under constant-elasticity demand, on
// all three datasets. Parameters as in §4.2.2: alpha = 1.1, P0 = $20,
// linear cost with theta = 0.2.
//
// Thin wrapper over the batch driver: the figure is one ExperimentGrid
// (datasets x CED x linear x the Fig. 8 strategy lineup) fanned out by
// run_grid, tabulated per dataset from the consolidated report.
#include "bench_common.hpp"

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 8 — Profit capture by bundling strategy (CED)",
                "Fraction of the per-flow-pricing profit headroom captured "
                "at 1..6 bundles.");

  driver::ExperimentGrid grid = driver::default_grid();
  grid.name = "fig8";
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity};
  const auto report = driver::run_grid(grid);
  for (const auto kind : grid.datasets) {
    std::cout << "(" << to_string(kind) << ")\n";
    driver::capture_table(report, kind).print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: Optimal saturates by 3-4 bundles at ~0.9+; "
               "Profit-weighted tracks it, Cost-weighted close behind;\n"
               "naive Cost/Index division need many more bundles; every "
               "strategy starts at 0 for one bundle (the calibrated\n"
               "blended rate is already optimal for a single tier).\n";
  bench::emit_timing_json("fig8_batch_grid",
                          report.cells.size() * report.points_per_cell,
                          report.wall_ms, report.threads);
  return 0;
}
