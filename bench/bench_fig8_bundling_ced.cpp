// Reproduces paper Figure 8 (a-c): profit capture vs number of bundles
// for the six bundling strategies under constant-elasticity demand, on
// all three datasets. Parameters as in §4.2.2: alpha = 1.1, P0 = $20,
// linear cost with theta = 0.2.
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 8 — Profit capture by bundling strategy (CED)",
                "Fraction of the per-flow-pricing profit headroom captured "
                "at 1..6 bundles.");

  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
        workload::DatasetKind::Cdn}) {
    const auto m = bench::linear_market(
        kind, demand::DemandKind::ConstantElasticity);
    std::cout << "(" << to_string(kind) << ")\n";
    bench::capture_table(m, pricing::figure8_strategies(), 6)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: Optimal saturates by 3-4 bundles at ~0.9+; "
               "Profit-weighted tracks it, Cost-weighted close behind;\n"
               "naive Cost/Index division need many more bundles; every "
               "strategy starts at 0 for one bundle (the calibrated\n"
               "blended rate is already optimal for a single tier).\n";
  return 0;
}
