// Regression guard for the parallel sweep engine: run one fixed
// sensitivity-sweep workload (alpha sweep, Optimal bundling, both demand
// models) at 1, 2, 4 and hardware_concurrency threads, report wall-clock
// speedup over the 1-thread run, and verify the 1-thread result is
// bit-identical to the pre-change serial reference (a plain loop over
// parameter points calling run_strategy at every bundle count).
#include "bench_common.hpp"

#include <limits>
#include <memory>
#include <thread>

#include "pricing/sensitivity.hpp"
#include "util/parallel.hpp"

namespace {

using namespace manytiers;

struct Workload {
  workload::FlowSet flows;
  std::unique_ptr<cost::CostModel> cost;
  std::vector<double> alphas;
  std::size_t max_bundles = 6;

  pricing::SensitivityInputs inputs(demand::DemandKind kind,
                                    std::size_t threads) const {
    pricing::SensitivityInputs in;
    in.flows = &flows;
    in.cost_model = cost.get();
    in.demand.kind = kind;
    in.strategy = pricing::Strategy::Optimal;
    in.max_bundles = max_bundles;
    in.threads = threads;
    return in;
  }
};

Workload fixed_workload() {
  Workload w{.flows = workload::generate_eu_isp({.seed = 42, .n_flows = 300}),
             .cost = cost::make_linear_cost(0.2),
             .alphas = {1.05, 1.1, 1.3, 1.5, 2.0, 3.0, 5.0, 10.0}};
  return w;
}

// The pre-change serial path: calibrate each point and evaluate every
// bundle count through run_strategy, reducing min/max in parameter order.
pricing::SweepResult serial_reference(const Workload& w,
                                      demand::DemandKind kind) {
  pricing::SweepResult out;
  out.min_capture.assign(w.max_bundles, std::numeric_limits<double>::max());
  out.max_capture.assign(w.max_bundles, -std::numeric_limits<double>::max());
  for (const double alpha : w.alphas) {
    pricing::DemandSpec spec;
    spec.kind = kind;
    spec.alpha = alpha;
    const auto market = pricing::Market::calibrate(w.flows, spec, *w.cost, 20.0);
    for (std::size_t b = 1; b <= w.max_bundles; ++b) {
      const double capture =
          pricing::run_strategy(market, pricing::Strategy::Optimal, b).capture;
      out.min_capture[b - 1] = std::min(out.min_capture[b - 1], capture);
      out.max_capture[b - 1] = std::max(out.max_capture[b - 1], capture);
    }
    ++out.points;
  }
  return out;
}

bool bitwise_equal(const pricing::SweepResult& a,
                   const pricing::SweepResult& b) {
  return a.min_capture == b.min_capture && a.max_capture == b.max_capture &&
         a.points == b.points;
}

}  // namespace

int main() {
  bench::header("Sweep scaling — parallel sensitivity engine",
                "Fixed alpha-sweep workload (300 flows, 8 alphas, Optimal "
                "bundling) at 1/2/4/hw threads.");

  const auto w = fixed_workload();
  std::vector<std::size_t> thread_counts{1, 2, 4};
  const std::size_t hw = util::default_thread_count();
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
      thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  std::cout << "hardware_concurrency: "
            << std::thread::hardware_concurrency() << "\n\n";

  bool all_identical = true;
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    pricing::SweepResult reference;
    const double reference_ms = bench::run_timed(
        std::string("sweep_prechange_") +
            (kind == demand::DemandKind::ConstantElasticity ? "ced" : "logit"),
        w.flows.size(), 1, [&] { reference = serial_reference(w, kind); });
    std::cout << "  pre-change per-b path (serial): "
              << util::format_double(reference_ms, 2) << " ms\n";
    util::TextTable table({"Threads", "wall ms", "speedup"});
    double base_ms = 0.0;
    for (const std::size_t threads : thread_counts) {
      pricing::SweepResult result;
      const double ms = bench::run_timed(
          std::string("sweep_scaling_") +
              (kind == demand::DemandKind::ConstantElasticity ? "ced"
                                                              : "logit"),
          w.flows.size(), threads,
          [&] { result = pricing::sweep_alpha(w.inputs(kind, threads),
                                              w.alphas); });
      if (threads == 1) base_ms = ms;
      const bool identical = bitwise_equal(result, reference);
      all_identical = all_identical && identical;
      table.add_row(std::to_string(threads),
                    {ms, base_ms > 0.0 ? base_ms / ms : 0.0}, 2);
      std::cout << "  threads=" << threads
                << (identical ? "  matches serial reference bit-for-bit"
                              : "  MISMATCH vs serial reference!")
                << '\n';
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  // Large-n leg: 20k flows pushes each DP row past the kernel's
  // parallel threshold, so sweep workers exercise the
  // nested-parallelism guard (the DP must stay serial inside a
  // parallel_for worker) end-to-end. Results must still be
  // bit-identical across thread counts.
  {
    Workload large{
        .flows = workload::generate_eu_isp({.seed = 42, .n_flows = 20000}),
        .cost = cost::make_linear_cost(0.2),
        .alphas = {1.1, 2.0}};
    std::cout << "Large-n leg (20000 flows, CED, 2 alphas):\n";
    pricing::SweepResult reference;
    bool have_reference = false;
    std::vector<std::size_t> large_threads{1};
    if (hw != 1) large_threads.push_back(hw);
    for (const std::size_t threads : large_threads) {
      pricing::SweepResult result;
      bench::run_timed(
          "sweep_scaling_large_ced", large.flows.size(), threads,
          [&] {
            result = pricing::sweep_alpha(
                large.inputs(demand::DemandKind::ConstantElasticity, threads),
                large.alphas);
          },
          bench::TimingOptions{.warmup = 0, .reps = 3});
      if (!have_reference) {
        reference = result;
        have_reference = true;
      }
      const bool identical = bitwise_equal(result, reference);
      all_identical = all_identical && identical;
      std::cout << "  threads=" << threads
                << (identical ? "  matches threads=1 bit-for-bit"
                              : "  MISMATCH vs threads=1!")
                << '\n';
    }
    std::cout << '\n';
  }

  std::cout << (all_identical
                    ? "All thread counts reproduce the serial reference "
                      "exactly.\n"
                    : "ERROR: parallel sweep diverged from the serial "
                      "reference.\n");
  return all_identical ? 0 : 1;
}
