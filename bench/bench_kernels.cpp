// google-benchmark timings for the library's computational kernels:
// calibration, bundling strategies, the optimal interval DP, the logit
// fixed point, routing, GeoIP lookup, and NetFlow aggregation.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "bundling/optimal.hpp"
#include "geo/geoip.hpp"
#include "bundling/strategies.hpp"
#include "netflow/collector.hpp"
#include "netflow/exporter.hpp"
#include "topology/dijkstra.hpp"
#include "topology/internet2.hpp"

namespace {

using namespace manytiers;

const workload::FlowSet& eu_flows(std::size_t n) {
  static std::map<std::size_t, workload::FlowSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    it = cache.emplace(n, workload::generate_eu_isp({.seed = 42, .n_flows = n}))
             .first;
  }
  return it->second;
}

void BM_CalibrateCed(benchmark::State& state) {
  const auto& flows = eu_flows(std::size_t(state.range(0)));
  const auto cost = cost::make_linear_cost(0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pricing::Market::calibrate(
        flows, pricing::DemandSpec{}, *cost, 20.0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CalibrateCed)->Range(64, 4096)->Complexity();

void BM_CalibrateLogit(benchmark::State& state) {
  const auto& flows = eu_flows(std::size_t(state.range(0)));
  const auto cost = cost::make_linear_cost(0.2);
  pricing::DemandSpec spec;
  spec.kind = demand::DemandKind::Logit;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pricing::Market::calibrate(flows, spec, *cost, 20.0));
  }
}
BENCHMARK(BM_CalibrateLogit)->Range(64, 4096);

void BM_OptimalDp(benchmark::State& state) {
  const auto m = bench::market(eu_flows(std::size_t(state.range(0))),
                               demand::DemandKind::ConstantElasticity,
                               *cost::make_linear_cost(0.2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bundling::ced_optimal(m.valuations(), m.costs(), 1.1, 4));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OptimalDp)->Range(64, 2048)->Complexity(benchmark::oNSquared);

void BM_ProfitWeightedBundling(benchmark::State& state) {
  const auto m = bench::market(eu_flows(std::size_t(state.range(0))),
                               demand::DemandKind::ConstantElasticity,
                               *cost::make_linear_cost(0.2));
  const auto pi = pricing::potential_profits(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundling::profit_weighted(pi, m.costs(), 4));
  }
}
BENCHMARK(BM_ProfitWeightedBundling)->Range(64, 4096);

void BM_LogitFixedPoint(benchmark::State& state) {
  const auto m = bench::market(eu_flows(std::size_t(state.range(0))),
                               demand::DemandKind::Logit,
                               *cost::make_linear_cost(0.2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.logit().optimal_prices(m.valuations(), m.costs()));
  }
}
BENCHMARK(BM_LogitFixedPoint)->Range(64, 4096);

void BM_LogitGradientAscent(benchmark::State& state) {
  const auto m = bench::market(eu_flows(64),
                               demand::DemandKind::Logit,
                               *cost::make_linear_cost(0.2));
  // Price a handful of bundles, the realistic use of the heuristic.
  const auto res =
      pricing::run_strategy(m, pricing::Strategy::ProfitWeighted, 4);
  std::vector<double> bundle_v, bundle_c;
  for (const auto& bundle : res.pricing.bundles) {
    std::vector<double> v, c;
    for (const auto i : bundle) {
      v.push_back(m.valuations()[i]);
      c.push_back(m.costs()[i]);
    }
    bundle_v.push_back(m.logit().bundle_valuation(v));
    bundle_c.push_back(m.logit().bundle_cost(v, c));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.logit().gradient_prices(bundle_v, bundle_c));
  }
}
BENCHMARK(BM_LogitGradientAscent);

void BM_DijkstraInternet2(benchmark::State& state) {
  const auto net = topology::internet2_network();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::all_pairs_distances(net));
  }
}
BENCHMARK(BM_DijkstraInternet2);

void BM_GeoIpLookup(benchmark::State& state) {
  const auto db = geo::build_synthetic_geoip();
  util::Rng rng(3);
  std::vector<geo::IpV4> ips;
  for (int i = 0; i < 1024; ++i) {
    ips.push_back(geo::synthetic_host(rng.index(geo::world_cities().size()),
                                      std::uint32_t(i)));
  }
  std::size_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.lookup_city(ips[k++ & 1023]));
  }
}
BENCHMARK(BM_GeoIpLookup);

void BM_NetflowAggregation(benchmark::State& state) {
  const auto& flows = eu_flows(256);
  netflow::SampledExporter exporter(
      {.sampling_rate = 100, .window_seconds = 3600}, util::Rng(9));
  std::vector<netflow::FlowRecord> records;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    netflow::GroundTruthFlow gt;
    gt.key.src_ip = flows[i].src_ip;
    gt.key.dst_ip = flows[i].dst_ip;
    gt.key.src_port = std::uint16_t(i);
    gt.bytes = std::uint64_t(flows[i].demand_mbps * 1e6);
    gt.packets = std::max<std::uint64_t>(1, gt.bytes / 1400);
    const std::vector<netflow::RouterId> path{1, 2, 3};
    const auto recs = exporter.export_flow(gt, path);
    records.insert(records.end(), recs.begin(), recs.end());
  }
  for (auto _ : state) {
    netflow::Collector collector(100);
    collector.ingest(records);
    benchmark::DoNotOptimize(collector.aggregate());
  }
}
BENCHMARK(BM_NetflowAggregation);

void BM_CaptureSeriesEndToEnd(benchmark::State& state) {
  const auto m = bench::linear_market(workload::DatasetKind::EuIsp,
                                      demand::DemandKind::ConstantElasticity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pricing::capture_series(
        m, pricing::Strategy::ProfitWeighted, 6));
  }
}
BENCHMARK(BM_CaptureSeriesEndToEnd);

}  // namespace
