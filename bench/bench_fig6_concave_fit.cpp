// Reproduces paper Figure 6: fitting a concave price-vs-distance curve
// y = a log_b(x) + c to leased-line price lists.
//
// The ITU and NTT price sheets are not redistributable, so we regenerate
// synthetic price points from the paper's two published fits
// (ITU: y = 0.43 log_9.43 x + 0.99; NTT: y = 0.03 log_1.12 x + 1.01)
// plus measurement noise, then re-fit. Note (a, b) are not separately
// identifiable — only k = a/ln(b) and c are — so we report the curves in
// the paper's own bases and the pooled fit in base 6 (paper: a ~ 0.5,
// b ~ 6, c ~ 1).
#include "bench_common.hpp"

#include <cmath>

#include "util/fitting.hpp"
#include "util/rng.hpp"

namespace {

struct PriceSheet {
  const char* name;
  double a, b, c;  // the paper's published fit
  std::vector<double> x, y;
};

void synthesize(PriceSheet& sheet, manytiers::util::Rng& rng, int points) {
  const double k = sheet.a / std::log(sheet.b);
  for (int i = 0; i < points; ++i) {
    // Leased-line tariffs quote a handful of distance bands spread over
    // two decades of normalized distance.
    const double x = std::pow(10.0, rng.uniform(-2.0, 0.0));
    const double y = k * std::log(x) + sheet.c + rng.normal(0.0, 0.02);
    sheet.x.push_back(x);
    sheet.y.push_back(y);
  }
}

}  // namespace

int main() {
  using namespace manytiers;
  bench::header("Figure 6 — Concave distance-to-cost fit (ITU/NTT prices)",
                "Re-fitting y = a log_b(x) + c to regenerated price points.");

  util::Rng rng(42);
  PriceSheet itu{"ITU", 0.43, 9.43, 0.99, {}, {}};
  PriceSheet ntt{"NTT", 0.03, 1.12, 1.01, {}, {}};
  synthesize(itu, rng, 40);
  synthesize(ntt, rng, 40);

  util::TextTable table({"Data set", "a (fit)", "b (basis)", "c (fit)",
                         "a (paper)", "c (paper)", "R^2"});
  std::vector<double> pooled_x, pooled_y;
  for (auto* sheet : {&itu, &ntt}) {
    const auto fit = util::fit_concave_log(sheet->x, sheet->y, sheet->b);
    table.add_row({std::string(sheet->name), util::format_double(fit.a, 3),
                   util::format_double(fit.b, 2), util::format_double(fit.c, 3),
                   util::format_double(sheet->a, 3),
                   util::format_double(sheet->c, 3),
                   util::format_double(fit.r2, 4)});
    pooled_x.insert(pooled_x.end(), sheet->x.begin(), sheet->x.end());
    pooled_y.insert(pooled_y.end(), sheet->y.begin(), sheet->y.end());
  }
  const auto pooled = util::fit_concave_log(pooled_x, pooled_y, 6.0);
  table.add_row({"Pooled", util::format_double(pooled.a, 3), "6.0",
                 util::format_double(pooled.c, 3), "~0.5", "~1.0",
                 util::format_double(pooled.r2, 4)});
  table.print(std::cout);

  std::cout << "\nFitted curve samples (pooled, base 6):\n";
  util::TextTable samples({"Normalized distance", "Normalized price"});
  for (const double x : {0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    samples.add_row({x, pooled.evaluate(x)}, 3);
  }
  samples.print(std::cout);
  std::cout << "\nShape check: per-sheet fits recover the generating (a, c) "
               "in their own bases; the pooled fit lands near the paper's\n"
               "(a ~ 0.5, b ~ 6, c ~ 1) parameterization used by the "
               "concave cost model.\n";
  return 0;
}
