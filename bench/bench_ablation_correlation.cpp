// Ablation: the demand-distance correlation imposed by the generators.
//
// DESIGN.md documents that the synthetic datasets couple demand to
// distance (rank correlation -0.8) because real transit traffic is
// demand-heavy on short paths and because the paper's demand-aware
// heuristics presuppose such structure. This bench quantifies that
// choice: profit capture per strategy as the coupling sweeps from
// independent (0) to perfectly anti-correlated (-1).
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Ablation — demand-distance correlation in the generators",
                "Capture at 3 bundles (CED, EU ISP) vs the imposed rank "
                "correlation rho.");

  util::TextTable table({"rho", "Optimal", "Profit-weighted", "Cost-weighted",
                         "Demand-weighted", "Headroom (max/blended)"});
  for (const double rho : {0.0, -0.25, -0.5, -0.8, -1.0}) {
    workload::GeneratorOptions opts{.seed = 42, .n_flows = 400};
    opts.demand_distance_correlation = rho;
    const auto flows = workload::generate_eu_isp(opts);
    const auto cost = cost::make_linear_cost(0.2);
    const auto m = bench::market(
        flows, demand::DemandKind::ConstantElasticity, *cost);
    const auto capture = [&](pricing::Strategy s) {
      return pricing::run_strategy(m, s, 3).capture;
    };
    table.add_row(util::format_double(rho, 2),
                  {capture(pricing::Strategy::Optimal),
                   capture(pricing::Strategy::ProfitWeighted),
                   capture(pricing::Strategy::CostWeighted),
                   capture(pricing::Strategy::DemandWeighted),
                   pricing::max_profit(m) / pricing::blended_profit(m)},
                  3);
  }
  table.print(std::cout);
  std::cout << "\nShape check: cost-aware strategies (optimal, profit-, "
               "cost-weighted) are robust to the coupling, while the\n"
               "purely demand-weighted heuristic only works when demand "
               "actually encodes cost — the structural reason the paper's\n"
               "profit-weighted strategy must consider both.\n";
  return 0;
}
