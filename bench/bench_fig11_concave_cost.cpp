// Reproduces paper Figure 11: the Figure 10 sweep under the concave
// (log-of-distance) cost model fitted from the ITU/NTT price data.
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 11 — Concave cost model, EU ISP",
                "Profit capture vs bundles for theta in {0.1, 0.2, 0.3}, "
                "profit-weighted bundling.");

  const auto flows = bench::dataset(workload::DatasetKind::EuIsp);
  const std::vector<double> thetas{0.1, 0.2, 0.3};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    bench::theta_sweep_table(
        flows, kind, [](double t) { return cost::make_concave_cost(t); },
        thetas, pricing::Strategy::ProfitWeighted)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: same saturation as the linear model, but the "
               "plateaus fall faster as theta grows — the log compresses\n"
               "relative cost differences (lower CV of cost), so each unit "
               "of base cost erases more of the tiering opportunity.\n";
  return 0;
}
