// Quantifies the §5.2 trade-off between the two tier-accounting
// implementations: link-based accounting needs one BGP session and
// virtual link per tier (overhead grows with tiers, byte counts exact),
// while flow-based accounting keeps one session and joins sampled NetFlow
// with the RIB after the fact (constant overhead, sampling error).
#include "bench_common.hpp"

#include <cmath>

#include "accounting/billing.hpp"
#include "accounting/flow_acct.hpp"
#include "accounting/link_acct.hpp"
#include "netflow/exporter.hpp"

int main() {
  using namespace manytiers;
  bench::header("Accounting — link-based vs flow-based tier accounting",
                "Provisioning overhead and billing accuracy as the number "
                "of tiers grows (1-in-100 sampling).");

  const auto flows = bench::dataset(workload::DatasetKind::EuIsp);
  const auto cost_model = cost::make_linear_cost(0.2);
  const auto m = bench::market(flows, demand::DemandKind::ConstantElasticity,
                               *cost_model);
  const std::uint32_t window = 3600;
  const std::uint32_t sampling = 100;

  util::TextTable table({"Tiers", "Link sessions", "Flow sessions",
                         "Link bill ($)", "Flow bill ($)", "Bill error (%)"});
  for (std::size_t tiers = 1; tiers <= 8; ++tiers) {
    const auto res =
        pricing::run_strategy(m, pricing::Strategy::ProfitWeighted, tiers);
    // Announce one host route per destination, tagged with its tier.
    accounting::Rib rib;
    accounting::RatePlan plan;
    for (std::size_t b = 0; b < res.pricing.bundles.size(); ++b) {
      plan.rates.push_back(
          {std::uint16_t(b), res.pricing.bundle_prices[b]});
      for (const std::size_t i : res.pricing.bundles[b]) {
        accounting::Route route;
        route.prefix = geo::Prefix{m.flows()[i].dst_ip, 32};
        route.tag = accounting::TierTag{65000, std::uint16_t(b)};
        rib.add(route);
      }
    }
    accounting::LinkAccounting link(rib);
    accounting::FlowAccounting flow(rib, sampling);
    netflow::SampledExporter exporter(
        {.sampling_rate = sampling, .window_seconds = window},
        util::Rng(7 + tiers));
    for (std::size_t i = 0; i < m.size(); ++i) {
      const auto bytes = std::uint64_t(m.flows()[i].demand_mbps * 1e6 / 8.0 *
                                       double(window));
      link.send(m.flows()[i].dst_ip, bytes);
      netflow::GroundTruthFlow gt;
      gt.key.src_ip = m.flows()[i].src_ip;
      gt.key.dst_ip = m.flows()[i].dst_ip;
      gt.key.src_port = std::uint16_t(40000 + i);
      gt.bytes = bytes;
      gt.packets = std::max<std::uint64_t>(1, bytes / 1400);
      const std::vector<netflow::RouterId> path{1};
      flow.ingest(exporter.export_flow(gt, path));
    }
    const double link_bill =
        accounting::tiered_invoice(link.poll(), window, plan).total;
    const double flow_bill =
        accounting::tiered_invoice(flow.usage(), window, plan).total;
    table.add_row({std::to_string(res.pricing.bundles.size()),
                   std::to_string(link.session_count()),
                   std::to_string(accounting::FlowAccounting::session_count()),
                   util::format_double(link_bill, 0),
                   util::format_double(flow_bill, 0),
                   util::format_double(
                       100.0 * std::abs(flow_bill - link_bill) / link_bill,
                       2)});
  }
  table.print(std::cout);
  std::cout << "\nShape check: link-based sessions grow linearly with "
               "tiers while flow-based stays at one; the sampled flow\n"
               "bill tracks the exact link bill to within a few percent.\n";
  return 0;
}
