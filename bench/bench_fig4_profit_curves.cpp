// Reproduces paper Figure 4: profit as a function of price for two flows
// with identical demand (v = 1, alpha = 2) but different delivery costs
// (c = $1 and c = $2). Optima: p* = 2 with profit $0.25 and p* = 4 with
// profit $0.125 — the ISP must price costly (national) traffic higher
// than local traffic.
#include "bench_common.hpp"

#include "demand/ced.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 4 — Profit vs price for two flow costs",
                "v = 1, alpha = 2; c1 = $1 and c2 = $2.");

  const demand::CedModel model(2.0);
  util::TextTable table({"Price ($)", "Profit (c=$1)", "Profit (c=$2)"});
  for (double p = 1.25; p <= 7.001; p += 0.25) {
    table.add_row({p, model.flow_profit(1.0, 1.0, p),
                   p > 2.0 ? model.flow_profit(1.0, 2.0, p) : 0.0},
                  4);
  }
  table.print(std::cout);

  std::cout << "\nClosed-form optima (Eq. 4 / Eq. 12):\n";
  util::TextTable optima({"Cost ($)", "p* ($)", "max profit ($)"});
  for (const double c : {1.0, 2.0}) {
    optima.add_row({c, model.optimal_price(c), model.potential_profit(1.0, c)},
                   3);
  }
  optima.print(std::cout);
  std::cout << "\nPaper reference: p* = $2 -> $0.25 profit; the costlier "
               "flow peaks at p* = $4 with half the profit.\n";
  return 0;
}
