// Reproduces paper Figure 13: the EU ISP under the destination-type
// ("on-net"/"off-net") cost model for on-net traffic fractions theta in
// {0.05, 0.1, 0.15}, using the class-aware profit-weighted bundling the
// paper introduces for this model (never mixing the two classes).
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 13 — Destination-type cost model, EU ISP",
                "Profit capture vs bundles for on-net fraction theta in "
                "{0.05, 0.1, 0.15}, class-aware profit-weighted bundling.");

  const auto flows = bench::dataset(workload::DatasetKind::EuIsp);
  const std::vector<double> thetas{0.05, 0.1, 0.15};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    bench::theta_sweep_table(
        flows, kind, [](double t) { return cost::make_dest_type_cost(t); },
        thetas, pricing::Strategy::ClassAwareProfitWeighted)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: with exactly two cost classes (on-net and "
               "off-net), two bundles already capture the full headroom\n"
               "for both demand models; more bundles add nothing.\n";
  return 0;
}
