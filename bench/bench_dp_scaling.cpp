// Fill-time scaling curves for the bundling DP kernel: naive O(n^2 B)
// reference vs the divide-and-conquer O(n B log n) fast path, over a
// grid of market sizes and bundle counts for both paper objectives.
//
// Modes:
//   bench_dp_scaling                 both kernels, speedup table, and a
//                                    self-gate: exits 1 if the fast path
//                                    is not >= 3x at the largest quick
//                                    config or the kernels' tables are
//                                    not byte-identical.
//   bench_dp_scaling --kernel naive  one kernel only, kernel-free
//   bench_dp_scaling --kernel dc     BENCH_JSON names (dp_fill_ced_n...),
//                                    so tools/bench_diff.py can compare
//                                    a naive log against a dc log
//                                    key-by-key (--min-speedup gate in
//                                    tools/check.sh).
//   --full                           adds n in {50k, 100k} and B = 32;
//                                    requires >= 5x at n=50k B=10 and
//                                    adds a thread-scaling leg.
#include "bench_common.hpp"

#include <cstring>
#include <string>
#include <vector>

#include "bundling/dp_kernel.hpp"
#include "bundling/objectives.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace manytiers;

struct Instance {
  std::vector<double> v, c;
};

Instance random_instance(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  Instance inst;
  inst.v.reserve(n);
  inst.c.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.v.push_back(rng.uniform(0.5, 3.0));
    inst.c.push_back(rng.uniform(0.2, 5.0));
  }
  return inst;
}

bundling::DpKernelOptions kernel_options(bundling::DpKernel kernel,
                                         std::size_t threads = 0) {
  bundling::DpKernelOptions opt;
  opt.kernel = kernel;
  opt.threads = threads;
  return opt;
}

bool tables_identical(const bundling::DpTables& a,
                      const bundling::DpTables& b) {
  return a.n == b.n && a.b_max == b.b_max &&
         std::memcmp(a.best.data(), b.best.data(),
                     a.best.size() * sizeof(double)) == 0 &&
         std::memcmp(a.split.data(), b.split.data(),
                     a.split.size() * sizeof(std::uint32_t)) == 0;
}

// Naive fills past n=50k x B=10 (2.5e10 candidate evals, minutes of
// wall time) would run for the better part of an hour; skip the
// reference beyond that and log the omission (bench logs must not
// silently pretend the naive curve covers the full grid). The budget is
// set just above the n=50k B=10 config because that is the acceptance
// measurement for the dc kernel's >= 5x full-mode gate.
constexpr double kMaxNaiveEvals = 2.6e10;

struct Config {
  std::size_t n;
  std::size_t b;
};

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  const char* forced_kernel = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      forced_kernel = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--full] [--kernel naive|dc]\n";
      return 2;
    }
  }
  const bool run_naive = forced_kernel == nullptr ||
                         std::strcmp(forced_kernel, "naive") == 0;
  const bool run_dc =
      forced_kernel == nullptr || std::strcmp(forced_kernel, "dc") == 0;
  if (!run_naive && !run_dc) {
    std::cerr << "unknown kernel '" << forced_kernel << "'\n";
    return 2;
  }

  bench::header("DP kernel scaling — naive vs divide-and-conquer fill",
                "Interval-DP table fill times over market size and bundle "
                "count for the CED and logit objectives.");

  std::vector<Config> configs{{1000, 4}, {1000, 10}, {10000, 4}, {10000, 10}};
  if (full) {
    configs.push_back({1000, 32});
    configs.push_back({10000, 32});
    for (const std::size_t n : {50000u, 100000u}) {
      for (const std::size_t b : {4u, 10u, 32u}) configs.push_back({n, b});
    }
  }

  bool ok = true;
  double speedup_quick_gate = 0.0;  // n=10000, B=10
  double speedup_full_gate = 0.0;   // n=50000, B=10 (acceptance criterion)

  for (const char* obj_name : {"ced", "logit"}) {
    const bool is_ced = std::strcmp(obj_name, "ced") == 0;
    std::cout << (is_ced ? "Constant Elasticity Demand objective:\n"
                         : "Logit Demand objective:\n");
    util::TextTable table({"n  B", "naive ms", "dc ms", "speedup"});
    for (const auto& cfg : configs) {
      const auto inst = random_instance(42 + cfg.n, cfg.n);
      const auto ced = is_ced
                           ? bundling::make_ced_objective(inst.v, inst.c, 1.6)
                           : bundling::CedObjective{};
      const auto logit =
          is_ced ? bundling::LogitObjective{}
                 : bundling::make_logit_objective(inst.v, inst.c, 1.1);

      const auto fill = [&](const bundling::DpKernelOptions& opt) {
        return is_ced ? bundling::fill_dp_tables(cfg.n, cfg.b, ced, opt)
                      : bundling::fill_dp_tables(cfg.n, cfg.b, logit, opt);
      };

      const double naive_evals = static_cast<double>(cfg.n) *
                                 static_cast<double>(cfg.n) *
                                 static_cast<double>(cfg.b);
      const bool naive_feasible = naive_evals <= kMaxNaiveEvals;
      // Big naive fills take minutes; one rep is plenty at that scale.
      const bench::TimingOptions heavy{.warmup = 0, .reps = 1};
      const bench::TimingOptions light{.warmup = 1, .reps = 3};
      const std::string suffix = std::string("_") + obj_name + "_n" +
                                 std::to_string(cfg.n) + "_b" +
                                 std::to_string(cfg.b);
      // Forced single-kernel runs use kernel-free names so naive and dc
      // logs share keys for bench_diff.py.
      const bool suffix_kernel = forced_kernel == nullptr;

      double naive_ms = 0.0;
      double dc_ms = 0.0;
      bundling::DpTables naive_tables, dc_tables;
      if (run_naive) {
        if (!naive_feasible) {
          std::cout << "  n=" << cfg.n << " B=" << cfg.b
                    << ": naive skipped (" << naive_evals
                    << " evals exceeds budget)\n";
        } else {
          naive_ms = bench::run_timed(
              std::string("dp_fill") + suffix +
                  (suffix_kernel ? "_naive" : ""),
              cfg.n, 1,
              [&] {
                naive_tables =
                    fill(kernel_options(bundling::DpKernel::kNaive, 1));
              },
              naive_evals > 1e9 ? heavy : light);
        }
      }
      if (run_dc) {
        dc_ms = bench::run_timed(
            std::string("dp_fill") + suffix + (suffix_kernel ? "_dc" : ""),
            cfg.n, 1,
            [&] {
              dc_tables =
                  fill(kernel_options(bundling::DpKernel::kDivideConquer, 1));
            },
            light);
      }

      if (run_naive && run_dc && naive_feasible) {
        if (!tables_identical(naive_tables, dc_tables)) {
          std::cout << "  ERROR: kernel outputs differ at n=" << cfg.n
                    << " B=" << cfg.b << " (" << obj_name << ")\n";
          ok = false;
        }
        const double speedup = dc_ms > 0.0 ? naive_ms / dc_ms : 0.0;
        table.add_row(std::to_string(cfg.n) + "  " + std::to_string(cfg.b),
                      {naive_ms, dc_ms, speedup}, 2);
        if (is_ced && cfg.n == 10000 && cfg.b == 10) {
          speedup_quick_gate = speedup;
        }
        if (is_ced && cfg.n == 50000 && cfg.b == 10) {
          speedup_full_gate = speedup;
        }
      } else if (run_dc) {
        table.add_row(std::to_string(cfg.n) + "  " + std::to_string(cfg.b),
                      {naive_ms, dc_ms, 0.0}, 2);
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  // Thread-scaling leg: rows at n >= 50k cross the parallel threshold,
  // so the dc fill should gain from extra workers while remaining
  // bit-identical (asserted by ctest; here we just report the curve).
  if (full && run_dc) {
    std::cout << "Thread scaling (dc kernel, CED, B=10):\n";
    const std::size_t hw = util::default_thread_count();
    for (const std::size_t n : {50000u, 100000u}) {
      const auto inst = random_instance(42 + n, n);
      const auto obj = bundling::make_ced_objective(inst.v, inst.c, 1.6);
      double base_ms = 0.0;
      std::vector<std::size_t> leg_threads{1};
      if (hw != 1) leg_threads.push_back(hw);
      for (const std::size_t threads : leg_threads) {
        const double ms = bench::run_timed(
            "dp_fill_threads_ced_n" + std::to_string(n) + "_b10", n, threads,
            [&] {
              bundling::fill_dp_tables(
                  n, std::size_t{10}, obj,
                  kernel_options(bundling::DpKernel::kDivideConquer, threads));
            },
            bench::TimingOptions{.warmup = 1, .reps = 3});
        if (threads == 1) base_ms = ms;
        std::cout << "  n=" << n << " threads=" << threads << ": "
                  << util::format_double(ms, 2) << " ms"
                  << (threads > 1 && ms > 0.0
                          ? "  (speedup " +
                                util::format_double(base_ms / ms, 2) + "x)"
                          : "")
                  << '\n';
      }
    }
    std::cout << '\n';
  }

  if (run_naive && run_dc) {
    std::cout << "Gate: speedup at n=10000 B=10 (CED) = "
              << util::format_double(speedup_quick_gate, 2)
              << "x (require >= 3x)\n";
    if (speedup_quick_gate < 3.0) ok = false;
    if (full) {
      std::cout << "Gate: speedup at n=50000 B=10 (CED) = "
                << util::format_double(speedup_full_gate, 2)
                << "x (require >= 5x)\n";
      if (speedup_full_gate < 5.0) ok = false;
    }
    std::cout << (ok ? "All kernel outputs byte-identical; speedup gates "
                       "passed.\n"
                     : "ERROR: gate failure (see above).\n");
  }
  return ok ? 0 : 1;
}
