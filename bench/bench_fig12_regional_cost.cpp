// Reproduces paper Figure 12: the EU ISP under the regional cost model
// (metro gamma, national gamma*2^theta, international gamma*3^theta) for
// theta in {1.0, 1.1, 1.2}.
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 12 — Regional cost model, EU ISP",
                "Profit capture vs bundles for theta in {1.0, 1.1, 1.2}, "
                "profit-weighted bundling.");

  const auto flows = bench::dataset(workload::DatasetKind::EuIsp);
  const std::vector<double> thetas{1.0, 1.1, 1.2};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    bench::theta_sweep_table(
        flows, kind, [](double t) { return cost::make_regional_cost(t); },
        thetas, pricing::Strategy::ProfitWeighted)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: higher theta widens the regional cost gaps "
               "(higher CV of cost) and raises the attainable profit;\n"
               "with only three intrinsic cost classes the curves flatten "
               "by ~3 bundles, and suboptimal extra bundles can dip\n"
               "slightly when a bundle straddles two classes.\n";
  return 0;
}
