// Reproduces paper Figure 1: market efficiency loss under blended-rate
// pricing for two flows with different delivery costs.
//
// The paper's setup reverse-engineers exactly to CED with alpha = 2,
// valuations v = (1, 2) and costs c = ($1, $0.5): the blended optimum is
// P0 = $1.2 with profit $2.08 and consumer surplus $4.17; per-flow tiers
// price at ($2, $1) with profit $2.25 and surplus $4.50.
#include "bench_common.hpp"

#include "demand/ced.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 1 — Market efficiency loss due to coarse bundling",
                "Blended vs tiered pricing for two flows (CED, alpha = 2).");

  const demand::CedModel model(2.0);
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> c{1.0, 0.5};

  const double p0 = model.bundle_price(v, c);
  const std::vector<double> blended{p0, p0};
  const std::vector<double> tiered{model.optimal_price(c[0]),
                                   model.optimal_price(c[1])};

  const auto surplus = [&](const std::vector<double>& prices) {
    return model.consumer_surplus(v[0], prices[0]) +
           model.consumer_surplus(v[1], prices[1]);
  };
  const auto quantities = [&](const std::vector<double>& prices) {
    return std::pair{model.quantity(v[0], prices[0]),
                     model.quantity(v[1], prices[1])};
  };

  util::TextTable table({"Pricing", "P1 ($/Mbps)", "P2 ($/Mbps)", "Q1 (Mbps)",
                         "Q2 (Mbps)", "Profit ($)", "Surplus ($)",
                         "Welfare ($)"});
  for (const auto& [name, prices] :
       {std::pair{"Blended rate", blended}, std::pair{"Tiered", tiered}}) {
    const auto [q1, q2] = quantities(prices);
    const double profit = model.total_profit(v, c, prices);
    const double s = surplus(prices);
    table.add_row(name,
                  {prices[0], prices[1], q1, q2, profit, s, profit + s}, 3);
  }
  table.print(std::cout);

  std::cout << "\nPaper reference: P0 = $1.2; profit $2.08 -> $2.25; "
               "surplus $4.17 -> $4.50 (tiering raises both profit and\n"
               "consumer surplus, i.e. social welfare).\n";
  return 0;
}
