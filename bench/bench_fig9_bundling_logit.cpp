// Reproduces paper Figure 9 (a-c): profit capture vs number of bundles
// under logit demand (five strategies; demand-weighted coincides with
// profit-weighted there, Eq. 13). Parameters: alpha = 1.1, P0 = $20,
// theta = 0.2, s0 = 0.2.
//
// Thin wrapper over the batch driver, like Fig. 8: one ExperimentGrid,
// one run_grid call, tables cut from the consolidated report.
#include "bench_common.hpp"

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 9 — Profit capture by bundling strategy (logit)",
                "Fraction of the per-flow-pricing profit headroom captured "
                "at 1..6 bundles.");

  driver::ExperimentGrid grid = driver::default_grid();
  grid.name = "fig9";
  grid.demand_kinds = {demand::DemandKind::Logit};
  grid.strategies = pricing::figure9_strategies();
  const auto report = driver::run_grid(grid);
  for (const auto kind : grid.datasets) {
    std::cout << "(" << to_string(kind) << ")\n";
    driver::capture_table(report, kind).print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: capture saturates faster than under CED "
               "(Fig. 8) — with two tiers the local and non-local traffic\n"
               "separate into bundles resembling backplane peering plus "
               "regional pricing.\n";
  bench::emit_timing_json("fig9_batch_grid",
                          report.cells.size() * report.points_per_cell,
                          report.wall_ms, report.threads);
  return 0;
}
