// Reproduces paper Figure 9 (a-c): profit capture vs number of bundles
// under logit demand (five strategies; demand-weighted coincides with
// profit-weighted there, Eq. 13). Parameters: alpha = 1.1, P0 = $20,
// theta = 0.2, s0 = 0.2.
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 9 — Profit capture by bundling strategy (logit)",
                "Fraction of the per-flow-pricing profit headroom captured "
                "at 1..6 bundles.");

  for (const auto kind :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
        workload::DatasetKind::Cdn}) {
    const auto m = bench::linear_market(kind, demand::DemandKind::Logit);
    std::cout << "(" << to_string(kind) << ")\n";
    bench::capture_table(m, pricing::figure9_strategies(), 6)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: capture saturates faster than under CED "
               "(Fig. 8) — with two tiers the local and non-local traffic\n"
               "separate into bundles resembling backplane peering plus "
               "regional pricing.\n";
  return 0;
}
