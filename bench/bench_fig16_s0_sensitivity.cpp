// Reproduces paper Figure 16: profit capture at each bundle count as the
// logit no-purchase share s0 ranges over (0, 0.9). The paper plots the
// extreme observed capture; we print both the minimum and the maximum.
#include "bench_common.hpp"

#include "pricing/sensitivity.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 16 — Robustness to the logit outside option s0",
                "Min and max profit capture over s0 in (0, 0.9) at each "
                "bundle count (profit-weighted, logit demand).");

  const std::vector<double> shares{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9};
  const auto cost = cost::make_linear_cost(0.2);
  util::TextTable table({"Data set", "Bound", "B=1", "B=2", "B=3", "B=4",
                         "B=5", "B=6"});
  for (const auto ds :
       {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
        workload::DatasetKind::Cdn}) {
    const auto flows = bench::dataset(ds);
    pricing::SensitivityInputs inputs;
    inputs.flows = &flows;
    inputs.cost_model = cost.get();
    inputs.demand.kind = demand::DemandKind::Logit;
    const auto sweep = pricing::sweep_no_purchase_share(inputs, shares);
    const auto emit = [&](const char* bound,
                          const std::vector<double>& values) {
      std::vector<std::string> row{std::string(to_string(ds)), bound};
      for (const double v : values) row.push_back(util::format_double(v, 3));
      table.add_row(std::move(row));
    };
    emit("min", sweep.min_capture);
    emit("max", sweep.max_capture);
  }
  table.print(std::cout);
  std::cout << "\nShape check: the share of consumers sitting out of the "
               "market barely moves the capture curves — the model is\n"
               "robust to the unobservable s0 calibration choice.\n";
  return 0;
}
