// Reproduces the paper's Figure 2 / §2.2.2 analysis: when does a customer
// bypass its transit ISP with a direct link to a nearby IXP, and when is
// that bypass a market failure that tiered pricing would have prevented?
#include "bench_common.hpp"

#include "accounting/billing.hpp"
#include "geo/cities.hpp"

int main() {
  using namespace manytiers;
  bench::header(
      "Figure 2 — Direct peering incentive under blended-rate pricing",
      "CDN at the NYC PoP deciding whether to build a link to the Boston "
      "IXP.");

  const double nyc_boston =
      geo::city_distance_miles(*geo::find_city("New York"),
                               *geo::find_city("Boston"));
  std::cout << "NYC -> Boston great-circle distance: "
            << util::format_double(nyc_boston, 1) << " miles\n\n";

  accounting::PeeringEconomics econ;
  econ.blended_rate = 10.0;        // R, $/Mbps/month for the full mix
  econ.isp_unit_cost = 2.0;        // c_ISP for the short NYC-Boston flow
  econ.isp_margin = 0.3;           // M
  econ.accounting_overhead = 0.4;  // A, cost of maintaining the tier
  const double floor = accounting::tiered_price_floor(econ);

  std::cout << "Blended rate R = $" << econ.blended_rate
            << ", ISP unit cost c_ISP = $" << econ.isp_unit_cost
            << ", margin M = " << econ.isp_margin << ", overhead A = $"
            << econ.accounting_overhead << "\n";
  std::cout << "Tiered price floor (M+1)*c_ISP + A = $"
            << util::format_double(floor, 2) << "\n\n";

  util::TextTable table({"c_direct ($/Mbps)", "Peels off (blended)?",
                         "Market failure?", "Outcome under tiered pricing"});
  for (const double c_direct : {1.0, 2.0, 2.5, 3.0, 5.0, 8.0, 9.9, 12.0}) {
    const bool peels = accounting::customer_peels_off(c_direct, econ);
    const bool failure = accounting::market_failure(c_direct, econ);
    const char* tiered_outcome =
        !peels ? "stays (was staying anyway)"
        : c_direct < floor ? "still peers directly (efficient bypass)"
                           : "stays with ISP at the tier price";
    table.add_row({util::format_double(c_direct, 2), peels ? "yes" : "no",
                   failure ? "YES" : "no", tiered_outcome});
  }
  table.print(std::cout);
  std::cout << "\nShape check: the failure window is exactly (floor, R) — "
               "bypass happens under the blended rate even though the ISP\n"
               "could profitably serve the flow cheaper than the customer's "
               "own link.\n";
  return 0;
}
