// Open-loop load harness for the manytiers_serve query daemon.
//
// Classic closed-loop clients (send, wait, send) hide server queueing:
// a slow response throttles the generator itself, so the measured
// latency stays flat right up to collapse. This harness is open-loop —
// request *arrival times* are drawn up front from a seeded exponential
// (Poisson) process at the offered rate, the sender fires each request
// at its scheduled instant whether or not earlier responses came back,
// and latency is measured from the scheduled arrival to the response,
// so queueing delay is part of the number. The sweep steps the offered
// load and reports the p50/p99/p999 curve; the knee where p99 departs
// from the flat region is the daemon's usable capacity.
//
// Each step runs warm-up / measure / cool-down phases: the warm-up
// samples let connection buffers, allocator arenas, and the scheduler
// settle, the cool-down keeps pressure on while the last measured
// requests drain, and only the measure-phase samples make the
// percentiles.
//
// Per connection the harness runs a sender thread (paces scheduled
// frames, batching everything already due into one write) and a
// receiver thread (timestamps completions in order — the protocol
// answers pipelined frames in order, so the k-th response pairs with
// the k-th scheduled arrival). By default the daemon runs in-process on
// a one-market grid; --socket points the sweep at an externally
// started manytiers_serve instead.
#include <sched.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"

namespace {

using manytiers::serve::Client;
using manytiers::serve::FrameReader;
using manytiers::serve::QueryKind;
using manytiers::serve::Request;
using manytiers::serve::Server;
using manytiers::serve::ServerOptions;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string socket;  // empty = spawn the in-process server
  std::string kind = "price";
  std::string market = "EU ISP/ced/linear";
  std::string strategy = "Profit-weighted";
  // One pipelined connection by default: on a box with few cores the
  // aggregate curve is better with one handler draining deep batches
  // than with per-connection thread parallelism fighting the scheduler
  // (measured: 1 conn holds p99 under 1 ms at 125k req/s where 2 conns
  // sit at several ms). Raise it on wide machines.
  std::size_t connections = 1;
  double step_start = 25000.0;  // req/s
  double step_size = 25000.0;
  double step_stop = 200000.0;
  double warmup_s = 0.3;
  double measure_s = 1.5;
  double cooldown_s = 0.15;
  std::size_t reps = 3;
  std::uint64_t seed = 42;
  bool full = false;
  // Overload regime: one fixed rate far past the knee (~2× the ~175k
  // req/s measured in PR 7) against a server armed with a request
  // deadline, reporting shed rate and the percentiles of the *accepted*
  // requests only. Because the deadline bounds how stale any request
  // the server still executes can be, p99-of-accepted is set by
  // configuration rather than machine speed — which is what makes it
  // gateable across machines (bench_diff latency-curve mode).
  bool overload = false;
  double overload_rate = 350000.0;
  int overload_deadline_ms = 20;
};

// One phase-partitioned arrival schedule for one connection.
struct ConnPlan {
  std::vector<double> sched_us;    // scheduled arrival offsets from step t0
  std::vector<double> done_us;     // completion offsets, filled by receiver
  std::size_t measure_begin = 0;   // [measure_begin, measure_end) is scored
  std::size_t measure_end = 0;
};

std::size_t share(std::size_t total, std::size_t conns, std::size_t c) {
  return total / conns + (c < total % conns ? 1 : 0);
}

// Draw the full warm-up + measure + cool-down arrival sequence for one
// connection: i.i.d. exponential gaps at rate/conns, so the aggregate
// across connections is a Poisson stream at the offered rate.
ConnPlan make_plan(const Config& cfg, double rate, std::size_t c) {
  const auto count = [&](double seconds) {
    return share(std::size_t(rate * seconds + 0.5), cfg.connections, c);
  };
  const std::size_t warm = count(cfg.warmup_s);
  const std::size_t meas = count(cfg.measure_s);
  const std::size_t cool = count(cfg.cooldown_s);

  ConnPlan plan;
  plan.measure_begin = warm;
  plan.measure_end = warm + meas;
  plan.sched_us.reserve(warm + meas + cool);
  std::mt19937_64 rng(cfg.seed ^ (0x9e3779b97f4a7c15ull * (c + 1)) ^
                      std::uint64_t(rate));
  std::exponential_distribution<double> gap(rate / double(cfg.connections) /
                                            1e6);  // per-µs rate
  double t = 0.0;
  for (std::size_t i = 0; i < warm + meas + cool; ++i) {
    t += gap(rng);
    plan.sched_us.push_back(t);
  }
  plan.done_us.assign(plan.sched_us.size(), 0.0);
  return plan;
}

// Pace the pre-encoded frame onto the socket at the scheduled instants.
// Everything already due goes out in one batched write — under load the
// sender is perpetually a hair behind schedule, so this is what turns
// per-request syscalls into a few large ones. When ahead of schedule it
// sleeps until the next arrival rather than spinning: a spinning sender
// on a shared core steals the very cycles the server needs, and the
// resulting timeslice churn shows up as fake tail latency. The price of
// sleeping is the timer's wake-up jitter (tens of µs), which lands in
// the measured latency as a small, honest floor.
void sender_loop(int fd, const std::string& frame, const ConnPlan& plan,
                 Clock::time_point t0) {
  std::string out;
  out.reserve(frame.size() * 64);
  std::size_t i = 0;
  const std::size_t n = plan.sched_us.size();
  while (i < n) {
    const auto target =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double, std::micro>(plan.sched_us[i]));
    auto now = Clock::now();
    if (target > now) {
      std::this_thread::sleep_until(target);
      now = Clock::now();
    }
    const double now_us =
        std::chrono::duration<double, std::micro>(now - t0).count();
    out.clear();
    do {
      out += frame;
      ++i;
    } while (i < n && plan.sched_us[i] <= now_us);
    manytiers::serve::write_all(fd, out);
  }
}

// Timestamp every completion. Responses come back in send order on a
// connection, so index k pairs with sched_us[k]; no per-response JSON
// parse in the hot loop (the harness validates one response up front).
void receiver_loop(int fd, ConnPlan& plan, Clock::time_point t0) {
  FrameReader reader(fd);
  std::string payload;
  for (std::size_t k = 0; k < plan.done_us.size(); ++k) {
    if (reader.next(payload) != FrameReader::Status::Frame) {
      std::cerr << "server closed mid-step after " << k << " responses\n";
      std::exit(1);
    }
    plan.done_us[k] =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  }
}

// Overload-mode receiver: also classify each response as accepted
// ("ok":true) or shed. The scan is a substring probe, not a JSON parse
// — serialize_response emits the ok field exactly once — so the hot
// loop stays allocation-free.
void receiver_loop_classify(int fd, ConnPlan& plan,
                            std::vector<std::uint8_t>& accepted,
                            Clock::time_point t0) {
  FrameReader reader(fd);
  std::string payload;
  for (std::size_t k = 0; k < plan.done_us.size(); ++k) {
    if (reader.next(payload) != FrameReader::Status::Frame) {
      std::cerr << "server closed mid-step after " << k << " responses\n";
      std::exit(1);
    }
    plan.done_us[k] =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    accepted[k] = payload.find("\"ok\":true") != std::string::npos ? 1 : 0;
  }
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * double(sorted.size() - 1);
  const std::size_t lo = std::size_t(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (rank - double(lo)) * (sorted[hi] - sorted[lo]);
}

struct StepResult {
  double offered = 0.0;
  double achieved = 0.0;
  std::size_t n = 0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0, max = 0.0;
};

StepResult run_step_once(const Config& cfg, const std::string& socket_path,
                         const std::string& frame, double rate) {
  std::vector<ConnPlan> plans;
  std::vector<Client> clients;
  plans.reserve(cfg.connections);
  clients.reserve(cfg.connections);
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    plans.push_back(make_plan(cfg, rate, c));
    clients.push_back(Client::connect_unix(socket_path));
  }

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cfg.connections * 2);
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    threads.emplace_back(receiver_loop, clients[c].fd(), std::ref(plans[c]),
                         t0);
    threads.emplace_back(sender_loop, clients[c].fd(), std::cref(frame),
                         std::cref(plans[c]), t0);
  }
  for (auto& t : threads) t.join();

  // Score the measure window only.
  std::vector<double> latencies;
  double first_done = 1e300, last_done = 0.0;
  for (const auto& plan : plans) {
    for (std::size_t k = plan.measure_begin; k < plan.measure_end; ++k) {
      latencies.push_back(plan.done_us[k] - plan.sched_us[k]);
      first_done = std::min(first_done, plan.done_us[k]);
      last_done = std::max(last_done, plan.done_us[k]);
    }
  }
  std::sort(latencies.begin(), latencies.end());

  StepResult r;
  r.offered = rate;
  r.n = latencies.size();
  const double span_us = last_done - first_done;
  r.achieved = span_us > 0.0 ? double(r.n) / span_us * 1e6 : 0.0;
  r.p50 = percentile(latencies, 0.50);
  r.p90 = percentile(latencies, 0.90);
  r.p99 = percentile(latencies, 0.99);
  r.p999 = percentile(latencies, 0.999);
  r.max = latencies.empty() ? 0.0 : latencies.back();
  return r;
}

// Repeat the step and keep the cleanest repetition (lowest p99). The
// latency signal here is the daemon's queueing behaviour, but on a
// shared box a background process grabbing the core for tens of
// milliseconds poisons one rep's tail with noise that has nothing to do
// with the server; the minimum across reps is the run least polluted by
// the neighbourhood. Offered-vs-achieved still comes from that same
// rep, so the row stays internally consistent.
StepResult run_step(const Config& cfg, const std::string& socket_path,
                    const std::string& frame, double rate) {
  StepResult best;
  for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
    Config seeded = cfg;
    seeded.seed = cfg.seed + rep * 1000003;
    const StepResult r = run_step_once(seeded, socket_path, frame, rate);
    if (rep == 0 || r.p99 < best.p99) best = r;
  }
  return best;
}

struct OverloadResult {
  double offered = 0.0;
  double achieved = 0.0;    // responses (accepted + shed) per second
  std::size_t n = 0;        // measure-window responses
  std::size_t n_accepted = 0;
  double shed_rate = 0.0;   // shed fraction of measure-window responses
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0, max = 0.0;  // accepted
  // Running max of the server's accepted-only arrival-to-done tail p99,
  // sampled throughout the run. In a saturated open-loop harness the
  // client-observed percentiles above grow with the test duration no
  // matter what the server does (the queue just backs up into the
  // senders), so they describe the regime, not the server. What the
  // deadline machinery actually bounds — and what the baseline gate
  // compares — is this number: at no point did a request that *got an
  // answer* wait longer than this between arrival and completion.
  double server_p99 = 0.0;
};

OverloadResult run_overload_once(const Config& cfg,
                                 const std::string& socket_path,
                                 const std::string& frame, double rate,
                                 const Server* server) {
  std::vector<ConnPlan> plans;
  std::vector<std::vector<std::uint8_t>> accepted;
  std::vector<Client> clients;
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    plans.push_back(make_plan(cfg, rate, c));
    accepted.emplace_back(plans.back().done_us.size(), 0);
    clients.push_back(Client::connect_unix(socket_path));
  }

  const auto t0 = Clock::now();
  // Track the worst served tail across the whole run, not a snapshot at
  // join time — by then the backlog may already have drained and the
  // last kWindow requests would read artificially fast.
  std::atomic<bool> sampling_done{false};
  double tail_max = 0.0;
  std::thread sampler;
  if (server != nullptr) {
    sampler = std::thread([&sampling_done, &tail_max, server] {
      while (!sampling_done.load(std::memory_order_relaxed)) {
        tail_max = std::max(tail_max, server->accepted_p99_us());
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    threads.emplace_back(receiver_loop_classify, clients[c].fd(),
                         std::ref(plans[c]), std::ref(accepted[c]), t0);
    threads.emplace_back(sender_loop, clients[c].fd(), std::cref(frame),
                         std::cref(plans[c]), t0);
  }
  for (auto& t : threads) t.join();
  sampling_done.store(true, std::memory_order_relaxed);
  if (sampler.joinable()) sampler.join();

  std::vector<double> ok_latencies;
  OverloadResult r;
  r.server_p99 = tail_max;
  r.offered = rate;
  double first_done = 1e300, last_done = 0.0;
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    const auto& plan = plans[c];
    for (std::size_t k = plan.measure_begin; k < plan.measure_end; ++k) {
      ++r.n;
      first_done = std::min(first_done, plan.done_us[k]);
      last_done = std::max(last_done, plan.done_us[k]);
      if (accepted[c][k]) {
        ++r.n_accepted;
        ok_latencies.push_back(plan.done_us[k] - plan.sched_us[k]);
      }
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const double span_us = last_done - first_done;
  r.achieved = span_us > 0.0 ? double(r.n) / span_us * 1e6 : 0.0;
  r.shed_rate = r.n > 0 ? double(r.n - r.n_accepted) / double(r.n) : 0.0;
  r.p50 = percentile(ok_latencies, 0.50);
  r.p90 = percentile(ok_latencies, 0.90);
  r.p99 = percentile(ok_latencies, 0.99);
  r.p999 = percentile(ok_latencies, 0.999);
  r.max = ok_latencies.empty() ? 0.0 : ok_latencies.back();
  return r;
}

OverloadResult run_overload(const Config& cfg, const std::string& socket_path,
                            const std::string& frame, double rate,
                            const Server* server) {
  OverloadResult best;
  for (std::size_t rep = 0; rep < cfg.reps; ++rep) {
    Config seeded = cfg;
    seeded.seed = cfg.seed + rep * 1000003;
    const OverloadResult r =
        run_overload_once(seeded, socket_path, frame, rate, server);
    // Best-of-reps keys on the gated metric (server tail p99) when the
    // server is in-process; client p99 otherwise.
    const double key = server != nullptr ? r.server_p99 : r.p99;
    const double best_key = server != nullptr ? best.server_p99 : best.p99;
    if (rep == 0 || key < best_key) best = r;
  }
  return best;
}

std::string build_request_frame(const Config& cfg) {
  Request request;
  request.id = 1;
  request.market = cfg.market;
  request.strategy = cfg.strategy;
  if (cfg.kind == "price") {
    request.kind = QueryKind::Price;
    request.q = 50.0;
    request.d = 100.0;
  } else if (cfg.kind == "schedule") {
    request.kind = QueryKind::Schedule;
  } else if (cfg.kind == "requote") {
    request.kind = QueryKind::Requote;
    request.flow = 3;
  } else {
    std::cerr << "unknown --kind '" << cfg.kind
              << "' (price|schedule|requote)\n";
    std::exit(2);
  }
  return manytiers::serve::encode_frame(
      manytiers::serve::serialize_request(request));
}

// Side-channel stats watcher: one extra connection polling the `stats`
// wire query at 1 Hz while the load runs. stats rides the never-shed
// admin path, so the polls keep answering even when the measured
// queries are being deadline-shed — and the committed latency gate must
// not move with the watcher on (that is the point: watching the daemon
// is free). Every poll's raw payload is kept and re-emitted after the
// run as one BENCH_SERIES line per poll — a server-side time series
// right next to the BENCH_JSON record, which also gains the poll count.
class StatsWatcher {
 public:
  void start(const std::string& socket_path) {
    thread_ = std::thread([this, socket_path] {
      try {
        Client client = Client::connect_unix(socket_path);
        client.set_timeout_ms(30000);
        Request request;
        request.kind = QueryKind::Stats;
        for (;;) {
          request.id = payloads_.size() + 1;
          payloads_.push_back(
              client.call_raw(manytiers::serve::serialize_request(request)));
          // Sleep the second in short slices so stop() is prompt.
          for (int slice = 0; slice < 100; ++slice) {
            if (done_.load(std::memory_order_acquire)) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        }
      } catch (const std::exception&) {
        // The watcher must never fail or skew the bench; a daemon
        // without the stats kind simply yields fewer (or zero) polls.
      }
    });
  }

  // Join and hand back the polled payloads (safe to read after join).
  std::vector<std::string> stop() {
    done_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
    return std::move(payloads_);
  }

 private:
  std::atomic<bool> done_{false};
  std::thread thread_;
  std::vector<std::string> payloads_;  // watcher thread only until join
};

// The in-process default target: one market, the serve test fixture's
// shape but at the smoke grid's flow count, so price queries exercise a
// realistic calibration without seconds of startup.
manytiers::driver::ExperimentGrid bench_grid() {
  manytiers::driver::ExperimentGrid grid;
  grid.name = "serve-bench";
  grid.datasets = {manytiers::workload::DatasetKind::EuIsp};
  grid.demand_kinds = {manytiers::demand::DemandKind::ConstantElasticity};
  grid.cost_kinds = {manytiers::driver::CostKind::Linear};
  grid.strategies = {manytiers::pricing::Strategy::ProfitWeighted};
  grid.max_bundles = 4;
  grid.base.n_flows = 50;
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool connections_given = false;
  for (int i = 1; i < argc; ++i) {
    const auto arg = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return (const char*)nullptr;
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        std::exit(2);
      }
      return (const char*)argv[++i];
    };
    if (const char* v = arg("--socket")) {
      cfg.socket = v;
    } else if (const char* v = arg("--kind")) {
      cfg.kind = v;
    } else if (const char* v = arg("--market")) {
      cfg.market = v;
    } else if (const char* v = arg("--strategy")) {
      cfg.strategy = v;
    } else if (const char* v = arg("--connections")) {
      cfg.connections = std::stoul(v);
      connections_given = true;
    } else if (const char* v = arg("--step-start")) {
      cfg.step_start = std::stod(v);
    } else if (const char* v = arg("--step-size")) {
      cfg.step_size = std::stod(v);
    } else if (const char* v = arg("--step-stop")) {
      cfg.step_stop = std::stod(v);
    } else if (const char* v = arg("--measure-s")) {
      cfg.measure_s = std::stod(v);
    } else if (const char* v = arg("--reps")) {
      cfg.reps = std::stoul(v);
    } else if (const char* v = arg("--seed")) {
      cfg.seed = std::stoull(v);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      cfg.full = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      cfg.overload = true;
    } else if (const char* v = arg("--overload-rate")) {
      cfg.overload_rate = std::stod(v);
    } else if (const char* v = arg("--overload-deadline-ms")) {
      cfg.overload_deadline_ms = std::stoi(v);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--socket PATH] [--kind price|schedule|requote]\n"
                << "  [--market KEY] [--strategy NAME] [--connections N]\n"
                << "  [--step-start R] [--step-size R] [--step-stop R]\n"
                << "  [--measure-s S] [--reps N] [--seed N] [--full]\n"
                << "  [--overload] [--overload-rate R] "
                   "[--overload-deadline-ms N]\n";
      return 2;
    }
  }
  if (cfg.connections == 0) {
    std::cerr << "--connections must be > 0\n";
    return 2;
  }
  if (!cfg.full && !cfg.overload) {
    // Quick mode: a 3-point sweep with short windows, for smoke runs.
    cfg.step_start = 25000.0;
    cfg.step_size = 50000.0;
    cfg.step_stop = 125000.0;
    cfg.warmup_s = 0.1;
    cfg.measure_s = 0.4;
    cfg.cooldown_s = 0.05;
    cfg.reps = std::min<std::size_t>(cfg.reps, 2);
  }
  if (cfg.overload && !cfg.full) {
    cfg.warmup_s = 0.2;
    cfg.measure_s = 0.8;
    cfg.cooldown_s = 0.1;
    cfg.reps = std::min<std::size_t>(cfg.reps, 2);
    // Many moderate connections, not one firehose: a single pipelined
    // connection keeps its backlog in the socket buffers where the
    // server's arrival clock cannot see it (backpressure, not shedding,
    // is the control there). Contending connections put the queue
    // inside the server, which is the shape the deadline shedder
    // exists for.
    if (!connections_given) cfg.connections = 16;
  }

  manytiers::bench::header(
      cfg.overload
          ? "Serve load — overload regime (2x knee, deadline shedding)"
          : "Serve load — open-loop latency vs offered rate",
      cfg.overload
          ? "One fixed offered rate far past the knee against a "
            "deadline-armed server; shed rate plus the server-side "
            "arrival-to-done tail the deadline bounds."
          : "Poisson arrivals stepped across offered req/s against "
            "manytiers_serve; latency from scheduled arrival to response.");

  // Target: an external daemon, or an in-process server on the default
  // one-market grid. The overload regime arms the in-process server
  // with the request deadline its gated tail-p99 bound comes from.
  std::unique_ptr<Server> server;
  std::string socket_path = cfg.socket;
  if (socket_path.empty()) {
    socket_path = "/tmp/mt_bench_serve_" + std::to_string(::getpid()) + ".sock";
    ServerOptions options;
    options.unix_path = socket_path;
    if (cfg.overload) {
      options.request_deadline_ms = cfg.overload_deadline_ms;
    }
    // The stats side-channel below reads this process's registry: turn
    // it on so the polled counters and histograms are live, the same
    // switch a standalone daemon flips when --metrics is given.
    manytiers::obs::set_enabled(true);
    server = std::make_unique<Server>(bench_grid(), options);
    server->start();
  }

  const std::string frame = build_request_frame(cfg);

  // Validate one exchange before the sweep so a bad market/strategy is a
  // clear error, not a latency curve of structured failures.
  {
    Client probe = Client::connect_unix_retry(socket_path, 30000);
    const std::string payload = probe.call_raw(
        frame.substr(4));  // strip the length prefix back off
    const auto response = manytiers::serve::parse_response(payload);
    if (!response.ok) {
      std::cerr << "probe query failed: " << response.error << "\n";
      return 1;
    }
  }

  // 1 Hz stats polling for the whole run, warm-up through cool-down: the
  // measure windows are inside that span, so the gate below is measured
  // with the watcher live.
  StatsWatcher watcher;
  watcher.start(socket_path);

  if (cfg.overload) {
    const auto t0 = Clock::now();
    const OverloadResult r =
        run_overload(cfg, socket_path, frame, cfg.overload_rate, server.get());
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const std::vector<std::string> polls = watcher.stop();
    const auto usage = manytiers::bench::resource_usage();
    // "p99_us" is the server-side arrival-to-done tail — the field
    // bench_diff.py hard-gates, bounded by the configured deadline, not
    // by machine speed. The client-observed percentiles go out under
    // "client_*" keys (informational): in a saturated open-loop run
    // they scale with the measure window, so gating on them would gate
    // on the harness, not the server.
    std::cout << "BENCH_JSON {\"bench\":\"serve_load_overload\",\"n\":" << r.n
              << ",\"req_per_s\":" << r.offered
              << ",\"achieved_per_s\":" << r.achieved
              << ",\"accepted\":" << r.n_accepted
              << ",\"shed_rate\":" << r.shed_rate
              << ",\"deadline_ms\":" << cfg.overload_deadline_ms
              << ",\"connections\":" << cfg.connections
              << ",\"p99_us\":" << r.server_p99
              << ",\"stats_polls\":" << polls.size()
              << ",\"client_p50_us\":" << r.p50
              << ",\"client_p90_us\":" << r.p90
              << ",\"client_p99_us\":" << r.p99
              << ",\"client_p999_us\":" << r.p999
              << ",\"client_max_us\":" << r.max << ",\"wall_ms\":" << wall_ms
              << ",\"threads\":" << cfg.connections
              << ",\"max_rss_kb\":" << usage.max_rss_kb
              << ",\"cpu_user_s\":" << usage.cpu_user_s
              << ",\"cpu_sys_s\":" << usage.cpu_sys_s << "}\n";
    for (const auto& payload : polls) {
      std::cout << "BENCH_SERIES " << payload << "\n";
    }
    manytiers::util::TextTable table({"req/s", "achieved", "n", "accepted",
                                      "shed %", "srv p99 us", "cli p99 us"});
    table.add_row(manytiers::util::format_double(r.offered, 0),
                  {r.achieved, double(r.n), double(r.n_accepted),
                   r.shed_rate * 100.0, r.server_p99, r.p99},
                  1);
    std::cout << "\n";
    table.print(std::cout);
    if (server) server->stop();
    return 0;
  }

  manytiers::util::TextTable table(
      {"req/s", "achieved", "n", "p50 us", "p90 us", "p99 us", "p999 us"});
  for (double rate = cfg.step_start; rate <= cfg.step_stop + 1e-9;
       rate += cfg.step_size) {
    const auto t0 = Clock::now();
    const StepResult r = run_step(cfg, socket_path, frame, rate);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const auto usage = manytiers::bench::resource_usage();
    std::cout << "BENCH_JSON {\"bench\":\"serve_load_" << cfg.kind
              << "_r" << std::size_t(rate) << "\",\"n\":" << r.n
              << ",\"req_per_s\":" << r.offered
              << ",\"achieved_per_s\":" << r.achieved
              << ",\"connections\":" << cfg.connections
              << ",\"p50_us\":" << r.p50 << ",\"p90_us\":" << r.p90
              << ",\"p99_us\":" << r.p99 << ",\"p999_us\":" << r.p999
              << ",\"max_us\":" << r.max << ",\"wall_ms\":" << wall_ms
              << ",\"threads\":" << cfg.connections
              << ",\"max_rss_kb\":" << usage.max_rss_kb
              << ",\"cpu_user_s\":" << usage.cpu_user_s
              << ",\"cpu_sys_s\":" << usage.cpu_sys_s << "}\n";
    table.add_row(
        manytiers::util::format_double(rate, 0),
        {r.achieved, double(r.n), r.p50, r.p90, r.p99, r.p999}, 1);
  }
  for (const auto& payload : watcher.stop()) {
    std::cout << "BENCH_SERIES " << payload << "\n";
  }
  std::cout << "\n";
  table.print(std::cout);

  if (server) server->stop();
  return 0;
}
