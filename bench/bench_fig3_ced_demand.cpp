// Reproduces paper Figure 3: feasible CED demand curves, showing how the
// sensitivity parameter alpha spans the feasible demand space (v = 1;
// alpha = 3.3 for elastic residential-ISP-like demand, 1.4 for inelastic).
#include "bench_common.hpp"

#include "demand/ced.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 3 — Feasible CED demand functions",
                "Quantity demanded vs unit price for v = 1, alpha in "
                "{3.3, 1.4}.");

  const demand::CedModel elastic(3.3);
  const demand::CedModel inelastic(1.4);
  util::TextTable table(
      {"Price ($/Mbps)", "Q (alpha=3.3)", "Q (alpha=1.4)"});
  for (double p = 0.25; p <= 4.001; p += 0.25) {
    table.add_row({p, elastic.quantity(1.0, p), inelastic.quantity(1.0, p)},
                  3);
  }
  table.print(std::cout);

  std::cout << "\nShape check: both curves pass through (1, 1); the "
               "alpha=3.3 curve collapses much faster above the valuation\n"
               "point and explodes faster below it (high elasticity), "
               "covering the feasible space as alpha varies.\n";
  return 0;
}
