// Reproduces paper Figure 5: logit demand curves. Two flows with
// valuations (1.6, 1.0); the first flow's price is fixed at 1 and the
// second flow's price sweeps [0, 4] for alpha in {1, 2}. Demands are not
// separable: flow 2's share depends on flow 1's offer and the outside
// option.
#include "bench_common.hpp"

#include "demand/logit.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 5 — Logit demand function",
                "Market share of flow 2 vs its price; v = (1.6, 1.0), "
                "p1 = 1, K = 1.");

  const demand::LogitModel low(1.0, 1.0);
  const demand::LogitModel high(2.0, 1.0);
  const std::vector<double> v{1.6, 1.0};
  util::TextTable table(
      {"Price p2", "Q2 (alpha=1)", "Q2 (alpha=2)", "Q1 (alpha=2)"});
  for (double p2 = 0.0; p2 <= 4.001; p2 += 0.25) {
    const std::vector<double> p{1.0, std::max(p2, 1e-9)};
    table.add_row({p2, low.quantities(v, p)[1], high.quantities(v, p)[1],
                   high.quantities(v, p)[0]},
                  4);
  }
  table.print(std::cout);

  std::cout << "\nShape check: demand for flow 2 falls smoothly in its own "
               "price; higher alpha steepens the drop; flow 1's demand\n"
               "rises as flow 2 becomes expensive (substitution, unlike the "
               "separable CED model).\n";
  return 0;
}
