// Extension bench: does Fig. 1's welfare claim hold at dataset scale?
//
// Fig. 1 shows tiered pricing raising both ISP profit and consumer
// surplus for two flows. Here we track profit, consumer surplus, and
// total welfare for optimal bundlings of 1..6 tiers on all three
// calibrated datasets and both demand models, normalized to the blended
// status quo (1.0 = no change).
#include "bench_common.hpp"

#include "pricing/welfare.hpp"

int main() {
  using namespace manytiers;
  bench::header("Extension — welfare effects of tiering at dataset scale",
                "Profit / consumer surplus / total welfare vs tier count, "
                "relative to the blended rate (optimal bundling).");

  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    util::TextTable table({"Data set", "Metric", "B=1", "B=2", "B=3", "B=4",
                           "B=5", "B=6"});
    for (const auto ds :
         {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
          workload::DatasetKind::Cdn}) {
      const auto m = bench::linear_market(ds, kind);
      const auto base = pricing::blended_welfare(m);
      std::vector<double> profit, surplus, welfare;
      for (std::size_t b = 1; b <= 6; ++b) {
        const auto res =
            pricing::run_strategy(m, pricing::Strategy::Optimal, b);
        const auto w = pricing::welfare_at_prices(m, res.pricing.flow_prices);
        profit.push_back(w.profit / base.profit);
        surplus.push_back(w.consumer_surplus / base.consumer_surplus);
        welfare.push_back(w.welfare / base.welfare);
      }
      const std::string name(to_string(ds));
      const auto emit = [&](const char* metric,
                            const std::vector<double>& values) {
        std::vector<std::string> row{name, metric};
        for (const double v : values) {
          row.push_back(util::format_double(v, 4));
        }
        table.add_row(std::move(row));
      };
      emit("profit", profit);
      emit("surplus", surplus);
      emit("welfare", welfare);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout
      << "Shape check: Fig. 1 generalizes — every added tier raises profit "
         "and consumer surplus together on every dataset.\nUnder CED the "
         "profit and surplus ratios are *identical*: at per-bundle optimal "
         "prices both aggregate to\nsum_b W_b cbar_b^(1-alpha) times "
         "constants, so optimal tiering is exactly Pareto-improving. The "
         "logit market splits\nthe gains unevenly (the ISP captures more "
         "than consumers) but both sides still gain.\n";
  return 0;
}
