// Reproduces paper Figure 10: profit increase in the EU ISP network under
// the linear cost model for base-cost fractions theta in {0.1, 0.2, 0.3},
// with both demand models. Values are normalized to the figure-wide best
// attainable profit increase (the paper's normalization).
#include "bench_common.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 10 — Linear cost model, EU ISP",
                "Profit capture vs bundles for theta in {0.1, 0.2, 0.3}, "
                "profit-weighted bundling.");

  const auto flows = bench::dataset(workload::DatasetKind::EuIsp);
  const std::vector<double> thetas{0.1, 0.2, 0.3};
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    bench::theta_sweep_table(flows, kind,
                             [](double t) { return cost::make_linear_cost(t); },
                             thetas, pricing::Strategy::ProfitWeighted)
        .print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: 2-3 bundles already reach each curve's "
               "plateau; larger base cost (theta) lowers the plateau —\n"
               "higher base cost shrinks the CV of cost and with it the "
               "opportunity for variable pricing.\n";
  return 0;
}
