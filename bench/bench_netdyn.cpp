// Per-update wall-time of the dynamic-network kernels: naive full
// re-Dijkstra vs incremental Ramalingam–Reps repair, on ring-plus-chords
// backbones under single-link reweigh streams.
//
// The sweep axis is the *affected fraction* — the share of sources whose
// distance row actually changed, measured from each update's
// DistanceDelta. Gentle reweighs (a few percent either way) keep the
// fraction small, which is where incremental repair's skip-unaffected
// fast path pays; harsher magnitudes drag more of the matrix along and
// shrink the win. The gate configs are the gentle streams: the
// acceptance number is a >= 5x median per-update win at <= 10% affected.
//
// Modes:
//   bench_netdyn                       both kernels, affected-fraction
//                                      sweep table, bit-identity check,
//                                      and a self-gate: exits 1 if the
//                                      incremental kernel is not >= 5x
//                                      on a gate config or the final
//                                      matrices differ.
//   bench_netdyn --kernel naive        one kernel, gate configs only,
//   bench_netdyn --kernel incremental  kernel-free BENCH_JSON names
//                                      (netdyn_update_n...) with one
//                                      record per update — bench_diff.py
//                                      collapses repeats to the median,
//                                      so `--min-speedup 5` on a naive
//                                      log vs an incremental log is
//                                      exactly the acceptance gate
//                                      (tools/check.sh runs it).
//   --full                             adds a 1024-PoP gate config.
#include "bench_common.hpp"

#include <chrono>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "netdyn/dynamic_network.hpp"
#include "netdyn/testbed.hpp"
#include "topology/dijkstra.hpp"
#include "util/rng.hpp"

namespace {

using namespace manytiers;

// Links ranked by how many sources' shortest-path trees use them.
// Reweighing a link only perturbs the sources whose tree contains it
// (plus any source it newly improves), so "cold" links — used by at
// most `max_share` of sources — are the handle on the affected
// fraction: a random link in a ring-plus-chords graph sits in roughly
// half of all trees, while the coldest chords sit in a few percent.
std::vector<std::size_t> links_used_by_at_most(const topology::Network& base,
                                               double max_share) {
  const auto& links = base.links();
  std::vector<std::size_t> usage(links.size(), 0);
  std::map<std::pair<topology::PopId, topology::PopId>, std::size_t> index;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto key = links[i].a < links[i].b
                         ? std::make_pair(links[i].a, links[i].b)
                         : std::make_pair(links[i].b, links[i].a);
    index[key] = i;
  }
  for (topology::PopId s = 0; s < base.pop_count(); ++s) {
    const auto sp = topology::shortest_paths(base, s);
    for (topology::PopId v = 0; v < base.pop_count(); ++v) {
      const topology::PopId p = sp.predecessor[v];
      if (p == v) continue;  // source or unreachable
      const auto key = p < v ? std::make_pair(p, v) : std::make_pair(v, p);
      ++usage[index.at(key)];
    }
  }
  const auto cap =
      std::size_t(max_share * double(base.pop_count()));
  std::vector<std::size_t> cold;
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (usage[i] <= cap) cold.push_back(i);
  }
  return cold;
}

// A stream of single-link reweighs drawn from `candidates`: each update
// multiplies or divides the link's current length by `factor`, so
// lengths random-walk around their seeds and the affected fraction
// stays characteristic of the magnitude instead of drifting.
std::vector<netdyn::NetworkUpdate> reweigh_stream(
    const topology::Network& base, const std::vector<std::size_t>& candidates,
    std::uint64_t seed, std::size_t count, double factor) {
  util::Rng rng(seed);
  const auto& links = base.links();
  std::vector<double> length;
  length.reserve(links.size());
  for (const auto& l : links) length.push_back(l.length_miles);
  std::vector<netdyn::NetworkUpdate> stream;
  stream.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = candidates[rng.index(candidates.size())];
    length[pick] *= rng.bernoulli(0.5) ? factor : 1.0 / factor;
    netdyn::NetworkUpdate u;
    u.kind = netdyn::NetworkUpdate::Kind::LinkWeight;
    u.a = base.pop(links[pick].a).name;
    u.b = base.pop(links[pick].b).name;
    u.length_miles = length[pick];
    stream.push_back(std::move(u));
  }
  return stream;
}

struct StreamResult {
  double median_ms = 0.0;        // median per-update wall time
  double mean_affected_pct = 0.0;  // mean share of changed source rows
  topology::DistanceMatrix final_distances;
};

std::size_t distinct_sources(const netdyn::DistanceDelta& delta) {
  std::size_t sources = 0;
  topology::PopId last = 0;
  for (std::size_t i = 0; i < delta.changed.size(); ++i) {
    if (i == 0 || delta.changed[i].first != last) ++sources;
    last = delta.changed[i].first;
  }
  return sources;
}

StreamResult run_stream(netdyn::SsspKernel kernel,
                        const topology::Network& base,
                        const std::vector<netdyn::NetworkUpdate>& stream,
                        const std::string& json_name) {
  netdyn::DynamicNetwork dyn(base, {kernel});
  std::vector<double> samples;
  samples.reserve(stream.size());
  double affected_sum = 0.0;
  for (const auto& update : stream) {
    const auto start = std::chrono::steady_clock::now();
    const netdyn::DistanceDelta delta = dyn.apply(update);
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    samples.push_back(ms);
    affected_sum += 100.0 * double(distinct_sources(delta)) /
                    double(delta.pop_count);
    if (!json_name.empty()) {
      bench::emit_timing_json(json_name, base.pop_count(), ms, 1);
    }
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  StreamResult result;
  result.median_ms = samples.size() % 2 == 1
                         ? samples[mid]
                         : 0.5 * (samples[mid - 1] + samples[mid]);
  result.mean_affected_pct = affected_sum / double(stream.size());
  result.final_distances = dyn.distances();
  return result;
}

struct Config {
  std::size_t n_pops;
  double factor;
  // Gate configs reweigh only cold links (tree share <= 5%), realizing
  // the <= 10%-affected regime the acceptance number names; the rest
  // sweep the whole link set for the affected-fraction curve.
  bool gate;
};

std::vector<std::size_t> stream_candidates(const topology::Network& base,
                                           bool cold_only) {
  if (cold_only) {
    // Prefer the coldest links; relax the share cap before giving up so
    // smaller backbones (whose chords are individually hotter) still
    // land near the <= 10%-affected regime.
    for (const double share : {0.02, 0.05, 0.08}) {
      auto cold = links_used_by_at_most(base, share);
      if (cold.size() >= 4) return cold;
    }
  }
  std::vector<std::size_t> all(base.link_count());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

topology::Network backbone(std::size_t n_pops) {
  // Chord-rich so single links carry a small share of shortest-path
  // trees — the regime the <= 10%-affected acceptance number names.
  return netdyn::synthetic_backbone(
      {.n_pops = n_pops, .extra_links = n_pops, .seed = 7});
}

std::string gate_name(const Config& config) {
  return "netdyn_update_n" + std::to_string(config.n_pops) + "_f" +
         std::to_string(std::size_t(config.factor * 100.0));
}

constexpr std::size_t kUpdatesPerStream = 40;

}  // namespace

int main(int argc, char** argv) {
  std::string kernel_arg;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernel") == 0 && i + 1 < argc) {
      kernel_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else {
      std::cerr << "usage: bench_netdyn [--kernel naive|incremental] [--full]"
                << std::endl;
      return 2;
    }
  }

  // 256 PoPs is dense enough that no link is cold (every chord sits in
  // >8% of trees), so it sweeps all links and stays informational; the
  // 512-PoP backbones have genuinely cold chords and carry the gate.
  std::vector<Config> configs{
      {256, 1.04, false},
      {512, 1.02, true},
      {512, 1.04, true},
      {512, 1.5, false},
      {512, 4.0, false},
  };
  if (full) configs.push_back({1024, 1.04, true});

  if (!kernel_arg.empty()) {
    // Single-kernel gate mode: emit only the gate configs, one
    // BENCH_JSON record per update under a kernel-free name, so a naive
    // log and an incremental log diff key-by-key.
    netdyn::SsspKernel kernel;
    if (kernel_arg == "naive") {
      kernel = netdyn::SsspKernel::kNaive;
    } else if (kernel_arg == "incremental") {
      kernel = netdyn::SsspKernel::kIncremental;
    } else {
      std::cerr << "bench_netdyn: unknown kernel '" << kernel_arg << "'"
                << std::endl;
      return 2;
    }
    obs::maybe_start_trace_from_env();
    for (const auto& config : configs) {
      if (!config.gate) continue;
      const auto base = backbone(config.n_pops);
      const auto stream =
          reweigh_stream(base, stream_candidates(base, true), 11,
                         kUpdatesPerStream, config.factor);
      run_stream(kernel, base, stream, gate_name(config));
    }
    return 0;
  }

  bench::header("bench_netdyn",
                "Incremental vs naive SSSP maintenance: median per-update "
                "wall time under single-link reweigh streams");

  util::TextTable table(
      {"PoPs", "links", "factor", "affected%", "naive ms", "incr ms",
       "speedup"});
  bool gate_ok = true;
  bool identical = true;
  for (const auto& config : configs) {
    const auto base = backbone(config.n_pops);
    const auto stream =
        reweigh_stream(base, stream_candidates(base, config.gate), 11,
                       kUpdatesPerStream, config.factor);
    const auto naive =
        run_stream(netdyn::SsspKernel::kNaive, base, stream, "");
    const auto incr =
        run_stream(netdyn::SsspKernel::kIncremental, base, stream,
                   config.gate ? gate_name(config) : std::string());
    if (!(naive.final_distances == incr.final_distances)) identical = false;
    const double speedup = incr.median_ms > 0.0
                               ? naive.median_ms / incr.median_ms
                               : std::numeric_limits<double>::infinity();
    if (config.gate && speedup < 5.0) gate_ok = false;
    table.add_row(std::to_string(config.n_pops),
                  {double(base.link_count()), config.factor,
                   naive.mean_affected_pct, naive.median_ms, incr.median_ms,
                   speedup},
                  3);
  }
  table.print(std::cout);
  std::cout << "\n";

  if (!identical) {
    std::cout << "GATE FAIL: kernels disagree — the final distance matrices "
                 "are not bit-identical\n";
    return 1;
  }
  if (!gate_ok) {
    std::cout << "GATE FAIL: incremental kernel below 5x on a gentle "
                 "(gate) config\n";
    return 1;
  }
  std::cout << "gate ok: incremental >= 5x on every gentle config, kernels "
               "bit-identical\n";
  return 0;
}
