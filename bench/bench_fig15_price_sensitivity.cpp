// Reproduces paper Figure 15: worst-case profit capture at each bundle
// count as the starting blended rate P0 ranges over [$5, $30].
#include "bench_common.hpp"

#include "pricing/sensitivity.hpp"

int main() {
  using namespace manytiers;
  bench::header("Figure 15 — Robustness to the blended rate P0",
                "Minimum profit capture over P0 in [5, 30] at each bundle "
                "count (profit-weighted).");

  const std::vector<double> rates{5.0, 10.0, 15.0, 20.0, 25.0, 30.0};
  const auto cost = cost::make_linear_cost(0.2);
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    std::cout << bench::demand_name(kind) << ":\n";
    util::TextTable table(
        {"Data set", "B=1", "B=2", "B=3", "B=4", "B=5", "B=6"});
    for (const auto ds :
         {workload::DatasetKind::EuIsp, workload::DatasetKind::Internet2,
          workload::DatasetKind::Cdn}) {
      const auto flows = bench::dataset(ds);
      pricing::SensitivityInputs inputs;
      inputs.flows = &flows;
      inputs.cost_model = cost.get();
      inputs.demand.kind = kind;
      const auto sweep = pricing::sweep_blended_price(inputs, rates);
      table.add_row(std::string(to_string(ds)), sweep.min_capture, 3);
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Shape check: capture is insensitive to the blended rate — "
               "under CED the capture series is *exactly* P0-invariant\n"
               "(valuations and costs both rescale with P0), so the minimum "
               "equals the P0 = $20 series of Fig. 8.\n";
  return 0;
}
