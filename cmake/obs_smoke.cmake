# Observability smoke test, run by ctest (label: obs).
#
# The load-bearing invariant: turning tracing + metrics on — including
# the streaming extensions (--metrics-interval-ms delta snapshots and
# --trace-sample span sampling) — never changes a single byte of
# BATCH_JSON output.
#
# 1. Single-process: `manytiers_batch --grid default` with and without
#    --trace/--metrics/--metrics-interval-ms/--trace-sample must produce
#    byte-identical reports, and the sidecars (series stream included)
#    must actually appear.
# 2. Orchestrated: a 3-worker run with one injected crash, --trace,
#    --metrics and both streaming flags all at once must still be
#    byte-identical to the single-process report; the event log must
#    carry the "v":1 plan, the merged "metrics" roll-up, the
#    "metrics-series" timeline roll-up, and the "trace" stitch event.
# 3. When python3 is available, the merged trace, the metrics sidecar,
#    and both series streams must parse with json.load (the
#    Perfetto-loadable contract).
#
# Expects: ORCH_BIN, BATCH_BIN, WORK_DIR; PYTHON may be empty.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(plain "${WORK_DIR}/plain.batch")
set(traced "${WORK_DIR}/traced.batch")
set(trace_file "${WORK_DIR}/single.trace.json")
set(metrics_file "${WORK_DIR}/single.metrics.json")
set(series_file "${WORK_DIR}/single.metrics.series.json")

execute_process(
  COMMAND "${BATCH_BIN}" --grid default --no-timing --out "${plain}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline manytiers_batch --grid default failed (${rc})")
endif()

execute_process(
  COMMAND "${BATCH_BIN}" --grid default --no-timing --out "${traced}"
    --trace "${trace_file}" --trace-sample 3
    --metrics "${metrics_file}" --metrics-interval-ms 25
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced manytiers_batch --grid default failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${plain}" "${traced}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "--trace/--metrics changed the report bytes: ${plain} vs ${traced}; "
    "observability must be invisible to BATCH_JSON")
endif()
foreach(sidecar "${trace_file}" "${metrics_file}" "${series_file}")
  if(NOT EXISTS "${sidecar}")
    message(FATAL_ERROR "expected sidecar ${sidecar} was not written")
  endif()
endforeach()

# A trace must open with spans in it: at least the two run_grid phases.
file(READ "${trace_file}" trace_text)
if(NOT trace_text MATCHES "run_grid.calibrate")
  message(FATAL_ERROR "trace ${trace_file} has no run_grid.calibrate span")
endif()
if(NOT trace_text MATCHES "run_grid.sweep")
  message(FATAL_ERROR "trace ${trace_file} has no run_grid.sweep span")
endif()
file(READ "${metrics_file}" metrics_text)
if(NOT metrics_text MATCHES "\"name\":\"driver.tasks\"")
  message(FATAL_ERROR
    "metrics sidecar ${metrics_file} has no driver.tasks counter")
endif()
# The series stream must open with its baseline tick (seq 0).
file(READ "${series_file}" series_text)
if(NOT series_text MATCHES "\"kind\":\"tick\"")
  message(FATAL_ERROR "series stream ${series_file} has no tick records")
endif()
if(NOT series_text MATCHES "\"seq\":0")
  message(FATAL_ERROR "series stream ${series_file} has no baseline tick")
endif()

# Orchestrated leg: crash shard 1 once, trace + meter everything, and
# the merged report must still match the single-process bytes.
set(orch "${WORK_DIR}/orch.batch")
set(merged_trace "${WORK_DIR}/merged.trace.json")
set(events "${WORK_DIR}/orch.events")
execute_process(
  COMMAND "${ORCH_BIN}" --grid default --workers 3 --fault crash:1
    --retries 2 --backoff-ms 1 --worker "${BATCH_BIN}"
    --trace "${merged_trace}" --trace-sample 3
    --metrics --metrics-interval-ms 25
    --work-dir "${WORK_DIR}/parts" --event-log "${events}"
    --out "${orch}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrated traced run failed (${rc}); see ${events}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${plain}" "${orch}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrated report ${orch} differs from single-process ${plain}; "
    "tracing + metrics + a crash-retry must not change the merged bytes")
endif()

file(READ "${events}" event_text)
if(NOT event_text MATCHES "\"type\":\"plan\",\"v\":1")
  message(FATAL_ERROR "event log ${events} has no versioned plan event")
endif()
if(NOT event_text MATCHES "\"type\":\"metrics\",\"shards_reporting\":3")
  message(FATAL_ERROR
    "event log ${events} has no merged metrics event for all 3 shards")
endif()
if(NOT event_text MATCHES "\"type\":\"trace\"")
  message(FATAL_ERROR "event log ${events} has no trace stitch event")
endif()
if(NOT event_text MATCHES "\"type\":\"metrics-series\"")
  message(FATAL_ERROR
    "event log ${events} has no metrics-series roll-up event")
endif()
set(merged_series "${WORK_DIR}/parts/metrics.series.json")
if(NOT EXISTS "${merged_series}")
  message(FATAL_ERROR "merged series ${merged_series} was not written")
endif()
file(READ "${merged_series}" merged_series_text)
if(NOT merged_series_text MATCHES "\"kind\":\"tick\"")
  message(FATAL_ERROR "merged series ${merged_series} has no tick records")
endif()
if(NOT EXISTS "${merged_trace}")
  message(FATAL_ERROR "merged trace ${merged_trace} was not written")
endif()
file(READ "${merged_trace}" merged_text)
if(NOT merged_text MATCHES "\"ph\":\"X\"")
  message(FATAL_ERROR
    "merged trace ${merged_trace} has no supervisor lifecycle X spans")
endif()

# Strict JSON validation when an interpreter is around: the merged trace
# and the metrics sidecar must both load as JSON (Perfetto would).
if(PYTHON)
  execute_process(
    COMMAND "${PYTHON}" -c "import json,sys
events = json.load(open(sys.argv[1]))
assert isinstance(events, list) and events, 'empty trace'
pids = {e['pid'] for e in events}
assert len(pids) >= 4, f'expected supervisor + 3 worker pids, got {pids}'
json.load(open(sys.argv[2]))
for series in sys.argv[3:]:
    records = json.load(open(series))
    assert any(r.get('kind') == 'tick' for r in records), series
" "${merged_trace}" "${metrics_file}" "${series_file}" "${merged_series}"
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "trace/metrics JSON validation failed:\n${err}")
  endif()
endif()
