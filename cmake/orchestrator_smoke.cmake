# Smoke test for the shard orchestrator CLI, run by ctest (label:
# orchestrator).
#
# 1. Supervise a 3-worker run of the smoke grid with shard 1 fault-
#    injected to crash once; the merged report must be byte-identical to
#    the checked-in golden, and the event log must record the retry.
# 2. A run whose shard crashes on every attempt must exit nonzero and
#    write no report at all.
#
# Expects: ORCH_BIN, BATCH_BIN, GOLDEN, WORK_DIR.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(merged "${WORK_DIR}/smoke_merged.batch")
set(events "${WORK_DIR}/smoke.events")

execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 3 --fault crash:1
    --retries 2 --backoff-ms 1 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/parts" --event-log "${events}"
    --out "${merged}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "manytiers_orchestrate --grid smoke --workers 3 --fault crash:1 "
    "failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${merged}" "${GOLDEN}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrated smoke report differs from the golden report ${GOLDEN}; "
    "the supervised multi-process run must be byte-identical to the "
    "single-process one")
endif()

file(READ "${events}" event_text)
if(NOT event_text MATCHES "\"type\":\"retry\",\"shard\":1")
  message(FATAL_ERROR
    "event log ${events} records no retry for the fault-injected shard 1")
endif()
if(NOT event_text MATCHES "\"type\":\"done\"")
  message(FATAL_ERROR "event log ${events} records no terminal done event")
endif()

# Negative leg: exhausted retries must fail the run and emit no report.
set(failed "${WORK_DIR}/failed.batch")
execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 2 --fault crash:0:99
    --retries 1 --backoff-ms 1 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/failed_parts" --out "${failed}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrator reported success although shard 0 crashed on every "
    "attempt")
endif()
if(EXISTS "${failed}")
  message(FATAL_ERROR
    "orchestrator wrote a report (${failed}) despite a failed shard; "
    "partial results must never be emitted")
endif()
if(NOT err MATCHES "shard 0")
  message(FATAL_ERROR
    "failure output carries no per-shard summary:\n${err}")
endif()
