# Smoke test for the shard orchestrator CLI, run by ctest (label:
# orchestrator).
#
# 1. Supervise a 3-worker run of the smoke grid with shard 1 fault-
#    injected to crash once; the merged report must be byte-identical to
#    the checked-in golden, and the event log must record the retry.
# 2. A run whose shard crashes on every attempt must exit nonzero and
#    write no report at all.
# 3. Crash-safety: a run SIGKILLed after its first completed shard (via
#    the --kill-after-shards test hook) must resume from its manifest
#    and still produce the byte-identical golden report.
#
# Expects: ORCH_BIN, BATCH_BIN, GOLDEN, WORK_DIR.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(merged "${WORK_DIR}/smoke_merged.batch")
set(events "${WORK_DIR}/smoke.events")

execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 3 --fault crash:1
    --retries 2 --backoff-ms 1 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/parts" --event-log "${events}"
    --out "${merged}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "manytiers_orchestrate --grid smoke --workers 3 --fault crash:1 "
    "failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${merged}" "${GOLDEN}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrated smoke report differs from the golden report ${GOLDEN}; "
    "the supervised multi-process run must be byte-identical to the "
    "single-process one")
endif()

file(READ "${events}" event_text)
if(NOT event_text MATCHES "\"type\":\"retry\",\"shard\":1")
  message(FATAL_ERROR
    "event log ${events} records no retry for the fault-injected shard 1")
endif()
if(NOT event_text MATCHES "\"type\":\"done\"")
  message(FATAL_ERROR "event log ${events} records no terminal done event")
endif()

# Negative leg: exhausted retries must fail the run and emit no report.
set(failed "${WORK_DIR}/failed.batch")
execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 2 --fault crash:0:99
    --retries 1 --backoff-ms 1 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/failed_parts" --out "${failed}"
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "orchestrator reported success although shard 0 crashed on every "
    "attempt")
endif()
if(EXISTS "${failed}")
  message(FATAL_ERROR
    "orchestrator wrote a report (${failed}) despite a failed shard; "
    "partial results must never be emitted")
endif()
if(NOT err MATCHES "shard 0")
  message(FATAL_ERROR
    "failure output carries no per-shard summary:\n${err}")
endif()

# Resume leg: SIGKILL the orchestrator right after the first shard
# completes, then resume; the merged report must still match the golden
# byte-for-byte and the second run must record a resume-skip.
set(resumed "${WORK_DIR}/resumed.batch")
set(resume_events "${WORK_DIR}/resume.events")
execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 3 --kill-after-shards 1
    --timeout-ms 60000 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/resume_parts" --out "${resumed}"
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "--kill-after-shards 1 run exited 0; the SIGKILL test hook did not "
    "fire")
endif()
if(EXISTS "${resumed}")
  message(FATAL_ERROR
    "killed orchestrator left a report at ${resumed}; no output may be "
    "written before the run completes")
endif()
if(NOT EXISTS "${WORK_DIR}/resume_parts/manifest.orch")
  message(FATAL_ERROR
    "killed orchestrator left no manifest in ${WORK_DIR}/resume_parts")
endif()
execute_process(
  COMMAND "${ORCH_BIN}" --grid smoke --workers 3 --resume
    --timeout-ms 60000 --worker "${BATCH_BIN}"
    --work-dir "${WORK_DIR}/resume_parts" --event-log "${resume_events}"
    --out "${resumed}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--resume after SIGKILL failed (${rc})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${resumed}" "${GOLDEN}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "resumed report differs from the golden report ${GOLDEN}; a killed "
    "and resumed run must stay byte-identical to the single-process one")
endif()
file(READ "${resume_events}" resume_text)
if(NOT resume_text MATCHES "\"type\":\"resume-skip\"")
  message(FATAL_ERROR
    "resume event log ${resume_events} records no resume-skip; the "
    "surviving part was re-run instead of being reused")
endif()
