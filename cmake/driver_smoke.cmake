# Smoke test for the batch driver CLI, run by ctest (label: driver).
#
# 1. Run the smoke grid split across two shards, merged in-process.
# 2. The merged report must be byte-identical to the checked-in golden.
# 3. If python3 is available, tools/bench_diff.py must also report no
#    regressions between the golden and the fresh run.
#
# Expects: BATCH_BIN, GOLDEN, BENCH_DIFF, PYTHON (may be empty), WORK_DIR.

file(MAKE_DIRECTORY "${WORK_DIR}")
set(merged "${WORK_DIR}/smoke_merged.batch")

execute_process(
  COMMAND "${BATCH_BIN}" --grid smoke --shards 2 --no-timing --out "${merged}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "manytiers_batch --grid smoke --shards 2 failed (${rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${merged}" "${GOLDEN}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "sharded smoke report differs from the golden report ${GOLDEN}; if the "
    "pipeline change is intentional, regenerate it with: manytiers_batch "
    "--grid smoke --no-timing --out ${GOLDEN}")
endif()

if(PYTHON)
  execute_process(
    COMMAND "${PYTHON}" "${BENCH_DIFF}" "${GOLDEN}" "${merged}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_diff.py flagged a regression:\n${out}${err}")
  endif()
else()
  message(STATUS "python3 not found; skipping the bench_diff.py leg")
endif()
