// Tag-aware egress selection (paper §5.1): a customer with backbone
// presence in New York and London receives tier-tagged routes from its
// upstream at both PoPs and stops hot-potato routing blindly — traffic
// to destinations the upstream tags as expensive at one PoP is carried
// on the customer's own backbone to the PoP where it is cheap.
#include <iostream>

#include "accounting/policy.hpp"
#include "geo/cities.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace manytiers;

  // The upstream's announcements at each PoP. European destinations are
  // tier 1 (cheap) in London but tier 3 (trans-Atlantic) in New York,
  // and vice versa for North American destinations.
  accounting::Rib nyc, london;
  const auto add = [](accounting::Rib& rib, const char* prefix,
                      std::uint16_t tier) {
    accounting::Route r;
    r.prefix = geo::parse_prefix(prefix);
    r.tag = accounting::TierTag{65000, tier};
    rib.add(r);
  };
  add(nyc, "100.0.0.0/8", 1);     // NA destinations: local at NYC
  add(nyc, "110.0.0.0/8", 3);     // EU destinations: expensive at NYC
  add(london, "100.0.0.0/8", 3);  // NA destinations: expensive at London
  add(london, "110.0.0.0/8", 1);  // EU destinations: local at London

  const accounting::RatePlan rates{{{1, 5.0}, {3, 21.0}}};
  accounting::EgressPlanner planner;
  planner.add_egress({"New York", &nyc, &rates, 0.0});
  planner.add_egress({"London", &london, &rates, 4.5});  // own wave cost

  // The customer's demand: mostly NA with a substantial European tail.
  util::Rng rng(17);
  std::vector<std::pair<geo::IpV4, double>> demands;
  for (int i = 0; i < 200; ++i) {
    const bool europe = rng.bernoulli(0.35);
    const geo::IpV4 base =
        geo::parse_ipv4(europe ? "110.0.0.0" : "100.0.0.0");
    demands.emplace_back(base + geo::IpV4(rng.uniform_int(1, 1 << 24)),
                         rng.pareto(1.0, 1.4));
  }

  // A few individual decisions.
  util::TextTable decisions({"Destination", "Egress", "Tier", "Transit $",
                             "Backbone $", "Total $/Mbps", "Routing"});
  for (const auto dst : {"100.7.1.1", "110.9.2.2"}) {
    const auto d = planner.plan(geo::parse_ipv4(dst));
    decisions.add_row({dst, d->pop_name, std::to_string(d->tier),
                       util::format_double(d->transit_price_per_mbps, 2),
                       util::format_double(d->backbone_cost_per_mbps, 2),
                       util::format_double(d->total_cost_per_mbps, 2),
                       d->cold_potato ? "cold potato" : "hot potato"});
  }
  decisions.print(std::cout);

  const auto cmp = planner.compare(demands);
  std::cout << "\nMonthly transit spend over " << demands.size()
            << " destinations:\n"
            << "  naive hot-potato (ignore tags): $"
            << util::format_double(cmp.hot_potato_cost, 0) << "\n"
            << "  tag-aware egress selection:     $"
            << util::format_double(cmp.tag_aware_cost, 0) << "\n"
            << "  savings: "
            << util::format_double(
                   100.0 * (1.0 - cmp.tag_aware_cost / cmp.hot_potato_cost), 1)
            << "%\n\nThis is the §5.1 mechanism: tier tags let customers "
               "see the upstream's cost structure and route accordingly, "
               "which\nis precisely what makes destination-based tiers "
               "implementable with today's BGP.\n";
  return 0;
}
