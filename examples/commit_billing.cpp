// Burstable billing and commit selection: the volume-discount side of
// tiered transit pricing (paper §1/§2.1). A customer with a strongly
// diurnal traffic profile meters a month of 5-minute samples, sees what
// the 95th percentile shaves off the peak, and picks the cheapest commit
// level on a realistic discount ladder.
#include <iostream>

#include "accounting/commit.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/diurnal.hpp"

int main() {
  using namespace manytiers;

  workload::DiurnalProfile profile;
  profile.mean_mbps = 620.0;
  profile.peak_to_trough = 3.5;  // heavy evening peak (eyeball traffic)
  profile.peak_hour = 20.5;
  profile.noise_sd = 0.12;

  util::Rng rng(42);
  accounting::BurstMeter meter(300);
  for (const auto bytes :
       workload::diurnal_interval_bytes(profile, 30, 300, rng)) {
    meter.record_interval(bytes);
  }

  std::cout << "One month of 5-minute samples (" << meter.interval_count()
            << " intervals):\n";
  util::TextTable rates({"Measure", "Mbps"});
  rates.add_row({"mean", util::format_double(meter.mean_mbps(), 1)});
  rates.add_row({"95th percentile (billable)",
                 util::format_double(meter.billable_mbps(), 1)});
  rates.add_row({"peak", util::format_double(meter.peak_mbps(), 1)});
  rates.print(std::cout);

  const accounting::CommitSchedule schedule({{0.0, 18.0},
                                             {100.0, 12.0},
                                             {500.0, 8.0},
                                             {1000.0, 5.5},
                                             {10000.0, 3.0}});
  const double billable = meter.billable_mbps();
  std::cout << "\nCommit options for a billable rate of "
            << util::format_double(billable, 1) << " Mbps:\n";
  util::TextTable bills({"Commit (Mbps)", "$/Mbps", "Monthly bill ($)"});
  for (const auto& tier : schedule.tiers()) {
    bills.add_row({util::format_double(tier.min_commit_mbps, 0),
                   util::format_double(tier.price_per_mbps, 2),
                   util::format_double(
                       schedule.monthly_bill(tier.min_commit_mbps, billable),
                       0)});
  }
  bills.print(std::cout);

  const double commit = schedule.optimal_commit(billable);
  std::cout << "\nOptimal commit: "
            << util::format_double(commit, 0) << " Mbps at $"
            << util::format_double(schedule.tier_for(commit).price_per_mbps, 2)
            << "/Mbps -> $"
            << util::format_double(schedule.monthly_bill(commit, billable), 0)
            << "/month.\n";
  if (commit > billable) {
    std::cout << "Committing *above* the measured rate is cheapest — the "
                 "volume discount outweighs the unused headroom, which is\n"
                 "exactly how commit ladders steer customers into larger "
                 "contracts (paper §1).\n";
  }
  return 0;
}
