// Run the full tier-pricing counterfactual on your own traffic matrix.
//
// Usage:
//   csv_counterfactual [flows.csv [blended_rate]]
//
// The CSV format is documented in workload/io.hpp (header line +
// demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip). With no
// arguments an embedded sample matrix is used, so the binary always runs.
#include <fstream>
#include <iostream>

#include "pricing/counterfactual.hpp"
#include "util/table.hpp"
#include "workload/io.hpp"
#include "workload/table1.hpp"

namespace {

constexpr const char* kSampleCsv =
    "demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip\n"
    "1200,4,metro,on-net,,\n"
    "800,9,metro,on-net,,\n"
    "450,35,national,off-net,,\n"
    "300,60,national,on-net,,\n"
    "240,110,national,off-net,,\n"
    "150,420,international,off-net,,\n"
    "90,900,international,off-net,,\n"
    "45,2400,international,off-net,,\n"
    "20,4800,international,off-net,,\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace manytiers;

  workload::FlowSet flows("sample");
  double blended_rate = 20.0;
  try {
    if (argc > 1) {
      std::ifstream file(argv[1]);
      if (!file) {
        std::cerr << "error: cannot open '" << argv[1] << "'\n";
        return 1;
      }
      flows = workload::read_csv(file, argv[1]);
    } else {
      flows = workload::from_csv(kSampleCsv, "embedded sample");
      std::cout << "(no CSV given; using the embedded sample matrix — see "
                   "workload/io.hpp for the format)\n\n";
    }
    if (argc > 2) blended_rate = std::stod(argv[2]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }

  std::cout << "Input: " << flows.size() << " flows\n";
  const std::vector<workload::DatasetStats> stats{
      workload::compute_stats(flows)};
  workload::print_table1(std::cout, stats);

  const auto cost_model = cost::make_linear_cost(0.2);
  pricing::DemandSpec spec;  // CED, alpha = 1.1
  const auto market =
      pricing::Market::calibrate(flows, spec, *cost_model, blended_rate);

  std::cout << "\nProfit capture by strategy (blended rate $"
            << util::format_double(blended_rate, 2) << "/Mbps):\n";
  util::TextTable table({"Strategy", "B=1", "B=2", "B=3", "B=4", "B=5",
                         "B=6"});
  for (const auto s : pricing::figure8_strategies()) {
    table.add_row(std::string(to_string(s)),
                  pricing::capture_series(market, s, 6), 3);
  }
  table.print(std::cout);

  const auto res = pricing::run_strategy(market, pricing::Strategy::Optimal, 3);
  std::cout << "\nRecommended 3-tier plan (capture "
            << util::format_double(res.capture, 3) << "):\n";
  util::TextTable tiers({"Tier", "Price ($/Mbps)", "Flows",
                         "Cost range ($/Mbps)"});
  for (std::size_t b = 0; b < res.pricing.bundles.size(); ++b) {
    double cmin = 1e300, cmax = 0.0;
    for (const auto i : res.pricing.bundles[b]) {
      cmin = std::min(cmin, market.costs()[i]);
      cmax = std::max(cmax, market.costs()[i]);
    }
    tiers.add_row({std::to_string(b + 1),
                   util::format_double(res.pricing.bundle_prices[b], 2),
                   std::to_string(res.pricing.bundles[b].size()),
                   util::format_double(cmin, 2) + " - " +
                       util::format_double(cmax, 2)});
  }
  tiers.print(std::cout);
  return 0;
}
