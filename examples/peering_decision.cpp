// The Figure 2 scenario as a decision tool: a CDN with a backbone
// presence at the NYC PoP evaluates procuring a direct link to the
// Boston IXP instead of paying its upstream's blended rate, and the
// upstream evaluates the tiered counter-offer that keeps the traffic.
#include <iostream>

#include "accounting/billing.hpp"
#include "geo/cities.hpp"
#include "util/table.hpp"

int main() {
  using namespace manytiers;

  const auto nyc = *geo::find_city("New York");
  const auto boston = *geo::find_city("Boston");
  const double miles = geo::city_distance_miles(nyc, boston);

  // Monthly economics of the NYC -> Boston traffic (per Mbps).
  accounting::PeeringEconomics econ;
  econ.blended_rate = 10.0;   // what the CDN pays today for ALL traffic
  econ.isp_unit_cost = 1.8;   // ISP's amortized cost for this short flow
  econ.isp_margin = 0.3;
  econ.accounting_overhead = 0.35;

  const double traffic_mbps = 4000.0;
  // Amortized cost of the CDN's own wave + colo + optics to Boston.
  const double direct_link_monthly = 26000.0;
  const double c_direct = direct_link_monthly / traffic_mbps;

  std::cout << "CDN at New York reaching the Boston IXP ("
            << util::format_double(miles, 0) << " mi), "
            << util::format_double(traffic_mbps / 1000.0, 1)
            << " Gbps of traffic\n\n";

  util::TextTable table({"Option", "$/Mbps/month", "Monthly cost ($)"});
  table.add_row({"Stay on blended transit",
                 util::format_double(econ.blended_rate, 2),
                 util::format_double(econ.blended_rate * traffic_mbps, 0)});
  table.add_row({"Build direct link", util::format_double(c_direct, 2),
                 util::format_double(direct_link_monthly, 0)});
  const double tier_price = accounting::tiered_price_floor(econ);
  table.add_row({"ISP tiered counter-offer", util::format_double(tier_price, 2),
                 util::format_double(tier_price * traffic_mbps, 0)});
  table.print(std::cout);

  std::cout << "\nUnder the blended rate: ";
  if (accounting::customer_peels_off(c_direct, econ)) {
    std::cout << "the CDN peels off (saves $"
              << util::format_double(
                     (econ.blended_rate - c_direct) * traffic_mbps, 0)
              << "/month).\n";
    if (accounting::market_failure(c_direct, econ)) {
      std::cout << "This is a MARKET FAILURE: the direct link costs more "
                   "than the ISP's own cost plus margin plus accounting\n"
                   "overhead ($"
                << util::format_double(tier_price, 2)
                << "/Mbps) — society pays for redundant capacity because "
                   "the blended rate cannot express the flow's true cost.\n";
    }
  } else {
    std::cout << "the CDN stays.\n";
  }

  std::cout << "\nWith a tiered offer at $"
            << util::format_double(tier_price, 2)
            << "/Mbps for Boston-bound traffic: "
            << (c_direct < tier_price
                    ? "the CDN still builds the link (genuinely cheaper)."
                    : "the CDN stays — the ISP keeps the revenue and the "
                      "redundant build is avoided.")
            << '\n';
  return 0;
}
