// The measurement pipeline behind the paper's datasets: ground-truth
// traffic -> 1-in-N sampled NetFlow export at every router on the path ->
// de-duplicating collection -> per-flow demand estimates -> Table 1-style
// dataset statistics, compared against the ground truth.
#include <iostream>

#include "geo/cities.hpp"
#include "netflow/collector.hpp"
#include <cmath>

#include "netflow/exporter.hpp"
#include "topology/dijkstra.hpp"
#include "topology/internet2.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/table1.hpp"

int main() {
  using namespace manytiers;

  // Ground truth: an Internet2-like day of traffic routed over the
  // Abilene backbone.
  const auto net = topology::internet2_network();
  const auto flows = workload::generate_internet2(
      {.seed = 21, .n_flows = 250, .calibrate_moments = false});
  const std::uint32_t window = 86400;
  const std::uint32_t sampling = 1000;

  std::cout << "Ground truth: " << flows.size() << " flows, "
            << util::format_double(flows.total_demand_gbps(), 2)
            << " Gbps aggregate over the Internet2 backbone ("
            << net.pop_count() << " PoPs, " << net.link_count()
            << " links)\n";

  // Export sampled NetFlow at every router along each flow's path.
  std::vector<netflow::GroundTruthFlow> truth;
  std::vector<std::vector<netflow::RouterId>> paths;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    netflow::GroundTruthFlow gt;
    gt.key.src_ip = flows[i].src_ip;
    gt.key.dst_ip = flows[i].dst_ip;
    gt.key.src_port = std::uint16_t(1024 + i);
    gt.bytes =
        std::uint64_t(flows[i].demand_mbps * 1e6 / 8.0 * double(window));
    gt.packets = std::max<std::uint64_t>(1, gt.bytes / 1400);
    truth.push_back(gt);
    // Route over the backbone to find the traversed routers.
    const auto src = net.find_pop(
        std::string(geo::world_cities()[*flows[i].src_city].name));
    const auto dst = net.find_pop(
        std::string(geo::world_cities()[*flows[i].dst_city].name));
    const auto sp = topology::shortest_paths(net, *src);
    std::vector<netflow::RouterId> path;
    for (const auto pop : sp.path_to(*dst)) {
      path.push_back(netflow::RouterId(pop));
    }
    paths.push_back(std::move(path));
  }
  netflow::SampledExporter exporter(
      {.sampling_rate = sampling, .window_seconds = window}, util::Rng(33));
  const auto records = exporter.export_trace(truth, paths);

  // Collect: de-duplicate multi-router records and scale up.
  netflow::Collector collector(sampling);
  collector.ingest(records);
  const auto estimates = collector.aggregate();

  std::cout << "\nExported " << records.size() << " sampled records ("
            << util::format_double(double(records.size()) /
                                       double(flows.size()),
                                   1)
            << " per flow — duplicated across routers); collector "
               "de-duplicated to "
            << collector.flow_count() << " flows\n";

  // Compare recovered demand against ground truth.
  const double truth_gbps = flows.total_demand_gbps();
  const double est_gbps =
      netflow::bytes_to_mbps(collector.total_estimated_bytes(), window) /
      1000.0;
  util::TextTable table({"Metric", "Ground truth", "NetFlow estimate",
                         "Error (%)"});
  table.add_row({"Aggregate (Gbps)", util::format_double(truth_gbps, 3),
                 util::format_double(est_gbps, 3),
                 util::format_double(
                     100.0 * std::abs(est_gbps - truth_gbps) / truth_gbps,
                     2)});
  table.add_row(
      {"Flows observed", std::to_string(flows.size()),
       std::to_string(collector.flow_count()),
       util::format_double(100.0 *
                               double(flows.size() - collector.flow_count()) /
                               double(flows.size()),
                           2)});
  table.print(std::cout);
  std::cout << "\n(A few tiny flows can evade 1-in-" << sampling
            << " sampling entirely — the same bias the paper's datasets "
               "carry.)\n";
  return 0;
}
