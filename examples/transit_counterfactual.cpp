// Full counterfactual study on a synthetic EU transit ISP: generate the
// dataset, calibrate both demand models, sweep every bundling strategy,
// and print a tier recommendation — the paper's Fig. 7 pipeline end to
// end.
#include <iostream>

#include "pricing/counterfactual.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/table1.hpp"

int main() {
  using namespace manytiers;

  const auto flows = workload::generate_eu_isp({.seed = 42, .n_flows = 400});
  std::cout << "Dataset:\n";
  const std::vector<workload::DatasetStats> stats{workload::compute_stats(flows)};
  workload::print_table1(std::cout, stats);

  const auto cost_model = cost::make_linear_cost(0.2);
  for (const auto kind : {demand::DemandKind::ConstantElasticity,
                          demand::DemandKind::Logit}) {
    pricing::DemandSpec spec;
    spec.kind = kind;
    const auto market =
        pricing::Market::calibrate(flows, spec, *cost_model, 20.0);
    std::cout << "\n--- "
              << (kind == demand::DemandKind::ConstantElasticity
                      ? "Constant-elasticity demand"
                      : "Logit demand")
              << " ---\n";
    std::cout << "Blended profit: $"
              << util::format_double(pricing::blended_profit(market), 0)
              << "/month; per-flow-pricing ceiling: $"
              << util::format_double(pricing::max_profit(market), 0)
              << "/month\n\n";

    util::TextTable table({"Strategy", "B=1", "B=2", "B=3", "B=4", "B=5",
                           "B=6"});
    const auto strategies = kind == demand::DemandKind::ConstantElasticity
                                ? pricing::figure8_strategies()
                                : pricing::figure9_strategies();
    for (const auto s : strategies) {
      table.add_row(std::string(to_string(s)),
                    pricing::capture_series(market, s, 6), 3);
    }
    table.print(std::cout);

    // Recommendation: smallest tier count whose optimal bundling captures
    // 90% of the headroom.
    for (std::size_t b = 1; b <= 6; ++b) {
      const auto res =
          pricing::run_strategy(market, pricing::Strategy::Optimal, b);
      if (res.capture >= 0.9) {
        std::cout << "\nRecommendation: " << b
                  << " tiers capture " << util::format_double(res.capture, 3)
                  << " of the attainable profit. Tier prices:";
        for (std::size_t t = 0; t < res.pricing.bundle_prices.size(); ++t) {
          double demand = 0.0;
          for (const auto i : res.pricing.bundles[t]) {
            demand += market.flows()[i].demand_mbps;
          }
          std::cout << "\n  tier " << t + 1 << ": $"
                    << util::format_double(res.pricing.bundle_prices[t], 2)
                    << "/Mbps covering "
                    << util::format_double(demand / 1000.0, 1) << " Gbps ("
                    << res.pricing.bundles[t].size() << " flows)";
        }
        std::cout << '\n';
        break;
      }
    }
  }
  return 0;
}
