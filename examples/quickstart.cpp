// Quickstart: calibrate a tiny transit market from observed flows and
// find near-optimal pricing tiers.
//
// An ISP observes, at its current blended rate of $20/Mbps, five customer
// traffic aggregates with their demands and the distance each travels in
// its network. How should it split them into two pricing tiers, and what
// does that earn?
#include <iostream>

#include "pricing/counterfactual.hpp"
#include "util/table.hpp"

int main() {
  using namespace manytiers;

  // 1. The observed flows: demand (Mbps) and distance traveled (miles).
  workload::FlowSet observed("quickstart");
  const struct {
    double demand_mbps, distance_miles;
  } data[] = {
      {900.0, 5.0},    // big local flow (e.g. to a metro IXP)
      {400.0, 40.0},   // regional
      {250.0, 15.0},   // local-ish
      {120.0, 600.0},  // national
      {60.0, 2500.0},  // international
  };
  for (const auto& [q, d] : data) {
    workload::Flow f;
    f.demand_mbps = q;
    f.distance_miles = d;
    observed.add(f);
  }

  // 2. Calibrate: assume the ISP is already profit-maximizing at the
  //    blended rate; solve for flow valuations and the cost scale.
  const double blended_rate = 20.0;  // $/Mbps/month
  const auto cost_model = cost::make_linear_cost(/*theta=*/0.2);
  pricing::DemandSpec demand_spec;  // CED, alpha = 1.1
  const auto market = pricing::Market::calibrate(observed, demand_spec,
                                                 *cost_model, blended_rate);

  std::cout << "Calibrated market (blended rate $" << blended_rate
            << "/Mbps):\n";
  util::TextTable calib({"Flow", "Demand (Mbps)", "Distance (mi)",
                         "Unit cost ($)", "Valuation"});
  for (std::size_t i = 0; i < market.size(); ++i) {
    calib.add_row("#" + std::to_string(i + 1),
                  {market.flows()[i].demand_mbps,
                   market.flows()[i].distance_miles, market.costs()[i],
                   market.valuations()[i]},
                  2);
  }
  calib.print(std::cout);

  // 3. Counterfactual: how much more profit do 2 or 3 well-chosen tiers
  //    earn over the blended rate?
  std::cout << "\nTiering counterfactuals (optimal bundling):\n";
  util::TextTable tiers({"Tiers", "Prices ($/Mbps)", "Profit ($/month)",
                         "Profit capture"});
  const double blended_profit = pricing::blended_profit(market);
  tiers.add_row({"1 (blended)", util::format_double(blended_rate, 2),
                 util::format_double(blended_profit, 0), "0.0"});
  for (const std::size_t n : {2u, 3u}) {
    const auto res =
        pricing::run_strategy(market, pricing::Strategy::Optimal, n);
    std::string prices;
    for (const double p : res.pricing.bundle_prices) {
      prices += (prices.empty() ? "" : " / ") + util::format_double(p, 2);
    }
    tiers.add_row({std::to_string(n), prices,
                   util::format_double(res.pricing.profit, 0),
                   util::format_double(res.capture, 3)});
  }
  tiers.add_row({"per-flow (max)", "-",
                 util::format_double(pricing::max_profit(market), 0), "1.0"});
  tiers.print(std::cout);

  std::cout << "\nReading: a couple of well-placed tiers (cheap local tier, "
               "premium long-haul tier) recover most of the profit\n"
               "that infinitely fine-grained pricing would.\n";
  return 0;
}
