// Implementing tiered pricing (paper §5): tag routes with BGP-community
// tier labels, run the same month of traffic through both accounting
// implementations — link-based (one session per tier, SNMP counters) and
// flow-based (one session, sampled NetFlow joined with the RIB) — and
// produce the customer's invoice both ways.
#include <iostream>

#include "accounting/billing.hpp"
#include "accounting/flow_acct.hpp"
#include "accounting/link_acct.hpp"
#include "netflow/exporter.hpp"
#include "util/table.hpp"

int main() {
  using namespace manytiers;

  // The upstream announces three tiers: on-net customers, regional
  // routes, and global transit (the default).
  accounting::Rib rib;
  const struct {
    const char* prefix;
    std::uint16_t tier;
    const char* what;
  } announcements[] = {
      {"100.0.0.0/8", 1, "on-net customer routes"},
      {"101.0.0.0/8", 2, "regional (backplane peering) routes"},
      {"0.0.0.0/0", 3, "global transit"},
  };
  std::cout << "Announced routes (BGP extended-community tier tags):\n";
  util::TextTable routes({"Prefix", "Community", "Tier"});
  for (const auto& a : announcements) {
    accounting::Route r;
    r.prefix = geo::parse_prefix(a.prefix);
    r.tag = accounting::TierTag{65000, a.tier};
    r.description = a.what;
    rib.add(r);
    routes.add_row({a.prefix, r.tag.to_string(), a.what});
  }
  routes.print(std::cout);

  accounting::RatePlan plan{{{1, 4.0}, {2, 9.0}, {3, 18.0}}};

  // A month of customer traffic toward a mix of destinations.
  const std::uint32_t window = 30 * 86400;
  const std::uint32_t sampling = 512;
  accounting::LinkAccounting link(rib);
  accounting::FlowAccounting flow(rib, sampling);
  netflow::SampledExporter exporter(
      {.sampling_rate = sampling, .window_seconds = window}, util::Rng(11));
  util::Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const double mbps = rng.pareto(0.4, 1.3);
    const auto bytes =
        std::uint64_t(mbps * 1e6 / 8.0 * double(window));
    const double mix = rng.uniform(0.0, 1.0);
    const geo::IpV4 dst =
        (mix < 0.5    ? geo::parse_ipv4("100.0.0.0")
         : mix < 0.8  ? geo::parse_ipv4("101.0.0.0")
                      : geo::parse_ipv4("9.0.0.0")) +
        geo::IpV4(rng.uniform_int(1, 1 << 20));
    link.send(dst, bytes);
    netflow::GroundTruthFlow gt;
    gt.key.src_ip = geo::parse_ipv4("10.0.0.1");
    gt.key.dst_ip = dst;
    gt.key.src_port = std::uint16_t(1024 + i);
    gt.bytes = bytes;
    gt.packets = std::max<std::uint64_t>(1, bytes / 1400);
    const std::vector<netflow::RouterId> path{1};
    flow.ingest(exporter.export_flow(gt, path));
  }

  const auto print_invoice = [&](const char* title,
                                 const accounting::Invoice& inv,
                                 std::size_t sessions) {
    std::cout << '\n' << title << " (" << sessions << " BGP session"
              << (sessions == 1 ? "" : "s") << "):\n";
    util::TextTable t({"Tier", "Mbps", "$/Mbps", "Amount ($)"});
    for (const auto& line : inv.lines) {
      t.add_row({std::to_string(line.tier),
                 util::format_double(line.mbps, 1),
                 util::format_double(line.price_per_mbps, 2),
                 util::format_double(line.amount, 2)});
    }
    t.add_row({"total", "", "", util::format_double(inv.total, 2)});
    t.print(std::cout);
  };

  print_invoice("Link-based accounting invoice",
                accounting::tiered_invoice(link.poll(), window, plan),
                link.session_count());
  print_invoice("Flow-based accounting invoice",
                accounting::tiered_invoice(flow.usage(), window, plan),
                accounting::FlowAccounting::session_count());

  const auto blended =
      accounting::blended_invoice(link.poll(), window, 14.0);
  std::cout << "\nFor comparison, the same usage on a $14 blended rate: $"
            << util::format_double(blended.total, 2)
            << " — this customer's local-heavy mix is cheaper under "
               "tiered pricing,\nwhich is exactly why local-heavy "
               "customers push ISPs toward tiers (paper §2.2).\n";
  return 0;
}
