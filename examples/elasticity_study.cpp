// Estimating demand elasticity from billing history, then repricing.
//
// The paper sweeps the price sensitivity alpha because it is unobservable
// from a single snapshot. An operator, however, has *history*: past price
// changes and how each customer's demand responded. This example
// simulates two years of quarterly price changes with a known alpha,
// recovers it with the estimation module, and shows the recovered model
// prices tiers nearly identically to the ground truth.
#include <iostream>

#include "demand/estimation.hpp"
#include "pricing/counterfactual.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace manytiers;

  // Ground truth the operator cannot see directly.
  const double true_alpha = 1.4;
  const demand::CedModel truth(true_alpha);

  // Simulate 8 quarters of billing data: the blended rate drifted down
  // ~30%/year (the paper's Fig. of transit price decline), demand
  // responded per CED with some noise.
  util::Rng rng(42);
  const std::size_t n_flows = 60;
  std::vector<double> valuations;
  for (std::size_t i = 0; i < n_flows; ++i) {
    valuations.push_back(rng.uniform(20.0, 120.0));
  }
  std::vector<std::vector<demand::PriceDemandPoint>> history(n_flows);
  double rate = 34.0;
  for (int quarter = 0; quarter < 8; ++quarter) {
    for (std::size_t i = 0; i < n_flows; ++i) {
      demand::PriceDemandPoint obs;
      obs.price = rate;
      obs.quantity = truth.quantity(valuations[i], rate) *
                     std::exp(rng.normal(0.0, 0.08));
      history[i].push_back(obs);
    }
    rate *= 0.92;  // ~ -30%/year quarterly
  }

  const auto fit = demand::estimate_ced_alpha(history);
  std::cout << "Estimated alpha from " << fit.observations
            << " billing observations: " << util::format_double(fit.alpha, 3)
            << " (truth " << true_alpha << ", within-flow R^2 "
            << util::format_double(fit.r_squared, 3) << ")\n\n";

  // Use the estimated alpha to calibrate today's market and pick tiers.
  const auto flows = workload::generate_eu_isp({.seed = 7, .n_flows = 150});
  const auto cost_model = cost::make_linear_cost(0.2);
  const double p0 = rate / 0.92;  // the current blended rate

  util::TextTable table({"Model", "alpha", "3-tier prices ($/Mbps)",
                         "Profit capture"});
  for (const auto& [label, alpha] :
       {std::pair{"ground truth", true_alpha},
        std::pair{"estimated", fit.alpha}}) {
    pricing::DemandSpec spec;
    spec.alpha = alpha;
    const auto market =
        pricing::Market::calibrate(flows, spec, *cost_model, p0);
    const auto res =
        pricing::run_strategy(market, pricing::Strategy::Optimal, 3);
    std::string prices;
    for (const double p : res.pricing.bundle_prices) {
      prices += (prices.empty() ? "" : " / ") + util::format_double(p, 2);
    }
    table.add_row({label, util::format_double(alpha, 3), prices,
                   util::format_double(res.capture, 3)});
  }
  table.print(std::cout);
  std::cout << "\nThe estimated elasticity reproduces the true model's tier "
               "structure — the paper's 'elusive' parameter is\nrecoverable "
               "from data every transit ISP already collects.\n";
  return 0;
}
