// Capacity planning under tiered pricing: a gravity traffic matrix over
// the Internet2 backbone, link utilization today, and what happens to
// both revenue and the network when tiered prices shift demand.
#include <iostream>

#include "pricing/counterfactual.hpp"
#include "topology/internet2.hpp"
#include "topology/utilization.hpp"
#include "util/table.hpp"
#include "workload/gravity.hpp"

int main() {
  using namespace manytiers;

  const auto net = topology::internet2_network();
  // Masses ~ metro prominence of each PoP.
  std::vector<double> masses(net.pop_count(), 1.0);
  masses[*net.find_pop("New York")] = 6.0;
  masses[*net.find_pop("Chicago")] = 4.0;
  masses[*net.find_pop("Los Angeles")] = 5.0;
  masses[*net.find_pop("Washington")] = 3.0;
  masses[*net.find_pop("Atlanta")] = 2.5;
  workload::GravityOptions gravity;
  gravity.total_demand_mbps = 60000.0;  // 60 Gbps day-peak matrix
  gravity.distance_exponent = 0.8;
  const auto tm = workload::gravity_matrix(net, masses, gravity);

  const auto report = topology::load_network(net, tm);
  std::cout << "Gravity matrix: " << tm.size() << " PoP pairs, "
            << util::format_double(report.total_demand_mbps / 1000.0, 1)
            << " Gbps total demand\n\nLink loads:\n";
  util::TextTable links({"Link", "Length (mi)", "Load (Gbps)", "Utilization"});
  for (const auto& l : report.links) {
    const auto& link = net.links()[l.link_index];
    links.add_row({net.pop(link.a).name + " - " + net.pop(link.b).name,
                   util::format_double(link.length_miles, 0),
                   util::format_double(l.mbps / 1000.0, 2),
                   util::format_double(l.utilization, 3)});
  }
  links.print(std::cout);
  const auto& busiest = net.links()[report.busiest_link];
  std::cout << "\nBusiest link: " << net.pop(busiest.a).name << " - "
            << net.pop(busiest.b).name << " at "
            << util::format_double(100.0 * report.max_utilization, 1)
            << "% of capacity\n";

  // Feed the same matrix into the pricing pipeline: flows with distance =
  // routed path length, then look at how 3 tiers price short vs long
  // paths.
  workload::FlowSet flows("Internet2 gravity");
  const auto dist = topology::all_pairs_distances(net);
  for (const auto& d : tm) {
    workload::Flow f;
    f.demand_mbps = d.mbps;
    f.distance_miles = dist(d.src, d.dst);
    flows.add(f);
  }
  const auto cost_model = cost::make_linear_cost(0.2);
  const auto market =
      pricing::Market::calibrate(flows, pricing::DemandSpec{}, *cost_model,
                                 20.0);
  const auto res =
      pricing::run_strategy(market, pricing::Strategy::Optimal, 3);
  std::cout << "\nOptimal 3-tier pricing of the matrix (capture "
            << util::format_double(res.capture, 3) << "):\n";
  util::TextTable tiers({"Tier", "Price ($/Mbps)", "Flows",
                         "Mean path (mi)", "Demand (Gbps)"});
  for (std::size_t b = 0; b < res.pricing.bundles.size(); ++b) {
    double demand = 0.0, path = 0.0;
    for (const auto i : res.pricing.bundles[b]) {
      demand += market.flows()[i].demand_mbps;
      path += market.flows()[i].distance_miles;
    }
    tiers.add_row({std::to_string(b + 1),
                   util::format_double(res.pricing.bundle_prices[b], 2),
                   std::to_string(res.pricing.bundles[b].size()),
                   util::format_double(path / double(res.pricing.bundles[b].size()), 0),
                   util::format_double(demand / 1000.0, 1)});
  }
  tiers.print(std::cout);
  std::cout << "\nReading: tiers line up with path length — the cheap tier "
               "holds the short-haul metro pairs that dominate the\ngravity "
               "matrix, the premium tier the transcontinental paths whose "
               "capacity is the planning constraint above.\n";
  return 0;
}
