#include "accounting/policy.hpp"

#include <stdexcept>

namespace manytiers::accounting {

void EgressPlanner::add_egress(EgressPoint point) {
  if (point.rib == nullptr || point.rates == nullptr) {
    throw std::invalid_argument("EgressPlanner: null RIB or rate plan");
  }
  if (point.backbone_cost_per_mbps < 0.0) {
    throw std::invalid_argument(
        "EgressPlanner: negative backbone cost");
  }
  egresses_.push_back(std::move(point));
}

std::optional<EgressDecision> EgressPlanner::plan(
    geo::IpV4 destination) const {
  if (egresses_.empty()) {
    throw std::logic_error("EgressPlanner::plan: no egress points");
  }
  std::optional<EgressDecision> best;
  for (std::size_t i = 0; i < egresses_.size(); ++i) {
    const auto& egress = egresses_[i];
    const Route* route = egress.rib->lookup(destination);
    if (route == nullptr) continue;
    EgressDecision d;
    d.egress_index = i;
    d.pop_name = egress.pop_name;
    d.tier = route->tag.tier;
    d.transit_price_per_mbps = egress.rates->rate_for(route->tag.tier);
    d.backbone_cost_per_mbps = egress.backbone_cost_per_mbps;
    d.total_cost_per_mbps =
        d.transit_price_per_mbps + d.backbone_cost_per_mbps;
    d.cold_potato = i != 0;
    if (!best || d.total_cost_per_mbps < best->total_cost_per_mbps) {
      best = std::move(d);
    }
  }
  return best;
}

EgressPlanner::CostComparison EgressPlanner::compare(
    std::span<const std::pair<geo::IpV4, double>> demands_mbps) const {
  CostComparison out;
  for (const auto& [dst, mbps] : demands_mbps) {
    if (!(mbps > 0.0)) {
      throw std::invalid_argument("EgressPlanner::compare: demand must be > 0");
    }
    const auto best = plan(dst);
    if (!best) {
      ++out.unroutable;
      continue;
    }
    out.tag_aware_cost += best->total_cost_per_mbps * mbps;
    // Naive hot potato: always hand off at the first (local) egress.
    const auto& local = egresses_.front();
    const Route* route = local.rib->lookup(dst);
    if (route != nullptr) {
      out.hot_potato_cost +=
          (local.rates->rate_for(route->tag.tier) +
           local.backbone_cost_per_mbps) *
          mbps;
    } else {
      // Hot potato cannot deliver; charge the tag-aware cost so the
      // comparison stays apples to apples.
      out.hot_potato_cost += best->total_cost_per_mbps * mbps;
    }
  }
  return out;
}

}  // namespace manytiers::accounting
