#include "accounting/route.hpp"

#include <algorithm>
#include <stdexcept>

#include "geo/trie.hpp"

namespace manytiers::accounting {

std::string TierTag::to_string() const {
  return std::to_string(asn) + ":" + std::to_string(tier);
}

Rib::Rib() : index_(std::make_unique<geo::PrefixTrie<const Route*>>()) {}
Rib::Rib(Rib&&) noexcept = default;
Rib& Rib::operator=(Rib&&) noexcept = default;
Rib::~Rib() = default;

void Rib::add(Route route) {
  const auto mask =
      route.prefix.length == 0
          ? geo::IpV4{0}
          : geo::IpV4(~geo::IpV4(0) << (32 - route.prefix.length));
  if (route.prefix.length < 0 || route.prefix.length > 32 ||
      (route.prefix.address & ~mask) != 0) {
    throw std::invalid_argument("Rib::add: malformed prefix");
  }
  const auto key = std::pair{route.prefix.address, route.prefix.length};
  auto [it, inserted] = by_prefix_.insert_or_assign(key, std::move(route));
  if (inserted) {
    // Map nodes are stable, so the trie can hold a pointer to the value.
    index_->insert(it->second.prefix, &it->second);
  }
}

bool Rib::withdraw(const geo::Prefix& prefix) {
  const auto key = std::pair{prefix.address, prefix.length};
  const auto it = by_prefix_.find(key);
  if (it == by_prefix_.end()) return false;
  index_->erase(prefix);
  by_prefix_.erase(it);
  return true;
}

void Rib::clear() {
  by_prefix_.clear();
  index_ = std::make_unique<geo::PrefixTrie<const Route*>>();
}

std::size_t Rib::size() const { return by_prefix_.size(); }

std::vector<Route> Rib::routes() const {
  std::vector<Route> out;
  out.reserve(by_prefix_.size());
  for (const auto& [key, route] : by_prefix_) out.push_back(route);
  return out;
}

const Route* Rib::lookup(geo::IpV4 destination) const {
  const Route* const* slot = index_->lookup_ptr(destination);
  return slot == nullptr ? nullptr : *slot;
}

std::optional<std::uint16_t> Rib::tier_of(geo::IpV4 destination) const {
  const Route* r = lookup(destination);
  if (r == nullptr) return std::nullopt;
  return r->tag.tier;
}

std::vector<std::uint16_t> Rib::tiers() const {
  std::vector<std::uint16_t> out;
  for (const auto& [key, route] : by_prefix_) {
    if (std::find(out.begin(), out.end(), route.tag.tier) == out.end()) {
      out.push_back(route.tag.tier);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace manytiers::accounting
