// Routes tagged with pricing tiers (paper §5.1).
//
// An upstream ISP announces routes tagged with a BGP extended community
// that names the route's pricing tier; the customer's routers match
// destinations against these routes (longest prefix wins) and can steer
// traffic per tier. This module models the RIB the two accounting
// implementations (§5.2) share.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geo/geoip.hpp"

namespace manytiers::geo {
template <typename Value>
class PrefixTrie;
}  // namespace manytiers::geo

namespace manytiers::accounting {

// BGP extended community "asn:value" used as a tier tag.
struct TierTag {
  std::uint16_t asn = 65000;
  std::uint16_t tier = 0;

  std::string to_string() const;
  friend auto operator<=>(const TierTag&, const TierTag&) = default;
};

struct Route {
  geo::Prefix prefix;
  TierTag tag;
  std::string description;
};

// Routing information base with trie-backed longest-prefix-match lookup
// and withdrawal support.
class Rib {
 public:
  Rib();
  Rib(Rib&&) noexcept;
  Rib& operator=(Rib&&) noexcept;
  ~Rib();

  // Install or replace the route for its exact prefix.
  void add(Route route);
  // Remove the route for an exact prefix; false if it was not announced.
  bool withdraw(const geo::Prefix& prefix);
  // Drop every route (session reset).
  void clear();

  const Route* lookup(geo::IpV4 destination) const;
  std::optional<std::uint16_t> tier_of(geo::IpV4 destination) const;

  std::size_t size() const;
  // Snapshot of all routes, ordered by (address, length).
  std::vector<Route> routes() const;

  // Distinct tiers announced (each needs its own session/link in
  // link-based accounting).
  std::vector<std::uint16_t> tiers() const;

 private:
  // Routes live in a node-stable map; the trie indexes pointers into it.
  std::map<std::pair<geo::IpV4, int>, Route> by_prefix_;
  std::unique_ptr<geo::PrefixTrie<const Route*>> index_;
};

}  // namespace manytiers::accounting
