// BGP UPDATE wire format (RFC 4271) with extended-community tier tags.
//
// Completes the §5.1 control-plane path at the byte level: the upstream's
// tier-tagged announcements are encoded as real BGP UPDATE messages —
// 19-byte marker/length/type header, withdrawn-routes block, path
// attributes (ORIGIN, AS_PATH, NEXT_HOP, EXTENDED_COMMUNITIES carrying
// the tier tags, RFC 4360 type 0x0002 route-target), and NLRI with
// variable-length prefixes. A decoded message round-trips back into the
// session layer's UpdateMessage.
//
// Scope: IPv4 unicast, one tier tag per route. Because path attributes
// apply to every NLRI in a message, routes with different tier tags are
// emitted in separate messages (encode_updates groups by tier).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accounting/session.hpp"

namespace manytiers::accounting {

inline constexpr std::size_t kBgpHeaderBytes = 19;
inline constexpr std::size_t kBgpMaxMessageBytes = 4096;
inline constexpr std::uint8_t kBgpTypeUpdate = 2;

struct BgpEncodeOptions {
  std::uint16_t local_asn = 65000;
  geo::IpV4 next_hop = 0x0a000001;  // 10.0.0.1
};

// Encode one UPDATE carrying `withdraw` plus `announce` routes that all
// share one tier tag. Throws std::invalid_argument if announce routes
// carry different tags or the message would exceed 4096 bytes.
std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        const BgpEncodeOptions& options);

// Encode an arbitrary UpdateMessage as one message per tier tag (the
// withdrawals ride on the first message).
std::vector<std::vector<std::uint8_t>> encode_updates(
    const UpdateMessage& update, const BgpEncodeOptions& options);

// Decode one UPDATE message. Returns the withdrawals and the announced
// routes with their tier tags (taken from the extended-communities
// attribute; routes without one get tier 0). Throws on malformed input:
// bad marker, bad length, truncated blocks, or prefix overruns.
UpdateMessage decode_update(std::span<const std::uint8_t> bytes);

}  // namespace manytiers::accounting
