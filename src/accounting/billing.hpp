// Billing and the direct-peering breakeven analysis (paper §2.2.2, §5.2).
//
// Converts per-tier usage into invoices (tiered vs blended) and models
// the customer's decision to bypass the ISP with a private link to a
// nearby exchange: the customer peels off when a direct link is cheaper
// than the blended rate, and that bypass is a *market failure* when the
// direct link costs more than the ISP's tiered price floor
// (M + 1) * c_ISP + A would have been.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "accounting/link_acct.hpp"  // TierUsage

namespace manytiers::accounting {

struct TierRate {
  std::uint16_t tier = 0;
  double price_per_mbps = 0.0;  // $/Mbps/month
};

struct RatePlan {
  std::vector<TierRate> rates;

  double rate_for(std::uint16_t tier) const;  // throws if tier is unknown
};

struct InvoiceLine {
  std::uint16_t tier = 0;
  double mbps = 0.0;
  double price_per_mbps = 0.0;
  double amount = 0.0;
};

struct Invoice {
  std::vector<InvoiceLine> lines;
  double total = 0.0;
};

// Tiered invoice from per-tier byte usage over a capture window.
Invoice tiered_invoice(std::span<const TierUsage> usage,
                       std::uint32_t window_seconds, const RatePlan& plan);

// Blended invoice: all usage billed at a single rate.
Invoice blended_invoice(std::span<const TierUsage> usage,
                        std::uint32_t window_seconds,
                        double blended_rate_per_mbps);

// --- Direct peering economics (paper §2.2.2, Fig. 2) ---

struct PeeringEconomics {
  double blended_rate = 0.0;        // R: what the ISP charges today
  double isp_unit_cost = 0.0;       // c_ISP: ISP's amortized cost to the IXP
  double isp_margin = 0.0;          // M: ISP profit margin (e.g. 0.3)
  double accounting_overhead = 0.0; // A: per-unit overhead of a tier
};

// The lowest tiered price the ISP could profitably offer for this flow.
double tiered_price_floor(const PeeringEconomics& econ);

// The customer bypasses the ISP when a direct link is cheaper than the
// blended rate: c_direct < R.
bool customer_peels_off(double direct_link_cost, const PeeringEconomics& econ);

// Market failure: the customer builds a link that costs more than the
// tiered price the ISP could have offered, i.e. it peels off even though
// c_direct > (M + 1) c_ISP + A.
bool market_failure(double direct_link_cost, const PeeringEconomics& econ);

}  // namespace manytiers::accounting
