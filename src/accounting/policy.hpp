// Customer-side routing policy over tier-tagged routes (paper §5.1).
//
// When the upstream tags its announcements with pricing tiers, a customer
// with its own backbone can stop hot-potato routing blindly: for each
// destination it compares handing traffic off at the local PoP (paying
// that PoP's tier price) against carrying it on its own backbone to a
// remote PoP where the same destination is announced in a cheaper tier.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accounting/billing.hpp"
#include "accounting/route.hpp"

namespace manytiers::accounting {

// One potential egress: the upstream's RIB and rate plan at a PoP, plus
// the customer's own per-Mbps cost of hauling traffic to that PoP.
struct EgressPoint {
  std::string pop_name;
  const Rib* rib = nullptr;            // not owned; must outlive the planner
  const RatePlan* rates = nullptr;     // not owned
  double backbone_cost_per_mbps = 0.0; // 0 for the local PoP
};

struct EgressDecision {
  std::size_t egress_index = 0;
  std::string pop_name;
  std::uint16_t tier = 0;
  double transit_price_per_mbps = 0.0;
  double backbone_cost_per_mbps = 0.0;
  double total_cost_per_mbps = 0.0;
  // True when the best egress is not the cheapest-haul (first) PoP —
  // i.e. the tag made the customer carry traffic further itself.
  bool cold_potato = false;
};

class EgressPlanner {
 public:
  // The first added egress is treated as the default hot-potato handoff.
  void add_egress(EgressPoint point);

  std::size_t egress_count() const { return egresses_.size(); }

  // Cheapest way to reach `destination`; nullopt if no egress has a
  // covering route.
  std::optional<EgressDecision> plan(geo::IpV4 destination) const;

  // Total cost per Mbps of a demand-weighted set of destinations, under
  // this planner vs naive hot-potato (always the first egress). The
  // difference is what §5.1's tag-aware routing saves the customer.
  struct CostComparison {
    double hot_potato_cost = 0.0;   // $/month
    double tag_aware_cost = 0.0;    // $/month
    std::size_t unroutable = 0;
  };
  CostComparison compare(
      std::span<const std::pair<geo::IpV4, double>> demands_mbps) const;

 private:
  std::vector<EgressPoint> egresses_;
};

}  // namespace manytiers::accounting
