#include "accounting/commit.hpp"

#include <algorithm>
#include <stdexcept>

#include "netflow/collector.hpp"  // bytes_to_mbps
#include "util/stats.hpp"

namespace manytiers::accounting {

BurstMeter::BurstMeter(std::uint32_t interval_seconds)
    : interval_seconds_(interval_seconds) {
  if (interval_seconds_ == 0) {
    throw std::invalid_argument("BurstMeter: interval must be >= 1s");
  }
}

void BurstMeter::record_interval(std::uint64_t bytes) {
  samples_.push_back(bytes);
}

double BurstMeter::billable_mbps(double percentile) const {
  if (samples_.empty()) {
    throw std::logic_error("BurstMeter::billable_mbps: no intervals recorded");
  }
  std::vector<double> rates;
  rates.reserve(samples_.size());
  for (const auto bytes : samples_) {
    rates.push_back(netflow::bytes_to_mbps(bytes, interval_seconds_));
  }
  return util::percentile(rates, percentile);
}

double BurstMeter::peak_mbps() const { return billable_mbps(100.0); }

double BurstMeter::mean_mbps() const {
  if (samples_.empty()) {
    throw std::logic_error("BurstMeter::mean_mbps: no intervals recorded");
  }
  double total = 0.0;
  for (const auto bytes : samples_) total += double(bytes);
  return netflow::bytes_to_mbps(std::uint64_t(total / double(samples_.size())),
                                interval_seconds_);
}

CommitSchedule::CommitSchedule(std::vector<CommitTier> tiers)
    : tiers_(std::move(tiers)) {
  if (tiers_.empty()) {
    throw std::invalid_argument("CommitSchedule: no tiers");
  }
  if (tiers_.front().min_commit_mbps != 0.0) {
    throw std::invalid_argument(
        "CommitSchedule: first tier must be the walk-in (commit 0) rate");
  }
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (!(tiers_[i].price_per_mbps > 0.0)) {
      throw std::invalid_argument("CommitSchedule: prices must be > 0");
    }
    if (i > 0) {
      if (!(tiers_[i].min_commit_mbps > tiers_[i - 1].min_commit_mbps)) {
        throw std::invalid_argument(
            "CommitSchedule: commits must be strictly increasing");
      }
      if (!(tiers_[i].price_per_mbps < tiers_[i - 1].price_per_mbps)) {
        throw std::invalid_argument(
            "CommitSchedule: prices must be strictly decreasing (volume "
            "discount)");
      }
    }
  }
}

const CommitTier& CommitSchedule::tier_for(double commit_mbps) const {
  if (commit_mbps < 0.0) {
    throw std::invalid_argument("CommitSchedule::tier_for: negative commit");
  }
  const CommitTier* best = &tiers_.front();
  for (const auto& tier : tiers_) {
    if (tier.min_commit_mbps <= commit_mbps) best = &tier;
  }
  return *best;
}

double CommitSchedule::monthly_bill(double commit_mbps,
                                    double billable_mbps) const {
  if (billable_mbps < 0.0) {
    throw std::invalid_argument(
        "CommitSchedule::monthly_bill: negative billable rate");
  }
  const CommitTier& tier = tier_for(commit_mbps);
  return std::max(commit_mbps, billable_mbps) * tier.price_per_mbps;
}

double CommitSchedule::optimal_commit(double expected_billable_mbps) const {
  if (expected_billable_mbps < 0.0) {
    throw std::invalid_argument(
        "CommitSchedule::optimal_commit: negative rate");
  }
  // Candidate commits: the expected rate itself plus every rung boundary
  // (committing above usage can be cheaper once a discount kicks in).
  double best_commit = expected_billable_mbps;
  double best_bill = monthly_bill(expected_billable_mbps,
                                  expected_billable_mbps);
  for (const auto& tier : tiers_) {
    const double bill = monthly_bill(tier.min_commit_mbps,
                                     expected_billable_mbps);
    if (bill < best_bill) {
      best_bill = bill;
      best_commit = tier.min_commit_mbps;
    }
  }
  return best_commit;
}

}  // namespace manytiers::accounting
