// Flow-based accounting (paper §5.2, Fig. 17b).
//
// A single link and routing session; the provider collects sampled
// NetFlow records and joins them with the RIB *after the fact* to assign
// each flow to a pricing tier. Cheaper to provision than link-based
// accounting and re-bundleable post facto, at the cost of sampling error.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "accounting/link_acct.hpp"  // TierUsage
#include "accounting/route.hpp"
#include "netflow/record.hpp"

namespace manytiers::accounting {

class FlowAccounting {
 public:
  // `sampling_rate` is the exporter's 1-in-N rate, used to scale the
  // sampled byte counts back up. The RIB must outlive this object.
  FlowAccounting(const Rib& rib, std::uint32_t sampling_rate);

  void ingest(const netflow::FlowRecord& record);
  void ingest(std::span<const netflow::FlowRecord> records);

  // Estimated per-tier usage, ordered by tier.
  std::vector<TierUsage> usage() const;

  std::uint64_t unrouted_bytes() const { return unrouted_bytes_; }
  std::size_t records_processed() const { return records_; }
  // One session regardless of the number of tiers.
  static constexpr std::size_t session_count() { return 1; }

 private:
  const Rib& rib_;
  std::uint32_t sampling_rate_;
  std::size_t records_ = 0;
  std::map<std::uint16_t, std::uint64_t> bytes_by_tier_;
  std::uint64_t unrouted_bytes_ = 0;
};

}  // namespace manytiers::accounting
