#include "accounting/link_acct.hpp"

namespace manytiers::accounting {

LinkAccounting::LinkAccounting(const Rib& rib) : rib_(rib) {
  for (const std::uint16_t tier : rib.tiers()) {
    counters_.emplace(tier, 0);
  }
}

void LinkAccounting::send(geo::IpV4 destination, std::uint64_t bytes) {
  const auto tier = rib_.tier_of(destination);
  if (!tier) {
    unrouted_bytes_ += bytes;
    return;
  }
  counters_[*tier] += bytes;
}

std::vector<TierUsage> LinkAccounting::poll() const {
  std::vector<TierUsage> out;
  out.reserve(counters_.size());
  for (const auto& [tier, bytes] : counters_) {
    out.push_back(TierUsage{tier, bytes});
  }
  return out;
}

}  // namespace manytiers::accounting
