#include "accounting/flow_acct.hpp"

#include <stdexcept>

namespace manytiers::accounting {

FlowAccounting::FlowAccounting(const Rib& rib, std::uint32_t sampling_rate)
    : rib_(rib), sampling_rate_(sampling_rate) {
  if (sampling_rate_ == 0) {
    throw std::invalid_argument("FlowAccounting: sampling rate must be >= 1");
  }
}

void FlowAccounting::ingest(const netflow::FlowRecord& record) {
  ++records_;
  const std::uint64_t bytes = record.sampled_bytes * sampling_rate_;
  const auto tier = rib_.tier_of(record.key.dst_ip);
  if (!tier) {
    unrouted_bytes_ += bytes;
    return;
  }
  bytes_by_tier_[*tier] += bytes;
}

void FlowAccounting::ingest(std::span<const netflow::FlowRecord> records) {
  for (const auto& r : records) ingest(r);
}

std::vector<TierUsage> FlowAccounting::usage() const {
  std::vector<TierUsage> out;
  out.reserve(bytes_by_tier_.size());
  for (const auto& [tier, bytes] : bytes_by_tier_) {
    out.push_back(TierUsage{tier, bytes});
  }
  return out;
}

}  // namespace manytiers::accounting
