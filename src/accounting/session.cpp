#include "accounting/session.hpp"

#include <stdexcept>

namespace manytiers::accounting {

BgpSession::BgpSession(std::string peer_name)
    : peer_name_(std::move(peer_name)) {}

void BgpSession::establish() { established_ = true; }

void BgpSession::reset() {
  established_ = false;
  rib_.clear();
}

void BgpSession::receive(const UpdateMessage& update) {
  if (!established_) {
    throw std::logic_error("BgpSession::receive: session '" + peer_name_ +
                           "' is not established");
  }
  ++updates_received_;
  for (const auto& prefix : update.withdraw) {
    if (rib_.withdraw(prefix)) ++routes_withdrawn_;
  }
  for (const auto& route : update.announce) {
    rib_.add(route);
  }
}

std::vector<UpdateMessage> announcements_for_tiers(
    const pricing::PricedBundling& pricing,
    std::span<const geo::Prefix> flow_prefixes, std::uint16_t asn,
    std::size_t max_routes_per_update) {
  if (flow_prefixes.size() != pricing.flow_prices.size()) {
    throw std::invalid_argument(
        "announcements_for_tiers: one prefix per flow required");
  }
  if (max_routes_per_update == 0) {
    throw std::invalid_argument(
        "announcements_for_tiers: updates must carry at least one route");
  }
  std::vector<UpdateMessage> out;
  UpdateMessage current;
  for (std::size_t b = 0; b < pricing.bundles.size(); ++b) {
    for (const std::size_t flow : pricing.bundles[b]) {
      Route route;
      route.prefix = flow_prefixes[flow];
      route.tag = TierTag{asn, std::uint16_t(b)};
      route.description = "tier " + std::to_string(b);
      current.announce.push_back(std::move(route));
      if (current.announce.size() == max_routes_per_update) {
        out.push_back(std::move(current));
        current = {};
      }
    }
  }
  if (!current.announce.empty()) out.push_back(std::move(current));
  return out;
}

}  // namespace manytiers::accounting
