#include "accounting/billing.hpp"

#include <stdexcept>
#include <string>

#include "netflow/collector.hpp"  // bytes_to_mbps

namespace manytiers::accounting {

double RatePlan::rate_for(std::uint16_t tier) const {
  for (const auto& r : rates) {
    if (r.tier == tier) return r.price_per_mbps;
  }
  throw std::invalid_argument("RatePlan: no rate for tier " +
                              std::to_string(tier));
}

Invoice tiered_invoice(std::span<const TierUsage> usage,
                       std::uint32_t window_seconds, const RatePlan& plan) {
  Invoice inv;
  for (const auto& u : usage) {
    InvoiceLine line;
    line.tier = u.tier;
    line.mbps = netflow::bytes_to_mbps(u.bytes, window_seconds);
    line.price_per_mbps = plan.rate_for(u.tier);
    line.amount = line.mbps * line.price_per_mbps;
    inv.total += line.amount;
    inv.lines.push_back(line);
  }
  return inv;
}

Invoice blended_invoice(std::span<const TierUsage> usage,
                        std::uint32_t window_seconds,
                        double blended_rate_per_mbps) {
  if (!(blended_rate_per_mbps > 0.0)) {
    throw std::invalid_argument("blended_invoice: rate must be > 0");
  }
  Invoice inv;
  InvoiceLine line;
  line.tier = 0;
  for (const auto& u : usage) {
    line.mbps += netflow::bytes_to_mbps(u.bytes, window_seconds);
  }
  line.price_per_mbps = blended_rate_per_mbps;
  line.amount = line.mbps * blended_rate_per_mbps;
  inv.total = line.amount;
  inv.lines.push_back(line);
  return inv;
}

namespace {
void validate(const PeeringEconomics& econ) {
  if (!(econ.blended_rate > 0.0) || !(econ.isp_unit_cost > 0.0)) {
    throw std::invalid_argument(
        "PeeringEconomics: rate and cost must be > 0");
  }
  if (econ.isp_margin < 0.0 || econ.accounting_overhead < 0.0) {
    throw std::invalid_argument(
        "PeeringEconomics: margin and overhead must be >= 0");
  }
}
}  // namespace

double tiered_price_floor(const PeeringEconomics& econ) {
  validate(econ);
  return (econ.isp_margin + 1.0) * econ.isp_unit_cost +
         econ.accounting_overhead;
}

bool customer_peels_off(double direct_link_cost,
                        const PeeringEconomics& econ) {
  validate(econ);
  if (!(direct_link_cost > 0.0)) {
    throw std::invalid_argument("customer_peels_off: cost must be > 0");
  }
  return direct_link_cost < econ.blended_rate;
}

bool market_failure(double direct_link_cost, const PeeringEconomics& econ) {
  return customer_peels_off(direct_link_cost, econ) &&
         direct_link_cost > tiered_price_floor(econ);
}

}  // namespace manytiers::accounting
