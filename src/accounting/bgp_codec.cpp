#include "accounting/bgp_codec.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace manytiers::accounting {

namespace {

constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNextHop = 3;
constexpr std::uint8_t kAttrExtendedCommunities = 16;
constexpr std::uint8_t kFlagsWellKnown = 0x40;       // transitive
constexpr std::uint8_t kFlagsOptionalTransitive = 0xC0;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v >> 8));
  out.push_back(std::uint8_t(v & 0xff));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, std::uint16_t(v >> 16));
  put16(out, std::uint16_t(v & 0xffff));
}

std::size_t prefix_octets(int length) {
  return std::size_t((length + 7) / 8);
}

void put_prefix(std::vector<std::uint8_t>& out, const geo::Prefix& p) {
  if (p.length < 0 || p.length > 32) {
    throw std::invalid_argument("bgp encode: bad prefix length");
  }
  out.push_back(std::uint8_t(p.length));
  for (std::size_t i = 0; i < prefix_octets(p.length); ++i) {
    out.push_back(std::uint8_t(p.address >> (24 - 8 * i)));
  }
}

class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, std::size_t at)
      : bytes_(bytes), at_(at) {}

  std::uint8_t u8() {
    require(1);
    return bytes_[at_++];
  }
  std::uint16_t u16() {
    require(2);
    const auto v = std::uint16_t((std::uint16_t(bytes_[at_]) << 8) |
                                 bytes_[at_ + 1]);
    at_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  geo::Prefix prefix() {
    geo::Prefix p;
    p.length = int(u8());
    if (p.length > 32) {
      throw std::invalid_argument("bgp decode: prefix length > 32");
    }
    p.address = 0;
    for (std::size_t i = 0; i < prefix_octets(p.length); ++i) {
      p.address |= geo::IpV4(u8()) << (24 - 8 * i);
    }
    return p;
  }
  std::size_t at() const { return at_; }
  void require(std::size_t n) const {
    if (at_ + n > bytes_.size()) {
      throw std::invalid_argument("bgp decode: truncated message");
    }
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_;
};

}  // namespace

std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        const BgpEncodeOptions& options) {
  // All announced routes must share one tier tag (path attributes apply
  // to every NLRI in the message).
  for (const auto& route : update.announce) {
    if (route.tag != update.announce.front().tag) {
      throw std::invalid_argument(
          "encode_update: announced routes must share one tier tag; use "
          "encode_updates to split by tier");
    }
  }
  std::vector<std::uint8_t> out;
  // Header: marker (16 x 0xff), length placeholder, type.
  out.assign(16, 0xff);
  put16(out, 0);  // length, patched below
  out.push_back(kBgpTypeUpdate);

  // Withdrawn routes.
  std::vector<std::uint8_t> withdrawn;
  for (const auto& prefix : update.withdraw) put_prefix(withdrawn, prefix);
  put16(out, std::uint16_t(withdrawn.size()));
  out.insert(out.end(), withdrawn.begin(), withdrawn.end());

  // Path attributes (only when there is NLRI).
  std::vector<std::uint8_t> attrs;
  if (!update.announce.empty()) {
    // ORIGIN = IGP.
    attrs.push_back(kFlagsWellKnown);
    attrs.push_back(kAttrOrigin);
    attrs.push_back(1);
    attrs.push_back(0);
    // AS_PATH: one AS_SEQUENCE segment with the local ASN.
    attrs.push_back(kFlagsWellKnown);
    attrs.push_back(kAttrAsPath);
    attrs.push_back(4);
    attrs.push_back(2);  // AS_SEQUENCE
    attrs.push_back(1);  // one ASN
    put16(attrs, options.local_asn);
    // NEXT_HOP.
    attrs.push_back(kFlagsWellKnown);
    attrs.push_back(kAttrNextHop);
    attrs.push_back(4);
    put32(attrs, options.next_hop);
    // EXTENDED_COMMUNITIES: RFC 4360 two-octet-AS route target carrying
    // the tier in the local administrator field.
    const TierTag tag = update.announce.front().tag;
    attrs.push_back(kFlagsOptionalTransitive);
    attrs.push_back(kAttrExtendedCommunities);
    attrs.push_back(8);
    attrs.push_back(0x00);  // type high: two-octet AS specific
    attrs.push_back(0x02);  // type low: route target
    put16(attrs, tag.asn);
    put32(attrs, tag.tier);
  }
  put16(out, std::uint16_t(attrs.size()));
  out.insert(out.end(), attrs.begin(), attrs.end());

  // NLRI.
  for (const auto& route : update.announce) put_prefix(out, route.prefix);

  if (out.size() > kBgpMaxMessageBytes) {
    throw std::invalid_argument(
        "encode_update: message exceeds the 4096-byte BGP limit");
  }
  out[16] = std::uint8_t(out.size() >> 8);
  out[17] = std::uint8_t(out.size() & 0xff);
  return out;
}

std::vector<std::vector<std::uint8_t>> encode_updates(
    const UpdateMessage& update, const BgpEncodeOptions& options) {
  // Group the announcements by tier tag; withdrawals ride on the first
  // message (or their own message if nothing is announced).
  std::map<TierTag, std::vector<Route>> by_tag;
  for (const auto& route : update.announce) {
    by_tag[route.tag].push_back(route);
  }
  std::vector<std::vector<std::uint8_t>> out;
  bool withdrawals_sent = false;
  for (const auto& [tag, routes] : by_tag) {
    UpdateMessage one;
    if (!withdrawals_sent) {
      one.withdraw = update.withdraw;
      withdrawals_sent = true;
    }
    one.announce = routes;
    out.push_back(encode_update(one, options));
  }
  if (!withdrawals_sent && !update.withdraw.empty()) {
    UpdateMessage only_withdraw;
    only_withdraw.withdraw = update.withdraw;
    out.push_back(encode_update(only_withdraw, options));
  }
  return out;
}

UpdateMessage decode_update(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kBgpHeaderBytes) {
    throw std::invalid_argument("bgp decode: truncated header");
  }
  for (std::size_t i = 0; i < 16; ++i) {
    if (bytes[i] != 0xff) {
      throw std::invalid_argument("bgp decode: bad marker");
    }
  }
  const std::size_t length =
      (std::size_t(bytes[16]) << 8) | std::size_t(bytes[17]);
  if (length != bytes.size() || length > kBgpMaxMessageBytes) {
    throw std::invalid_argument("bgp decode: length mismatch");
  }
  if (bytes[18] != kBgpTypeUpdate) {
    throw std::invalid_argument("bgp decode: not an UPDATE message");
  }
  Reader reader(bytes, kBgpHeaderBytes);

  UpdateMessage out;
  // Withdrawn routes.
  const std::size_t withdrawn_len = reader.u16();
  const std::size_t withdrawn_end = reader.at() + withdrawn_len;
  reader.require(withdrawn_len);
  while (reader.at() < withdrawn_end) {
    out.withdraw.push_back(reader.prefix());
  }
  if (reader.at() != withdrawn_end) {
    throw std::invalid_argument("bgp decode: withdrawn block overrun");
  }
  // Path attributes: we only need the extended-communities tier tag.
  TierTag tag{0, 0};
  const std::size_t attrs_len = reader.u16();
  const std::size_t attrs_end = reader.at() + attrs_len;
  reader.require(attrs_len);
  while (reader.at() < attrs_end) {
    const std::uint8_t flags = reader.u8();
    const std::uint8_t type = reader.u8();
    const std::size_t len = (flags & 0x10) ? reader.u16() : reader.u8();
    const std::size_t value_end = reader.at() + len;
    reader.require(len);
    if (type == kAttrExtendedCommunities && len >= 8) {
      const std::uint8_t type_high = reader.u8();
      const std::uint8_t type_low = reader.u8();
      const std::uint16_t asn = reader.u16();
      const std::uint32_t local = reader.u32();
      if (type_high == 0x00 && type_low == 0x02) {
        tag = TierTag{asn, std::uint16_t(local & 0xffff)};
      }
    }
    // Skip whatever remains of this attribute.
    while (reader.at() < value_end) reader.u8();
  }
  if (reader.at() != attrs_end) {
    throw std::invalid_argument("bgp decode: attribute block overrun");
  }
  // NLRI: everything to the end of the message.
  while (reader.at() < bytes.size()) {
    Route route;
    route.prefix = reader.prefix();
    route.tag = tag;
    out.announce.push_back(std::move(route));
  }
  return out;
}

}  // namespace manytiers::accounting
