// Burstable metering and committed-rate contracts.
//
// The paper's background (§1, §2.1) describes the other axis of tiered
// transit pricing: volume discounts for higher commit levels, billed on
// the 95th percentile of five-minute usage samples (the industry's
// "burstable billing"). This module implements both so the library can
// express real transit contracts end to end: BurstMeter turns raw
// per-interval byte counts into a billable rate, and CommitSchedule maps
// a commitment to its discounted price and computes monthly bills.
#pragma once

#include <cstdint>
#include <vector>

namespace manytiers::accounting {

// Collects per-interval transfer volumes and reports percentile rates.
class BurstMeter {
 public:
  // interval_seconds is the metering window (industry default: 300 s).
  explicit BurstMeter(std::uint32_t interval_seconds = 300);

  // Record the bytes transferred during one complete interval.
  void record_interval(std::uint64_t bytes);

  std::size_t interval_count() const { return samples_.size(); }
  std::uint32_t interval_seconds() const { return interval_seconds_; }

  // The q-th percentile of per-interval rates in Mbps (default: the
  // billing-standard 95th). Requires at least one interval.
  double billable_mbps(double percentile = 95.0) const;
  double peak_mbps() const;
  double mean_mbps() const;

 private:
  std::uint32_t interval_seconds_;
  std::vector<std::uint64_t> samples_;
};

// One rung of a volume-discount ladder: committing to at least
// `min_commit_mbps` buys the `price_per_mbps` rate.
struct CommitTier {
  double min_commit_mbps = 0.0;
  double price_per_mbps = 0.0;
};

// A commit schedule: higher commitments, lower per-Mbps prices (paper §1:
// "customer networks committing to a lower minimum bandwidth receive a
// higher per-bit price quote").
class CommitSchedule {
 public:
  // Tiers must be non-empty with strictly increasing commits and strictly
  // decreasing prices; the first tier's commit must be 0 (walk-in rate).
  explicit CommitSchedule(std::vector<CommitTier> tiers);

  const std::vector<CommitTier>& tiers() const { return tiers_; }

  // The tier a given commitment level buys (highest rung <= commit).
  const CommitTier& tier_for(double commit_mbps) const;

  // Monthly bill for a commitment and a measured billable rate: the
  // customer pays for max(commit, billable) at the committed tier's rate.
  double monthly_bill(double commit_mbps, double billable_mbps) const;

  // The cheapest commitment for an anticipated billable rate; committing
  // above actual usage is often cheaper because of the discounts.
  double optimal_commit(double expected_billable_mbps) const;

 private:
  std::vector<CommitTier> tiers_;
};

}  // namespace manytiers::accounting
