// Link-based (SNMP) accounting (paper §5.2, Fig. 17a).
//
// One physical/virtual link — and one BGP session — per pricing tier.
// Traffic to a destination flows over the link whose session announced
// the covering route, so per-tier usage is just each link's octet
// counter, polled periodically via SNMP. Precise, but the session/link
// overhead grows with the number of tiers.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "accounting/route.hpp"

namespace manytiers::accounting {

struct TierUsage {
  std::uint16_t tier = 0;
  std::uint64_t bytes = 0;
};

class LinkAccounting {
 public:
  // Provisions one virtual link per tier announced in the RIB. The RIB
  // must outlive this object.
  explicit LinkAccounting(const Rib& rib);

  // Forward `bytes` toward `destination`; the covering route picks the
  // link. Traffic with no covering route is dropped and counted.
  void send(geo::IpV4 destination, std::uint64_t bytes);

  // SNMP-style poll: per-tier octet counters, ordered by tier.
  std::vector<TierUsage> poll() const;

  std::uint64_t unrouted_bytes() const { return unrouted_bytes_; }
  // Provisioning overhead: one BGP session (and link) per tier.
  std::size_t session_count() const { return counters_.size(); }

 private:
  const Rib& rib_;
  std::map<std::uint16_t, std::uint64_t> counters_;
  std::uint64_t unrouted_bytes_ = 0;
};

}  // namespace manytiers::accounting
