// BGP-style sessions carrying tier-tagged announcements (paper §5.1).
//
// Models the control-plane path of tiered pricing: the upstream sends
// UPDATE messages whose routes carry tier tags as extended communities;
// the customer side of the session applies announcements and withdrawals
// to its RIB. A session reset (flap) drops everything learned, as real
// BGP does. `announcements_for_tiers` turns a priced bundling straight
// into the updates that roll the tier plan out.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "accounting/route.hpp"
#include "pricing/engine.hpp"

namespace manytiers::accounting {

struct UpdateMessage {
  std::vector<Route> announce;
  std::vector<geo::Prefix> withdraw;
};

class BgpSession {
 public:
  explicit BgpSession(std::string peer_name);

  const std::string& peer_name() const { return peer_name_; }

  // Session lifecycle: updates are only accepted while established, and
  // a reset clears every learned route (BGP's session-flap semantics).
  void establish();
  void reset();
  bool established() const { return established_; }

  // Apply an update; withdrawals are processed before announcements (a
  // prefix present in both ends up announced). Throws std::logic_error
  // if the session is down.
  void receive(const UpdateMessage& update);

  const Rib& rib() const { return rib_; }
  std::size_t updates_received() const { return updates_received_; }
  std::size_t routes_withdrawn() const { return routes_withdrawn_; }

 private:
  std::string peer_name_;
  bool established_ = false;
  Rib rib_;
  std::size_t updates_received_ = 0;
  std::size_t routes_withdrawn_ = 0;
};

// Build the UPDATE stream announcing one destination prefix per flow,
// tagged with the flow's tier from a priced bundling. Routes are packed
// `max_routes_per_update` to a message (real updates are size-limited).
std::vector<UpdateMessage> announcements_for_tiers(
    const pricing::PricedBundling& pricing,
    std::span<const geo::Prefix> flow_prefixes, std::uint16_t asn,
    std::size_t max_routes_per_update = 100);

}  // namespace manytiers::accounting
