// Structured event log for the shard orchestrator.
//
// Every supervision decision (spawn, exit, timeout, retry, corrupt part,
// merge, final verdict) is emitted as one "ORCH_JSON {...}" line — the
// same one-object-per-line convention as BATCH_JSON / BENCH_JSON — so a
// user can `tail -f` a run and tests can assert on the exact sequence of
// decisions without scraping human-formatted text.
#pragma once

#include <chrono>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manytiers::orchestrator {

// One event under construction. Field order is preserved; values are
// emitted as JSON strings or bare numbers.
class Event {
 public:
  explicit Event(std::string_view type);

  Event& field(std::string_view key, std::string_view value);
  Event& field(std::string_view key, const char* value);
  Event& field(std::string_view key, std::size_t value);
  Event& field(std::string_view key, long value);
  Event& field(std::string_view key, double value);

  // The full log line, e.g.
  //   ORCH_JSON {"type":"spawn","shard":1,"attempt":0,"pid":4242}
  std::string line() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Sink for events. Construct with a stream to emit (flushed per line, so
// `tail -f` sees events as they happen); default-construct to drop them.
// Every event is stamped with "t_ms": milliseconds since the log was
// created.
class EventLog {
 public:
  EventLog() = default;                 // disabled: write() drops events
  explicit EventLog(std::ostream& os);  // not owned; must outlive the log

  void write(Event event);

  double elapsed_ms() const;

 private:
  std::ostream* os_ = nullptr;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace manytiers::orchestrator
