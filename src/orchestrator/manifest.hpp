// Durable run manifest: the orchestrator's crash-safety record.
//
// Written (atomically, via util::write_file_durable) into the work dir
// when a run starts and rewritten at every supervision milestone (shard
// spawned / done / failed), so a SIGKILLed orchestrator leaves behind
// everything a `--resume` needs:
//
//   * the run identity (grid name + full grid signature + worker count)
//     — resume refuses a work dir whose manifest disagrees with the
//     options it was given, because shard ownership depends on all of
//     them;
//   * per-shard progress — how many attempts were spawned (so a resumed
//     run never reuses an attempt's part/log/heartbeat paths, even if
//     an orphaned worker from the dead run is still writing to them),
//     how many failures consumed the retry budget, and the last known
//     state.
//
// The manifest is advisory about *completion*: resume trusts only part
// files that re-validate through validate_part, so a manifest that says
// "done" next to a torn part still triggers a re-run. The format is the
// repo's one-object-per-line convention ("ORCH_MANIFEST {...}"), parsed
// with the same minimal scanning as BATCH_JSON.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace manytiers::orchestrator {

struct ShardManifest {
  std::string state = "open";  // "open" | "done" | "failed"
  std::size_t spawned = 0;     // attempts started (names part/log files)
  std::size_t failures = 0;    // retry budget consumed
};

struct Manifest {
  std::string grid;
  std::string signature;  // grid_signature() with overrides applied
  std::size_t workers = 0;
  std::vector<ShardManifest> shards;  // exactly `workers` entries
};

// Serialize / parse the ORCH_MANIFEST line format. parse_manifest throws
// std::invalid_argument on malformed input (missing run record, shard
// count mismatch, unknown state strings).
std::string manifest_to_string(const Manifest& manifest);
Manifest parse_manifest(std::string_view text);

// Durable save (temp file + fsync + rename) and load. load_manifest
// throws std::runtime_error when the file cannot be read and
// std::invalid_argument when it does not parse.
void save_manifest(const std::string& path, const Manifest& manifest);
Manifest load_manifest(const std::string& path);

}  // namespace manytiers::orchestrator
