#include "orchestrator/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <system_error>

extern char** environ;

namespace manytiers::orchestrator {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

ExitStatus decode(int status) {
  ExitStatus out;
  if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.signal = WTERMSIG(status);
  } else {
    out.code = WEXITSTATUS(status);
  }
  return out;
}

}  // namespace

pid_t spawn_process(const SpawnSpec& spec) {
  if (spec.argv.empty()) {
    throw std::invalid_argument("spawn_process: empty argv");
  }
  // Build the child's argv/envp before forking: the post-fork child must
  // only call async-signal-safe functions until exec.
  std::vector<char*> argv;
  argv.reserve(spec.argv.size() + 1);
  for (const auto& arg : spec.argv) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) envp.push_back(*e);
  for (const auto& entry : spec.env_extra) {
    envp.push_back(const_cast<char*>(entry.c_str()));
  }
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw_errno("fork");
  if (pid == 0) {
#ifdef __linux__
    // Die with the supervisor: a SIGKILLed orchestrator must not leave
    // workers running (a stalled one would linger for its full injected
    // sleep, and an orphan could race a resumed supervisor for part
    // files). Best-effort — resume also defends by never reusing
    // attempt numbers recorded in the manifest.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    if (!spec.log_path.empty()) {
      const int fd =
          ::open(spec.log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) ::_exit(127);
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      if (fd > STDERR_FILENO) ::close(fd);
    }
    ::execve(argv[0], argv.data(), envp.data());
    ::_exit(127);
  }
  return pid;
}

std::optional<ExitStatus> try_wait(pid_t pid) {
  int status = 0;
  const pid_t got = ::waitpid(pid, &status, WNOHANG);
  if (got < 0) throw_errno("waitpid");
  if (got == 0) return std::nullopt;
  return decode(status);
}

ExitStatus kill_and_reap(pid_t pid) {
  ::kill(pid, SIGKILL);  // ESRCH (already gone) is fine; reap below
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &status, 0);
  } while (got < 0 && errno == EINTR);
  if (got < 0) throw_errno("waitpid");
  return decode(status);
}

}  // namespace manytiers::orchestrator
