#include "orchestrator/events.hpp"

#include <cstdio>
#include <ostream>

namespace manytiers::orchestrator {

namespace {

// The writer controls every string it emits (event types, file paths,
// exception messages); escape the JSON-breaking characters so a hostile
// path or message cannot produce an unparsable line.
std::string quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

Event::Event(std::string_view type) {
  fields_.emplace_back("type", quote(type));
}

Event& Event::field(std::string_view key, std::string_view value) {
  fields_.emplace_back(std::string(key), quote(value));
  return *this;
}

Event& Event::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

Event& Event::field(std::string_view key, std::size_t value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

Event& Event::field(std::string_view key, long value) {
  fields_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

Event& Event::field(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", value);
  fields_.emplace_back(std::string(key), buf);
  return *this;
}

std::string Event::line() const {
  std::string out = "ORCH_JSON {";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    out += fields_[i].first;
    out += "\":";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

EventLog::EventLog(std::ostream& os) : os_(&os) {}

void EventLog::write(Event event) {
  if (os_ == nullptr) return;
  event.field("t_ms", elapsed_ms());
  *os_ << event.line() << '\n' << std::flush;
}

double EventLog::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace manytiers::orchestrator
