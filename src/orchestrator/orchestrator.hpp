// Fault-tolerant multi-process shard orchestrator (ROADMAP:
// "cross-process shard orchestration").
//
// Takes a named ExperimentGrid and a worker count K, splits the grid
// into K shards (the driver's round-robin task split), spawns one
// `manytiers_batch` worker process per shard, and supervises them to a
// merged report that is byte-identical to the unsharded single-process
// run. Robustness, not just parallelism:
//
//   * per-worker wall-clock timeouts (SIGKILL + retry);
//   * bounded retry with exponential backoff on nonzero exit, crash
//     signal, or corrupt/truncated part files;
//   * part-file integrity via the BATCH_JSON parser + validate_part
//     (signature, shard coordinates, exact per-cell point ownership);
//   * graceful degradation — a shard that exhausts its retry budget
//     fails the whole run with a per-shard summary; no partial report
//     is ever emitted.
//
// Every decision is logged through the structured EventLog (see
// events.hpp); workers inherit a deterministic fault-injection plan
// (MANYTIERS_FAULT) plus the supervisor's per-attempt retry counter
// (MANYTIERS_FAULT_ATTEMPT), which is what makes the crash/timeout/
// corrupt paths hermetically testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orchestrator/events.hpp"

namespace manytiers::orchestrator {

struct Options {
  std::string grid = "default";
  std::size_t workers = 4;       // K: shard count == max concurrent workers
  std::string worker_binary;     // path to the manytiers_batch executable
  std::string work_dir;          // part files + per-attempt worker logs
  double timeout_ms = 0.0;       // per-worker wall clock; 0 = no timeout
  std::size_t retries = 2;       // extra attempts per shard after the first
  double backoff_ms = 250.0;     // base retry delay; doubles per attempt
  bool keep_parts = false;       // keep part files + logs after success
  std::size_t worker_threads = 0;  // --threads forwarded to workers
  std::string fault;             // MANYTIERS_FAULT plan for workers (tests)

  // Grid overrides, forwarded to workers and applied to the merge-time
  // signature check; 0 / unset means "grid default".
  std::uint64_t seed = 0;
  bool seed_given = false;
  std::size_t n_flows = 0;
  std::size_t max_bundles = 0;
};

struct ShardOutcome {
  std::size_t shard = 0;
  std::size_t attempts = 0;  // attempts actually consumed
  bool ok = false;
  std::string failure;  // last failure description when !ok
};

struct Result {
  bool ok = false;
  std::vector<ShardOutcome> shards;
  std::string merged;   // serialized merged report (no timing) when ok
  double wall_ms = 0.0;
};

// Run the whole orchestration: spawn, supervise, validate, merge.
// Throws std::invalid_argument on malformed options (unknown grid,
// workers == 0, missing worker binary / work dir). Worker failures do
// NOT throw — they are supervised into Result.ok == false.
Result orchestrate(const Options& options, EventLog& log);

}  // namespace manytiers::orchestrator
