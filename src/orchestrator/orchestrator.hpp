// Crash-safe, straggler-proof multi-process shard orchestrator.
//
// Takes a named ExperimentGrid and a worker count K, splits the grid
// into K shards (the driver's round-robin task split), spawns one
// `manytiers_batch` worker process per shard, and supervises them to a
// merged report that is byte-identical to the unsharded single-process
// run. Three robustness layers on top of plain parallelism:
//
// Fault tolerance (workers may die):
//   * per-attempt wall-clock timeouts (SIGKILL + retry);
//   * bounded retry with exponential backoff on nonzero exit, crash
//     signal, or corrupt/truncated part files;
//   * part-file integrity via the BATCH_JSON parser + validate_part
//     (signature, shard coordinates, exact per-cell point ownership);
//   * graceful degradation — a shard that exhausts its retry budget
//     fails the whole run with a per-shard summary; no partial report
//     is ever emitted.
//
// Crash safety (the orchestrator itself may die):
//   * a durable manifest (manifest.hpp) in the work dir records the run
//     identity and per-shard progress, written via fsync+rename at
//     every milestone; worker part files land the same way;
//   * `resume = true` re-validates surviving parts with validate_part
//     and re-runs only missing/invalid shards — a SIGKILLed run resumed
//     mid-flight merges byte-identically to the uninterrupted one.
//
// Straggler proofing (workers may be slow without being dead):
//   * heartbeat liveness — workers touch a per-attempt heartbeat file;
//     with `heartbeat_timeout_ms` set, the supervisor kills on beat
//     staleness instead of waiting out the wall-clock cap, so hung
//     shards die fast and slow-but-alive shards are left to finish;
//   * hedged retries — after `hedge_after_ms` (or `hedge_multiplier` x
//     the median completed-attempt time) a backup attempt is spawned in
//     its own attempt paths; the first valid part wins, the loser is
//     killed, and a hedge does NOT consume the retry budget. When both
//     attempts happen to finish, their parts are cross-checked for
//     byte-equality (determinism guard); a mismatch is logged AND
//     surfaced through Result::hedge_mismatches so it cannot pass
//     silently.
//
// Every decision is logged through the structured EventLog (see
// events.hpp); workers inherit a deterministic fault-injection plan
// (MANYTIERS_FAULT) plus the supervisor's per-attempt counter
// (MANYTIERS_FAULT_ATTEMPT), which is what makes the crash/timeout/
// straggle/corrupt/resume paths hermetically testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "orchestrator/events.hpp"

namespace manytiers::orchestrator {

struct Options {
  std::string grid = "default";
  std::size_t workers = 4;       // K: shard count == max concurrent shards
  std::string worker_binary;     // path to the manytiers_batch executable
  std::string work_dir;          // manifest + parts + logs + heartbeats
  double timeout_ms = 0.0;       // per-attempt wall clock; 0 = no timeout
  std::size_t retries = 2;       // extra attempts per shard after the first
  double backoff_ms = 250.0;     // base retry delay; doubles per attempt
  bool keep_parts = false;       // keep part files + logs after success
  std::size_t worker_threads = 0;  // --threads forwarded to workers
  bool per_point = false;        // --per-point forwarded to workers
  std::string fault;             // MANYTIERS_FAULT plan for workers (tests)

  // Observability. `trace` writes one merged Chrome-trace-event JSON
  // timeline: every worker runs with --trace into a per-attempt file
  // (partK.aN.trace.json), winners' files are stitched together with the
  // supervisor's own lifecycle spans (pid-tagged "X" events per attempt,
  // instants for retries/hedges/resume-skips) onto one shared wall-clock
  // timeline. `metrics` runs workers with --metrics into per-attempt
  // sidecars (partK.aN.metrics.json); the winners' sidecars are merged
  // and emitted as one "metrics" ORCH_JSON event after the report merge.
  // Neither changes the merged report bytes.
  std::string trace;
  bool metrics = false;

  // Streaming extensions (needs `metrics` / `trace`): with
  // `metrics_interval_ms` > 0 every worker also streams timestamped
  // delta snapshots into a per-attempt .series.json sidecar; winners'
  // series are promoted like parts, merged onto one wall-clock timeline
  // (obs::merge_time_series), and written to work_dir/metrics.series.json.
  // `trace_sample` forwards --trace-sample N to workers: per-task spans
  // are kept 1-in-N by a deterministic hash of the global task index, so
  // every shard keeps the SAME task subset (lifecycle spans are always
  // kept).
  double metrics_interval_ms = 0.0;
  std::uint64_t trace_sample = 0;

  // Crash safety: resume a previous run from its manifest instead of
  // starting fresh. Valid parts are kept (resume-skip), everything else
  // re-runs; the manifest must match grid/signature/workers exactly.
  bool resume = false;

  // Liveness: kill an attempt whose heartbeat file is older than this
  // (0 = heartbeats disabled). The worker beats every
  // max(10, heartbeat_timeout_ms / 4) ms.
  double heartbeat_timeout_ms = 0.0;

  // Hedging: spawn one backup attempt for a shard whose current attempt
  // has been running longer than hedge_after_ms (takes precedence), or
  // hedge_multiplier x the median duration of completed attempts (only
  // once at least one attempt has completed). 0/0 disables hedging.
  double hedge_after_ms = 0.0;
  double hedge_multiplier = 0.0;

  // TEST HOOK: SIGKILL this process (no cleanup, no unwind) right after
  // the Nth shard completes — the hermetic way to exercise resume.
  std::size_t kill_after_shards = 0;

  // Grid overrides, forwarded to workers and applied to the merge-time
  // signature check; 0 / unset means "grid default".
  std::uint64_t seed = 0;
  bool seed_given = false;
  std::size_t n_flows = 0;
  std::size_t max_bundles = 0;
};

struct ShardOutcome {
  std::size_t shard = 0;
  std::size_t attempts = 0;  // attempts actually spawned (hedges included)
  std::size_t failures = 0;  // retry budget consumed (hedges excluded)
  bool resumed = false;      // satisfied by a surviving part on resume
  bool hedge_mismatch = false;  // two clean attempts, byte-different parts
  bool ok = false;
  std::string failure;  // last failure description when !ok
};

struct Result {
  bool ok = false;
  std::vector<ShardOutcome> shards;
  std::string merged;   // serialized merged report (no timing) when ok
  double wall_ms = 0.0;

  // Shards where a hedge race ended with two successful attempts whose
  // parts differ byte-for-byte. That is a worker-determinism violation:
  // the merged report (built from the winning parts, which did validate)
  // is still emitted, but the byte-identical-merge guarantee is
  // unverifiable, so callers should treat the run as suspect. The CLI
  // exits nonzero when this is > 0.
  std::size_t hedge_mismatches = 0;
};

// Run the whole orchestration: plan (or resume), spawn, supervise,
// validate, merge. Throws std::invalid_argument on malformed options
// (unknown grid, workers == 0, missing worker binary / work dir, resume
// without a matching manifest). Worker failures do NOT throw — they are
// supervised into Result.ok == false.
Result orchestrate(const Options& options, EventLog& log);

}  // namespace manytiers::orchestrator
