// manytiers_orchestrate: supervised multi-process batch runs.
//
// Splits a named grid into K shards, runs each in its own
// manytiers_batch worker process, supervises them (timeouts, heartbeat
// liveness, bounded exponential-backoff retries, hedged straggler
// retries, part-file integrity checks), and writes a merged report
// byte-identical to the unsharded single-process run. A durable
// manifest in the work dir makes a killed run resumable with --resume.
//
//   manytiers_orchestrate --grid default --workers 4 --out default.batch
//   manytiers_orchestrate --grid smoke --workers 3 --timeout-ms 60000
//       --retries 2 --event-log run.events --out smoke.batch
//   manytiers_orchestrate --grid smoke --workers 3 --resume
//       --work-dir smoke.batch.parts --out smoke.batch
//
// Exit codes: 0 success, 1 orchestration failure (a shard exhausted its
// retries, a hedge race exposed nondeterministic workers, or
// merge/report IO failed), 2 usage error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "orchestrator/orchestrator.hpp"
#include "util/file.hpp"

namespace {

using namespace manytiers;

int usage(std::ostream& os, int code) {
  os << "usage: manytiers_orchestrate [options]\n"
        "  --grid NAME          grid to run (default \"default\")\n"
        "  --workers K          shard count == worker processes (default "
        "4)\n"
        "  --timeout-ms T       per-worker wall-clock timeout (0 = none; "
        "with no\n"
        "                       --heartbeat-timeout-ms either, a wedged "
        "worker hangs\n"
        "                       the run forever — a warn event is logged)\n"
        "  --heartbeat-timeout-ms T   kill a worker whose heartbeat file "
        "is older\n"
        "                       than T ms (0 = heartbeats off); workers "
        "beat every\n"
        "                       max(10, T/4) ms\n"
        "  --retries N          extra attempts per shard (default 2)\n"
        "  --backoff-ms B       base retry backoff, doubles per attempt "
        "(default 250)\n"
        "  --hedge-after-ms T   spawn one backup attempt for a shard still "
        "running\n"
        "                       after T ms; first valid part wins, the "
        "loser is\n"
        "                       killed, and no retry budget is consumed; "
        "if both\n"
        "                       attempts finish with byte-different parts "
        "the run\n"
        "                       exits 1 (determinism violation)\n"
        "  --hedge-multiplier X hedge a shard after X times the median "
        "completed-\n"
        "                       attempt duration (needs >= 1 completed "
        "shard;\n"
        "                       --hedge-after-ms takes precedence)\n"
        "  --resume             resume a killed run from the manifest in "
        "--work-dir;\n"
        "                       valid parts are kept, the rest re-run "
        "(grid,\n"
        "                       overrides, and --workers must be "
        "unchanged)\n"
        "  --per-point          forward schema v2 per-point capture "
        "vectors\n"
        "  --keep-parts         keep part files and worker logs on "
        "success\n"
        "  --out PATH           merged report destination (default "
        "stdout)\n"
        "  --work-dir PATH      part files + worker logs (default "
        "<out>.parts)\n"
        "  --worker PATH        manytiers_batch binary (default: next to "
        "this one)\n"
        "  --worker-threads N   --threads forwarded to each worker\n"
        "  --event-log PATH     structured ORCH_JSON event log (default "
        "stderr)\n"
        "  --trace PATH         run every worker with --trace and write "
        "ONE\n"
        "                       merged Chrome-trace-event JSON timeline "
        "(worker\n"
        "                       spans + supervisor lifecycle spans, "
        "pid-tagged)\n"
        "                       to PATH; load it at ui.perfetto.dev\n"
        "  --metrics            run every worker with --metrics and emit "
        "the\n"
        "                       merged counters/histograms as one "
        "\"metrics\"\n"
        "                       ORCH_JSON event after the report merge\n"
        "  --metrics-interval-ms N   (needs --metrics) stream delta "
        "snapshots\n"
        "                       every N ms per worker; winners' series "
        "merge\n"
        "                       onto one timeline at "
        "<work-dir>/metrics.series.json\n"
        "  --trace-sample N     (needs --trace) keep 1-in-N per-task "
        "spans,\n"
        "                       chosen by a deterministic hash of the "
        "global\n"
        "                       task index — identical across workers\n"
        "  --fault SPEC         MANYTIERS_FAULT plan injected into "
        "workers\n"
        "  --kill-after-shards N   TEST HOOK: SIGKILL this process right "
        "after the\n"
        "                       Nth shard completes (exercises --resume)\n"
        "  --seed S / --n-flows N / --max-bundles B   grid overrides\n"
        "exit codes: 0 success, 1 orchestration failure, 2 usage error\n";
  return code;
}

std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::size_t used = 0;
  const std::uint64_t value = std::stoull(text, &used);
  if (used != text.size()) {
    throw std::invalid_argument(std::string(flag) + ": not a number: " + text);
  }
  return value;
}

// Duration and multiplier flags are doubles: "1.5" is the canonical
// hedging multiplier, so fractional values must parse.
double parse_double(const std::string& text, const char* flag) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(flag) + ": not a number: " + text);
  }
  if (used != text.size() || !(value >= 0.0) ||
      value > 1e18) {  // !(>= 0) also rejects NaN
    throw std::invalid_argument(std::string(flag) +
                                ": not a non-negative number: " + text);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  orchestrator::Options options;
  std::string out_path;
  std::string event_log_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " requires a value");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--grid") {
        options.grid = next();
      } else if (arg == "--workers") {
        options.workers = parse_u64(next(), "--workers");
      } else if (arg == "--timeout-ms") {
        options.timeout_ms = parse_double(next(), "--timeout-ms");
      } else if (arg == "--heartbeat-timeout-ms") {
        options.heartbeat_timeout_ms =
            parse_double(next(), "--heartbeat-timeout-ms");
      } else if (arg == "--hedge-after-ms") {
        options.hedge_after_ms = parse_double(next(), "--hedge-after-ms");
      } else if (arg == "--hedge-multiplier") {
        options.hedge_multiplier = parse_double(next(), "--hedge-multiplier");
      } else if (arg == "--resume") {
        options.resume = true;
      } else if (arg == "--per-point") {
        options.per_point = true;
      } else if (arg == "--kill-after-shards") {
        options.kill_after_shards = parse_u64(next(), "--kill-after-shards");
      } else if (arg == "--retries") {
        options.retries = parse_u64(next(), "--retries");
      } else if (arg == "--backoff-ms") {
        options.backoff_ms = parse_double(next(), "--backoff-ms");
      } else if (arg == "--keep-parts") {
        options.keep_parts = true;
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--work-dir") {
        options.work_dir = next();
      } else if (arg == "--worker") {
        options.worker_binary = next();
      } else if (arg == "--worker-threads") {
        options.worker_threads = parse_u64(next(), "--worker-threads");
      } else if (arg == "--event-log") {
        event_log_path = next();
      } else if (arg == "--trace") {
        options.trace = next();
      } else if (arg == "--metrics") {
        options.metrics = true;
      } else if (arg == "--metrics-interval-ms") {
        options.metrics_interval_ms =
            parse_double(next(), "--metrics-interval-ms");
      } else if (arg == "--trace-sample") {
        options.trace_sample = parse_u64(next(), "--trace-sample");
      } else if (arg == "--fault") {
        options.fault = next();
      } else if (arg == "--seed") {
        options.seed = parse_u64(next(), "--seed");
        options.seed_given = true;
      } else if (arg == "--n-flows") {
        options.n_flows = parse_u64(next(), "--n-flows");
      } else if (arg == "--max-bundles") {
        options.max_bundles = parse_u64(next(), "--max-bundles");
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (options.workers == 0) {
      throw std::invalid_argument("--workers must be >= 1");
    }
    if (options.metrics_interval_ms > 0.0 && !options.metrics) {
      throw std::invalid_argument("--metrics-interval-ms requires --metrics");
    }
    if (options.trace_sample != 0 && options.trace.empty()) {
      throw std::invalid_argument("--trace-sample requires --trace");
    }
    if (options.worker_binary.empty()) {
      // Default: the batch binary that ships next to this one.
      options.worker_binary =
          (std::filesystem::path(argv[0]).parent_path() / "manytiers_batch")
              .string();
    }
    if (!std::filesystem::exists(options.worker_binary)) {
      throw std::invalid_argument("worker binary not found: \"" +
                                  options.worker_binary +
                                  "\" (point --worker at manytiers_batch)");
    }
    if (options.work_dir.empty()) {
      options.work_dir = out_path.empty() ? std::string("manytiers_orchestrate.work")
                                          : out_path + ".parts";
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_orchestrate: " << err.what() << "\n";
    return 2;
  }

  try {
    std::ofstream event_file;
    if (!event_log_path.empty()) {
      event_file.open(event_log_path);
      if (!event_file) {
        std::cerr << "manytiers_orchestrate: cannot open event log: "
                  << event_log_path << "\n";
        return 2;
      }
    }
    orchestrator::EventLog log(event_log_path.empty()
                                   ? static_cast<std::ostream&>(std::cerr)
                                   : event_file);

    const auto result = orchestrator::orchestrate(options, log);
    if (!result.ok) {
      std::cerr << "manytiers_orchestrate: run FAILED; per-shard summary:\n";
      for (const auto& shard : result.shards) {
        std::cerr << "  shard " << shard.shard << ": "
                  << (shard.ok ? "ok" : shard.failure) << " ("
                  << shard.attempts << " attempt"
                  << (shard.attempts == 1 ? "" : "s") << ")\n";
      }
      std::cerr << "no report written (partial results are never emitted); "
                   "worker logs kept under "
                << options.work_dir << "\n";
      return 1;
    }

    if (out_path.empty()) {
      std::cout << result.merged;
    } else {
      util::write_file_durable(out_path, result.merged);
    }
    std::cerr << "BENCH_JSON {\"bench\":\"manytiers_orchestrate:"
              << options.grid << "\",\"n\":" << options.workers
              << ",\"wall_ms\":" << result.wall_ms << ",\"threads\":"
              << options.workers << "}\n";
    if (result.hedge_mismatches > 0) {
      // Nondeterministic workers void the byte-identical-merge contract.
      // The report above was written (the winning parts did validate, and
      // the bytes are evidence for debugging) but the run must not look
      // clean to scripts.
      std::cerr << "manytiers_orchestrate: DETERMINISM VIOLATION: "
                << result.hedge_mismatches
                << " hedged shard(s) produced byte-different parts from two "
                   "successful attempts; the merged report cannot be "
                   "guaranteed byte-identical to the unsharded run (see "
                   "hedge-mismatch events)\n";
      return 1;
    }
  } catch (const std::exception& err) {
    // Unknown grid names and similar option-shaped problems surface from
    // orchestrate() as invalid_argument: usage, not runtime.
    const bool is_usage =
        dynamic_cast<const std::invalid_argument*>(&err) != nullptr;
    std::cerr << "manytiers_orchestrate: " << err.what() << "\n";
    return is_usage ? 2 : 1;
  }
  return 0;
}
