// Minimal POSIX child-process supervision primitives.
//
// The orchestrator runs a single-threaded supervision loop over K
// workers, so all it needs is: spawn (fork/exec with stdout+stderr
// redirected to a per-attempt log file and extra environment entries),
// a non-blocking reap, and kill. Everything throws std::system_error on
// syscall failure; no global SIGCHLD state is installed, so the library
// composes with test harnesses that spawn their own children.
#pragma once

#include <optional>
#include <string>
#include <sys/types.h>
#include <vector>

namespace manytiers::orchestrator {

struct SpawnSpec {
  std::vector<std::string> argv;       // argv[0] is the executable path
  std::vector<std::string> env_extra;  // "KEY=VALUE" entries appended
  std::string log_path;                // stdout+stderr target; "" inherits
};

// How a child left the world: a normal exit with a code, or a signal
// (the timeout path: the supervisor SIGKILLs and reaps).
struct ExitStatus {
  bool signaled = false;
  int code = 0;    // exit code when !signaled
  int signal = 0;  // terminating signal when signaled

  bool success() const { return !signaled && code == 0; }
};

// Fork and exec. An exec failure inside the child exits with code 127
// (reported through the usual ExitStatus path, like a shell).
pid_t spawn_process(const SpawnSpec& spec);

// Non-blocking reap: nullopt while the child still runs.
std::optional<ExitStatus> try_wait(pid_t pid);

// SIGKILL followed by a blocking reap; returns the (signaled) status.
// Safe to call on an already-exited child.
ExitStatus kill_and_reap(pid_t pid);

}  // namespace manytiers::orchestrator
