#include "orchestrator/orchestrator.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "orchestrator/process.hpp"

namespace manytiers::orchestrator {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Supervision state of one shard. A shard cycles Pending -> Running ->
// (Done | Pending-with-backoff | Failed).
struct Shard {
  enum class State { Pending, Running, Done, Failed };
  State state = State::Pending;
  std::size_t attempt = 0;           // next (or current) attempt number
  Clock::time_point not_before{};    // backoff gate while Pending
  Clock::time_point deadline{};      // timeout while Running
  bool has_deadline = false;
  pid_t pid = -1;
  std::string last_failure;
  std::optional<manytiers::driver::BatchReport> part;  // validated result
};

std::string part_path(const Options& opt, std::size_t shard) {
  return opt.work_dir + "/part" + std::to_string(shard) + ".batch";
}

std::string log_path(const Options& opt, std::size_t shard,
                     std::size_t attempt) {
  return opt.work_dir + "/worker" + std::to_string(shard) + ".a" +
         std::to_string(attempt) + ".log";
}

SpawnSpec worker_spec(const Options& opt, std::size_t shard,
                      std::size_t attempt) {
  SpawnSpec spec;
  spec.argv = {opt.worker_binary,
               "--grid",        opt.grid,
               "--shard-index", std::to_string(shard),
               "--shard-count", std::to_string(opt.workers),
               "--no-timing",
               "--out",         part_path(opt, shard)};
  if (opt.worker_threads != 0) {
    spec.argv.push_back("--threads");
    spec.argv.push_back(std::to_string(opt.worker_threads));
  }
  if (opt.seed_given) {
    spec.argv.push_back("--seed");
    spec.argv.push_back(std::to_string(opt.seed));
  }
  if (opt.n_flows != 0) {
    spec.argv.push_back("--n-flows");
    spec.argv.push_back(std::to_string(opt.n_flows));
  }
  if (opt.max_bundles != 0) {
    spec.argv.push_back("--max-bundles");
    spec.argv.push_back(std::to_string(opt.max_bundles));
  }
  if (!opt.fault.empty()) {
    spec.env_extra.push_back("MANYTIERS_FAULT=" + opt.fault);
  }
  spec.env_extra.push_back("MANYTIERS_FAULT_ATTEMPT=" +
                           std::to_string(attempt));
  spec.log_path = log_path(opt, shard, attempt);
  return spec;
}

// Parse + integrity-check one part file; returns the failure reason
// instead of throwing so the supervisor can fold it into retry logic.
std::optional<std::string> load_part(const Options& opt,
                                     const driver::ExperimentGrid& grid,
                                     std::size_t shard_index, Shard& shard) {
  const std::string path = part_path(opt, shard_index);
  std::ifstream in(path, std::ios::binary);
  if (!in) return "missing part file " + path;
  try {
    auto report = driver::read_report(in);
    driver::validate_part(report, grid, shard_index, opt.workers);
    shard.part = std::move(report);
  } catch (const std::exception& err) {
    return "corrupt part " + path + ": " + err.what();
  }
  return std::nullopt;
}

}  // namespace

Result orchestrate(const Options& options, EventLog& log) {
  if (options.workers == 0) {
    throw std::invalid_argument("orchestrate: workers must be >= 1");
  }
  if (options.worker_binary.empty() || !fs::exists(options.worker_binary)) {
    throw std::invalid_argument("orchestrate: worker binary not found: \"" +
                                options.worker_binary + "\"");
  }
  if (options.work_dir.empty()) {
    throw std::invalid_argument("orchestrate: work_dir is required");
  }
  // Resolve the grid now: an unknown grid name or bad override is a
  // caller error, not a worker failure to retry.
  driver::ExperimentGrid grid = driver::named_grid(options.grid);
  if (options.seed_given) grid.base.seed = options.seed;
  if (options.n_flows != 0) grid.base.n_flows = options.n_flows;
  if (options.max_bundles != 0) grid.max_bundles = options.max_bundles;
  driver::validate_grid(grid);
  fs::create_directories(options.work_dir);

  const auto t_start = Clock::now();
  const std::size_t max_attempts = options.retries + 1;
  std::vector<Shard> shards(options.workers);

  log.write(Event("plan")
                .field("grid", options.grid)
                .field("workers", options.workers)
                .field("timeout_ms", options.timeout_ms)
                .field("retries", options.retries)
                .field("backoff_ms", options.backoff_ms)
                .field("worker", options.worker_binary));

  std::size_t open = options.workers;  // shards not yet Done/Failed

  // Routes one attempt's failure into backoff-retry or permanent
  // failure. `reason` is the human-readable cause ("exit code 70",
  // "timeout after 500 ms", "corrupt part ...").
  const auto handle_failure = [&](std::size_t k, const std::string& reason) {
    Shard& shard = shards[k];
    shard.last_failure =
        reason + " (attempt " + std::to_string(shard.attempt) + ", log " +
        log_path(options, k, shard.attempt) + ")";
    if (shard.attempt + 1 >= max_attempts) {
      shard.state = Shard::State::Failed;
      --open;
      log.write(Event("shard-failed")
                    .field("shard", k)
                    .field("attempts", shard.attempt + 1)
                    .field("reason", reason));
      return;
    }
    const double backoff =
        options.backoff_ms * static_cast<double>(1ull << shard.attempt);
    log.write(Event("retry")
                  .field("shard", k)
                  .field("attempt", shard.attempt)
                  .field("reason", reason)
                  .field("backoff_ms", backoff));
    shard.state = Shard::State::Pending;
    shard.not_before =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(backoff));
    ++shard.attempt;
  };

  while (open > 0) {
    const auto now = Clock::now();
    // Spawn every eligible pending shard (the shard count is the
    // concurrency cap by construction: one worker per shard).
    for (std::size_t k = 0; k < shards.size(); ++k) {
      Shard& shard = shards[k];
      if (shard.state != Shard::State::Pending || now < shard.not_before) {
        continue;
      }
      // Drop any stale part so a crashed attempt cannot hand the
      // validator a previous attempt's output.
      std::error_code ec;
      fs::remove(part_path(options, k), ec);
      shard.pid = spawn_process(worker_spec(options, k, shard.attempt));
      shard.state = Shard::State::Running;
      shard.has_deadline = options.timeout_ms > 0.0;
      if (shard.has_deadline) {
        shard.deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   options.timeout_ms));
      }
      log.write(Event("spawn")
                    .field("shard", k)
                    .field("attempt", shard.attempt)
                    .field("pid", static_cast<long>(shard.pid)));
    }

    // Reap exits and enforce deadlines.
    for (std::size_t k = 0; k < shards.size(); ++k) {
      Shard& shard = shards[k];
      if (shard.state != Shard::State::Running) continue;
      if (const auto status = try_wait(shard.pid)) {
        log.write(Event("exit")
                      .field("shard", k)
                      .field("attempt", shard.attempt)
                      .field(status->signaled ? "signal" : "code",
                             static_cast<long>(status->signaled
                                                   ? status->signal
                                                   : status->code)));
        if (!status->success()) {
          handle_failure(k, status->signaled
                                ? "killed by signal " +
                                      std::to_string(status->signal)
                                : "exit code " + std::to_string(status->code));
          continue;
        }
        if (const auto bad = load_part(options, grid, k, shard)) {
          log.write(Event("bad-part").field("shard", k).field("reason", *bad));
          handle_failure(k, *bad);
          continue;
        }
        shard.state = Shard::State::Done;
        --open;
        log.write(Event("shard-done")
                      .field("shard", k)
                      .field("attempts", shard.attempt + 1));
      } else if (shard.has_deadline && Clock::now() > shard.deadline) {
        kill_and_reap(shard.pid);
        log.write(Event("timeout")
                      .field("shard", k)
                      .field("attempt", shard.attempt)
                      .field("timeout_ms", options.timeout_ms));
        handle_failure(k, "timeout after " +
                              std::to_string(options.timeout_ms) + " ms");
      }
    }
    if (open > 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Result result;
  result.shards.reserve(shards.size());
  bool all_ok = true;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    ShardOutcome outcome;
    outcome.shard = k;
    outcome.ok = shards[k].state == Shard::State::Done;
    outcome.attempts = shards[k].attempt + 1;
    outcome.failure = outcome.ok ? "" : shards[k].last_failure;
    all_ok = all_ok && outcome.ok;
    result.shards.push_back(std::move(outcome));
  }

  if (all_ok) {
    const auto t_merge = Clock::now();
    std::vector<driver::BatchReport> parts;
    parts.reserve(shards.size());
    for (auto& shard : shards) parts.push_back(std::move(*shard.part));
    const auto merged = driver::merge_shards(parts);
    result.merged =
        driver::report_to_string(merged, /*include_timing=*/false);
    log.write(Event("merge")
                  .field("shards", shards.size())
                  .field("cells", merged.cells.size())
                  .field("wall_ms", ms_since(t_merge)));
    if (!options.keep_parts) {
      std::error_code ec;
      for (std::size_t k = 0; k < shards.size(); ++k) {
        fs::remove(part_path(options, k), ec);
        for (std::size_t a = 0; a < max_attempts; ++a) {
          fs::remove(log_path(options, k, a), ec);
        }
      }
    }
    result.ok = true;
  }
  // On failure, part files and worker logs are always kept as evidence.

  result.wall_ms = ms_since(t_start);
  log.write(Event(result.ok ? "done" : "failed")
                .field("wall_ms", result.wall_ms));
  return result;
}

}  // namespace manytiers::orchestrator
