#include "orchestrator/orchestrator.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "obs/registry.hpp"
#include "obs/snapshotter.hpp"
#include "obs/trace.hpp"
#include "orchestrator/manifest.hpp"
#include "orchestrator/process.hpp"
#include "util/file.hpp"

namespace manytiers::orchestrator {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

// One running worker process for a shard. A shard usually has exactly
// one, but hedging can put a primary and a backup in flight at once;
// each attempt owns its own part/log/heartbeat paths (named by `id`) so
// concurrent attempts never write the same file.
struct Attempt {
  std::size_t id = 0;  // globally unique per shard, across retries+hedges
  bool hedge = false;
  pid_t pid = -1;
  Clock::time_point started{};
  Clock::time_point deadline{};
  bool has_deadline = false;
  // Exit status once the pid has been waited on. A pid may be reaped at
  // most once; every wait/kill goes through this cache so a dead attempt
  // that lingers in shard.attempts (e.g. it failed in the same scan pass
  // where a later attempt won) is never waited on a second time — the
  // second waitpid would fail with ECHILD, or worse, SIGKILL a recycled
  // pid.
  std::optional<ExitStatus> reaped;
  bool part_bad = false;  // exited 0 but its part failed validation
  std::uint64_t started_us = 0;  // spawn time on the shared trace timeline
  bool span_emitted = false;     // lifecycle span already in the trace
};

// Supervision state of one shard. A shard cycles Pending -> Running ->
// (Done | Pending-with-backoff | Failed); Running may carry up to two
// live attempts when hedged. A whole wave of attempts must die for one
// unit of retry budget to be consumed.
struct Shard {
  enum class State { Pending, Running, Done, Failed };
  State state = State::Pending;
  std::size_t next_attempt = 0;  // id for the next spawn; == spawned count
  std::size_t failures = 0;      // retry budget consumed (whole waves)
  bool hedged = false;           // backup already spawned for this wave
  bool resumed = false;          // satisfied by a surviving part on resume
  bool hedge_mismatch = false;   // two clean attempts, byte-different parts
  Clock::time_point not_before{};  // backoff gate while Pending
  std::vector<Attempt> attempts;   // live attempts while Running
  std::string last_failure;
  std::optional<manytiers::driver::BatchReport> part;  // validated result
};

// Supervisor-side trace buffer. The orchestrator does NOT run through the
// global Tracer: its atexit flush would rewrite the output file with only
// the supervisor's events, clobbering the stitched worker timelines. All
// names and args here are generated (digits and identifiers), so no JSON
// escaping is needed.
struct TraceCollector {
  bool on = false;
  long pid = static_cast<long>(::getpid());
  std::vector<std::string> events;

  static std::uint64_t now_us() {
    return manytiers::obs::Tracer::instance().now_us();
  }

  // Pid-tagged lifecycle span: one row per shard on the supervisor's
  // process track, spanning spawn -> termination of one attempt.
  void complete(const std::string& name, std::uint64_t ts_us,
                std::uint64_t dur_us, long tid, const std::string& args_json) {
    if (!on) return;
    std::string e = "{\"name\":\"" + name + "\",\"ph\":\"X\",\"ts\":" +
                    std::to_string(ts_us) + ",\"dur\":" +
                    std::to_string(dur_us) + ",\"pid\":" +
                    std::to_string(pid) + ",\"tid\":" + std::to_string(tid);
    if (!args_json.empty()) e += ",\"args\":" + args_json;
    events.push_back(e + "}");
  }

  void instant(const std::string& name, long tid,
               const std::string& args_json) {
    if (!on) return;
    std::string e = "{\"name\":\"" + name +
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
                    std::to_string(now_us()) + ",\"pid\":" +
                    std::to_string(pid) + ",\"tid\":" + std::to_string(tid);
    if (!args_json.empty()) e += ",\"args\":" + args_json;
    events.push_back(e + "}");
  }

  void process_name(const std::string& name) {
    if (!on) return;
    events.push_back("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
                     std::to_string(pid) +
                     ",\"tid\":0,\"args\":{\"name\":\"" + name + "\"}}");
  }
};

// All work-dir paths go through std::filesystem::path so separators and
// quoting stay correct on every platform.
fs::path manifest_path(const fs::path& work) { return work / "manifest.orch"; }

fs::path part_path(const fs::path& work, std::size_t shard) {
  return work / ("part" + std::to_string(shard) + ".batch");
}

fs::path attempt_part_path(const fs::path& work, std::size_t shard,
                           std::size_t attempt) {
  return work / ("part" + std::to_string(shard) + ".a" +
                 std::to_string(attempt) + ".batch");
}

fs::path log_path(const fs::path& work, std::size_t shard,
                  std::size_t attempt) {
  return work / ("worker" + std::to_string(shard) + ".a" +
                 std::to_string(attempt) + ".log");
}

fs::path heartbeat_path(const fs::path& work, std::size_t shard,
                        std::size_t attempt) {
  return work / ("hb" + std::to_string(shard) + ".a" +
                 std::to_string(attempt));
}

// Observability sidecars mirror the part-file discipline: per-attempt
// files while racing, promoted to a canonical per-shard name when the
// attempt wins (which is also what resume finds).
fs::path metrics_path(const fs::path& work, std::size_t shard) {
  return work / ("part" + std::to_string(shard) + ".metrics.json");
}

fs::path attempt_metrics_path(const fs::path& work, std::size_t shard,
                              std::size_t attempt) {
  return work / ("part" + std::to_string(shard) + ".a" +
                 std::to_string(attempt) + ".metrics.json");
}

// Time-series sidecars are named off the metrics paths by the same rule
// the snapshotter itself uses (strip ".json", append ".series.json"), so
// the supervisor finds exactly the file the worker wrote.
fs::path series_path(const fs::path& work, std::size_t shard) {
  return fs::path(obs::series_path_for(metrics_path(work, shard).string()));
}

fs::path attempt_series_path(const fs::path& work, std::size_t shard,
                             std::size_t attempt) {
  return fs::path(
      obs::series_path_for(attempt_metrics_path(work, shard, attempt).string()));
}

fs::path trace_file_path(const fs::path& work, std::size_t shard) {
  return work / ("part" + std::to_string(shard) + ".trace.json");
}

fs::path attempt_trace_path(const fs::path& work, std::size_t shard,
                            std::size_t attempt) {
  return work / ("part" + std::to_string(shard) + ".a" +
                 std::to_string(attempt) + ".trace.json");
}

SpawnSpec worker_spec(const Options& opt, const fs::path& work,
                      std::size_t shard, std::size_t attempt) {
  SpawnSpec spec;
  spec.argv = {opt.worker_binary,
               "--grid",        opt.grid,
               "--shard-index", std::to_string(shard),
               "--shard-count", std::to_string(opt.workers),
               "--no-timing",
               "--out",         attempt_part_path(work, shard, attempt)
                                    .string()};
  if (opt.per_point) spec.argv.push_back("--per-point");
  if (opt.worker_threads != 0) {
    spec.argv.push_back("--threads");
    spec.argv.push_back(std::to_string(opt.worker_threads));
  }
  if (opt.heartbeat_timeout_ms > 0.0) {
    // Beat 4x faster than the staleness cap so scheduling jitter on a
    // loaded box cannot fake a dead worker.
    const long interval = std::max<long>(
        10, static_cast<long>(std::lround(opt.heartbeat_timeout_ms / 4.0)));
    spec.argv.push_back("--heartbeat");
    spec.argv.push_back(heartbeat_path(work, shard, attempt).string());
    spec.argv.push_back("--heartbeat-interval-ms");
    spec.argv.push_back(std::to_string(interval));
  }
  if (opt.seed_given) {
    spec.argv.push_back("--seed");
    spec.argv.push_back(std::to_string(opt.seed));
  }
  if (opt.n_flows != 0) {
    spec.argv.push_back("--n-flows");
    spec.argv.push_back(std::to_string(opt.n_flows));
  }
  if (opt.max_bundles != 0) {
    spec.argv.push_back("--max-bundles");
    spec.argv.push_back(std::to_string(opt.max_bundles));
  }
  if (!opt.trace.empty()) {
    spec.argv.push_back("--trace");
    spec.argv.push_back(attempt_trace_path(work, shard, attempt).string());
    if (opt.trace_sample != 0) {
      spec.argv.push_back("--trace-sample");
      spec.argv.push_back(std::to_string(opt.trace_sample));
    }
  }
  if (opt.metrics) {
    spec.argv.push_back("--metrics");
    spec.argv.push_back(attempt_metrics_path(work, shard, attempt).string());
    if (opt.metrics_interval_ms > 0.0) {
      char interval_ms[32];
      std::snprintf(interval_ms, sizeof(interval_ms), "%g",
                    opt.metrics_interval_ms);
      spec.argv.push_back("--metrics-interval-ms");
      spec.argv.push_back(interval_ms);
    }
  }
  if (!opt.fault.empty()) {
    spec.env_extra.push_back("MANYTIERS_FAULT=" + opt.fault);
  }
  spec.env_extra.push_back("MANYTIERS_FAULT_ATTEMPT=" +
                           std::to_string(attempt));
  spec.log_path = log_path(work, shard, attempt).string();
  return spec;
}

// Parse + integrity-check one part file; returns the failure reason
// instead of throwing so the supervisor can fold it into retry logic.
std::optional<std::string> load_part(const fs::path& path, const Options& opt,
                                     const driver::ExperimentGrid& grid,
                                     std::size_t shard_index,
                                     std::optional<driver::BatchReport>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "missing part file " + path.string();
  try {
    auto report = driver::read_report(in);
    driver::validate_part(report, grid, shard_index, opt.workers);
    if (report.per_point != opt.per_point) {
      return "part " + path.string() + ": per_point=" +
             std::to_string(report.per_point ? 1 : 0) +
             " does not match this run";
    }
    out = std::move(report);
  } catch (const std::exception& err) {
    return "corrupt part " + path.string() + ": " + err.what();
  }
  return std::nullopt;
}

// Heartbeat age: mtime of the beat file if the worker has touched it,
// otherwise time since the attempt was spawned (covers a worker that
// wedged before its first beat).
double heartbeat_age_ms(const fs::path& hb, const Attempt& attempt) {
  std::error_code ec;
  const auto mtime = fs::last_write_time(hb, ec);
  if (!ec) {
    return std::chrono::duration<double, std::milli>(
               fs::file_time_type::clock::now() - mtime)
        .count();
  }
  return ms_since(attempt.started);
}

double median_of(std::vector<double> values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

Result orchestrate(const Options& options, EventLog& log) {
  if (options.workers == 0) {
    throw std::invalid_argument("orchestrate: workers must be >= 1");
  }
  if (options.worker_binary.empty() || !fs::exists(options.worker_binary)) {
    throw std::invalid_argument("orchestrate: worker binary not found: \"" +
                                options.worker_binary + "\"");
  }
  if (options.work_dir.empty()) {
    throw std::invalid_argument("orchestrate: work_dir is required");
  }
  // Resolve the grid now: an unknown grid name or bad override is a
  // caller error, not a worker failure to retry.
  driver::ExperimentGrid grid = driver::named_grid(options.grid);
  if (options.seed_given) grid.base.seed = options.seed;
  if (options.n_flows != 0) grid.base.n_flows = options.n_flows;
  if (options.max_bundles != 0) grid.max_bundles = options.max_bundles;
  driver::validate_grid(grid);
  const std::string signature = driver::grid_signature(grid);
  const fs::path work{options.work_dir};
  fs::create_directories(work);

  const auto t_start = Clock::now();
  const std::size_t max_attempts = options.retries + 1;
  std::vector<Shard> shards(options.workers);
  std::size_t open = options.workers;  // shards not yet Done/Failed
  std::error_code ec;

  TraceCollector trace;
  trace.on = !options.trace.empty();
  trace.process_name("manytiers_orchestrate " + options.grid);
  // One lifecycle span per attempt on the supervisor's track (one row
  // per shard), emitted when the attempt terminates — the supervisor
  // knows both endpoints then, so a crashed worker still gets a closed
  // span. The guard makes emission idempotent: a loser reaped in the
  // scan pass and again in finish_shard produces one span.
  const auto emit_attempt_span = [&](std::size_t k, Attempt& attempt,
                                     const std::string& outcome) {
    if (!trace.on || attempt.span_emitted) return;
    attempt.span_emitted = true;
    const std::uint64_t now = TraceCollector::now_us();
    trace.complete(
        "shard " + std::to_string(k) + " attempt " +
            std::to_string(attempt.id) + (attempt.hedge ? " (hedge)" : ""),
        attempt.started_us,
        now > attempt.started_us ? now - attempt.started_us : 0,
        static_cast<long>(k),
        "{\"pid\":" + std::to_string(attempt.pid) +
            ",\"hedge\":" + (attempt.hedge ? "1" : "0") +
            ",\"outcome\":\"" + outcome + "\"}");
  };

  log.write(Event("plan")
                .field("v", std::size_t{1})
                .field("grid", options.grid)
                .field("workers", options.workers)
                .field("timeout_ms", options.timeout_ms)
                .field("retries", options.retries)
                .field("backoff_ms", options.backoff_ms)
                .field("heartbeat_timeout_ms", options.heartbeat_timeout_ms)
                .field("hedge_after_ms", options.hedge_after_ms)
                .field("hedge_multiplier", options.hedge_multiplier)
                .field("resume",
                       static_cast<std::size_t>(options.resume ? 1 : 0))
                .field("worker", options.worker_binary));
  if (options.timeout_ms <= 0.0 && options.heartbeat_timeout_ms <= 0.0) {
    log.write(
        Event("warn").field(
            "message",
            "no --timeout-ms and no --heartbeat-timeout-ms: a wedged worker "
            "will hang this run forever"));
  }

  // Crash-safety record. Fresh runs start a new manifest; --resume loads
  // the previous one, re-validates surviving canonical parts through the
  // exact merge-time checks, and only re-runs shards that fail them.
  // Attempt numbering continues from the dead run's `spawned` counters so
  // a resumed supervisor never shares part/log paths with an orphan.
  Manifest manifest;
  if (options.resume) {
    if (!fs::exists(manifest_path(work))) {
      throw std::invalid_argument(
          "orchestrate: --resume requires a manifest at " +
          manifest_path(work).string());
    }
    manifest = load_manifest(manifest_path(work).string());
    if (manifest.grid != options.grid || manifest.signature != signature ||
        manifest.workers != options.workers) {
      throw std::invalid_argument(
          "orchestrate: manifest at " + manifest_path(work).string() +
          " records a different run (grid \"" + manifest.grid +
          "\", workers " + std::to_string(manifest.workers) +
          ") — resume must keep grid, overrides, and workers identical");
    }
    for (std::size_t k = 0; k < shards.size(); ++k) {
      Shard& shard = shards[k];
      shard.next_attempt = manifest.shards[k].spawned;
      // The operator chose to resume: give re-run shards a fresh retry
      // budget (the manifest keeps the dead run's counters only until
      // this rewrite).
      manifest.shards[k].failures = 0;
      if (!load_part(part_path(work, k), options, grid, k, shard.part)) {
        shard.state = Shard::State::Done;
        shard.resumed = true;
        --open;
        manifest.shards[k].state = "done";
        log.write(Event("resume-skip")
                      .field("shard", k)
                      .field("attempts", shard.next_attempt));
        trace.instant("resume-skip shard " + std::to_string(k),
                      static_cast<long>(k), {});
      } else {
        manifest.shards[k].state = "open";
        shard.part.reset();
        fs::remove(part_path(work, k), ec);
      }
    }
  } else {
    manifest.grid = options.grid;
    manifest.signature = signature;
    manifest.workers = options.workers;
    manifest.shards.assign(options.workers, ShardManifest{});
    // Drop canonical parts from any unrelated previous use of this dir so
    // a crashed attempt cannot hand the validator someone else's output.
    for (std::size_t k = 0; k < shards.size(); ++k) {
      fs::remove(part_path(work, k), ec);
    }
  }
  save_manifest(manifest_path(work).string(), manifest);

  std::vector<double> completed_ms;  // winning-attempt durations (hedging)
  std::size_t done_in_this_process = 0;

  // Routes one whole wave's failure (every live attempt of the shard is
  // gone) into backoff-retry or permanent failure. `attempt_id` is the
  // last attempt that died; `reason` the human-readable cause.
  const auto handle_failure = [&](std::size_t k, std::size_t attempt_id,
                                  const std::string& reason) {
    Shard& shard = shards[k];
    shard.last_failure = reason + " (attempt " + std::to_string(attempt_id) +
                         ", log " + log_path(work, k, attempt_id).string() +
                         ")";
    shard.hedged = false;
    ++shard.failures;
    manifest.shards[k].failures = shard.failures;
    if (shard.failures >= max_attempts) {
      shard.state = Shard::State::Failed;
      --open;
      manifest.shards[k].state = "failed";
      save_manifest(manifest_path(work).string(), manifest);
      log.write(Event("shard-failed")
                    .field("shard", k)
                    .field("attempts", shard.next_attempt)
                    .field("reason", reason));
      return;
    }
    save_manifest(manifest_path(work).string(), manifest);
    const double backoff =
        options.backoff_ms *
        static_cast<double>(1ull << (shard.failures - 1));
    log.write(Event("retry")
                  .field("shard", k)
                  .field("attempt", attempt_id)
                  .field("reason", reason)
                  .field("backoff_ms", backoff));
    trace.instant("retry shard " + std::to_string(k), static_cast<long>(k),
                  "{\"backoff_ms\":" + std::to_string(backoff) + "}");
    shard.state = Shard::State::Pending;
    shard.not_before = Clock::now() + from_ms(backoff);
  };

  // Starts one attempt (primary or hedge) for shard k, including the
  // durable spawned-counter bump that keeps resume collision-free.
  const auto spawn_attempt = [&](std::size_t k, bool hedge) -> Attempt& {
    Shard& shard = shards[k];
    Attempt attempt;
    attempt.id = shard.next_attempt++;
    attempt.hedge = hedge;
    manifest.shards[k].spawned = shard.next_attempt;
    save_manifest(manifest_path(work).string(), manifest);
    fs::remove(attempt_part_path(work, k, attempt.id), ec);
    fs::remove(heartbeat_path(work, k, attempt.id), ec);
    fs::remove(attempt_metrics_path(work, k, attempt.id), ec);
    fs::remove(attempt_series_path(work, k, attempt.id), ec);
    fs::remove(attempt_trace_path(work, k, attempt.id), ec);
    attempt.pid = spawn_process(worker_spec(options, work, k, attempt.id));
    attempt.started = Clock::now();
    attempt.started_us = TraceCollector::now_us();
    attempt.has_deadline = options.timeout_ms > 0.0;
    if (attempt.has_deadline) {
      attempt.deadline = attempt.started + from_ms(options.timeout_ms);
    }
    shard.attempts.push_back(attempt);
    shard.state = Shard::State::Running;
    return shard.attempts.back();
  };

  // Marks shard k done with attempts[winner] as the winning attempt:
  // cross-check/kill the losers, promote the winner's part file to the
  // canonical name, persist, and maybe fire the SIGKILL test hook.
  const auto finish_shard = [&](std::size_t k, std::size_t winner) {
    Shard& shard = shards[k];
    emit_attempt_span(k, shard.attempts[winner], "win");
    const Attempt win = shard.attempts[winner];
    const bool raced = shard.attempts.size() > 1;
    for (std::size_t j = 0; j < shard.attempts.size(); ++j) {
      if (j == winner) continue;
      Attempt& loser = shard.attempts[j];
      // The scan loop may already have reaped this loser (failed exit,
      // timeout, or stale heartbeat in the same pass the winner landed);
      // only wait/kill a pid that is still unreaped.
      std::optional<ExitStatus> status = loser.reaped;
      if (!status) {
        status = try_wait(loser.pid);
        if (!status) status = kill_and_reap(loser.pid);
      }
      // The loser also finished cleanly. If it produced a part that was
      // not already rejected by validation, the determinism guarantee
      // says the bytes must match the winner's — cross-check and scream
      // if they do not.
      const fs::path lp = attempt_part_path(work, k, loser.id);
      if (status->success() && !loser.part_bad && fs::exists(lp)) {
        const std::string a =
            util::read_file(attempt_part_path(work, k, win.id).string());
        const std::string b = util::read_file(lp.string());
        if (a != b) {
          shard.hedge_mismatch = true;
          log.write(Event("hedge-mismatch")
                        .field("shard", k)
                        .field("attempt_a", win.id)
                        .field("attempt_b", loser.id));
        }
      }
      emit_attempt_span(k, loser, "lost-race");
      fs::remove(attempt_part_path(work, k, loser.id), ec);
      fs::remove(heartbeat_path(work, k, loser.id), ec);
      fs::remove(attempt_metrics_path(work, k, loser.id), ec);
      fs::remove(attempt_series_path(work, k, loser.id), ec);
      fs::remove(attempt_trace_path(work, k, loser.id), ec);
    }
    // Same-directory rename: atomic promotion of the attempt's (already
    // durably written) part to the canonical name resume looks for.
    fs::rename(attempt_part_path(work, k, win.id), part_path(work, k));
    // Sidecars follow the part: the winner's metrics/trace become the
    // shard's canonical ones. A missing sidecar is tolerated here (the
    // worker may have died between writing the part and the sidecar);
    // the merge below warns instead of failing.
    if (options.metrics) {
      fs::rename(attempt_metrics_path(work, k, win.id), metrics_path(work, k),
                 ec);
      if (options.metrics_interval_ms > 0.0) {
        fs::rename(attempt_series_path(work, k, win.id), series_path(work, k),
                   ec);
      }
    }
    if (trace.on) {
      fs::rename(attempt_trace_path(work, k, win.id),
                 trace_file_path(work, k), ec);
    }
    completed_ms.push_back(ms_since(win.started));
    shard.attempts.clear();
    shard.state = Shard::State::Done;
    --open;
    manifest.shards[k].state = "done";
    save_manifest(manifest_path(work).string(), manifest);
    if (raced) {
      log.write(Event("hedge-win")
                    .field("shard", k)
                    .field("attempt", win.id)
                    .field("winner", win.hedge ? "hedge" : "primary"));
    }
    log.write(Event("shard-done")
                  .field("shard", k)
                  .field("attempts", shard.next_attempt));
    ++done_in_this_process;
    if (options.kill_after_shards > 0 &&
        done_in_this_process == options.kill_after_shards) {
      // TEST HOOK: die the hard way, mid-run, exactly like a fatal crash
      // — no unwinding, no cleanup. The event lands first because the
      // log flushes per line.
      log.write(Event("test-kill").field("after_shards",
                                         done_in_this_process));
      ::raise(SIGKILL);
    }
  };

  while (open > 0) {
    const auto now = Clock::now();
    // Spawn every eligible pending shard (the shard count is the
    // concurrency cap by construction: one worker per shard).
    for (std::size_t k = 0; k < shards.size(); ++k) {
      Shard& shard = shards[k];
      if (shard.state != Shard::State::Pending || now < shard.not_before) {
        continue;
      }
      const Attempt& attempt = spawn_attempt(k, /*hedge=*/false);
      log.write(Event("spawn")
                    .field("shard", k)
                    .field("attempt", attempt.id)
                    .field("pid", static_cast<long>(attempt.pid)));
    }

    // Reap exits, enforce deadlines and heartbeat staleness per attempt.
    for (std::size_t k = 0; k < shards.size(); ++k) {
      Shard& shard = shards[k];
      if (shard.state != Shard::State::Running) continue;
      std::size_t winner = shard.attempts.size();  // sentinel: none
      std::vector<std::size_t> dead;
      std::string dead_reason;
      std::size_t dead_attempt_id = 0;
      for (std::size_t i = 0; i < shard.attempts.size(); ++i) {
        Attempt& attempt = shard.attempts[i];
        if (const auto status = try_wait(attempt.pid)) {
          attempt.reaped = *status;
          Event exit_event = Event("exit")
                                 .field("shard", k)
                                 .field("attempt", attempt.id)
                                 .field(status->signaled ? "signal" : "code",
                                        static_cast<long>(
                                            status->signaled ? status->signal
                                                             : status->code));
          if (attempt.hedge) exit_event.field("hedge", std::size_t{1});
          log.write(std::move(exit_event));
          if (status->success()) {
            const auto bad = load_part(attempt_part_path(work, k, attempt.id),
                                       options, grid, k, shard.part);
            if (!bad) {
              winner = i;
              break;  // first valid part wins; losers handled below
            }
            attempt.part_bad = true;
            log.write(
                Event("bad-part").field("shard", k).field("reason", *bad));
            emit_attempt_span(k, attempt, "bad-part");
            dead.push_back(i);
            dead_reason = *bad;
            dead_attempt_id = attempt.id;
          } else {
            emit_attempt_span(k, attempt, "failed");
            dead.push_back(i);
            dead_reason = status->signaled
                              ? "killed by signal " +
                                    std::to_string(status->signal)
                              : "exit code " + std::to_string(status->code);
            dead_attempt_id = attempt.id;
          }
        } else if (attempt.has_deadline && Clock::now() > attempt.deadline) {
          attempt.reaped = kill_and_reap(attempt.pid);
          log.write(Event("timeout")
                        .field("shard", k)
                        .field("attempt", attempt.id)
                        .field("timeout_ms", options.timeout_ms));
          emit_attempt_span(k, attempt, "timeout");
          dead.push_back(i);
          dead_reason =
              "timeout after " + std::to_string(options.timeout_ms) + " ms";
          dead_attempt_id = attempt.id;
        } else if (options.heartbeat_timeout_ms > 0.0) {
          const double age =
              heartbeat_age_ms(heartbeat_path(work, k, attempt.id), attempt);
          if (age > options.heartbeat_timeout_ms) {
            attempt.reaped = kill_and_reap(attempt.pid);
            log.write(Event("heartbeat-stale")
                          .field("shard", k)
                          .field("attempt", attempt.id)
                          .field("age_ms", age)
                          .field("timeout_ms", options.heartbeat_timeout_ms));
            emit_attempt_span(k, attempt, "stale");
            dead.push_back(i);
            dead_reason = "heartbeat stale for " + std::to_string(age) +
                          " ms (cap " +
                          std::to_string(options.heartbeat_timeout_ms) +
                          " ms)";
            dead_attempt_id = attempt.id;
          }
        }
      }
      if (winner < shard.attempts.size()) {
        finish_shard(k, winner);
        continue;
      }
      for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
        shard.attempts.erase(shard.attempts.begin() +
                             static_cast<std::ptrdiff_t>(*it));
      }
      if (!dead.empty() && shard.attempts.empty()) {
        // The whole wave is gone: this is what consumes retry budget. A
        // failed attempt whose hedge partner is still alive costs
        // nothing — the wave is still in flight.
        handle_failure(k, dead_attempt_id, dead_reason);
      }
    }

    // Hedging: one backup attempt per wave for a shard whose single
    // attempt has outlived the straggler threshold.
    if (options.hedge_after_ms > 0.0 || options.hedge_multiplier > 0.0) {
      double threshold = options.hedge_after_ms;
      if (threshold <= 0.0 && !completed_ms.empty()) {
        threshold = options.hedge_multiplier * median_of(completed_ms);
      }
      if (threshold > 0.0) {
        for (std::size_t k = 0; k < shards.size(); ++k) {
          Shard& shard = shards[k];
          if (shard.state != Shard::State::Running || shard.hedged ||
              shard.attempts.size() != 1) {
            continue;
          }
          const double age = ms_since(shard.attempts[0].started);
          if (age < threshold) continue;
          shard.hedged = true;
          const Attempt& hedge = spawn_attempt(k, /*hedge=*/true);
          log.write(Event("hedge-spawn")
                        .field("shard", k)
                        .field("attempt", hedge.id)
                        .field("pid", static_cast<long>(hedge.pid))
                        .field("age_ms", age)
                        .field("threshold_ms", threshold));
          trace.instant("hedge-spawn shard " + std::to_string(k),
                        static_cast<long>(k),
                        "{\"age_ms\":" + std::to_string(age) + "}");
        }
      }
    }
    if (open > 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Result result;
  result.shards.reserve(shards.size());
  bool all_ok = true;
  for (std::size_t k = 0; k < shards.size(); ++k) {
    ShardOutcome outcome;
    outcome.shard = k;
    outcome.ok = shards[k].state == Shard::State::Done;
    outcome.attempts = shards[k].next_attempt;
    outcome.failures = shards[k].failures;
    outcome.resumed = shards[k].resumed;
    outcome.hedge_mismatch = shards[k].hedge_mismatch;
    outcome.failure = outcome.ok ? "" : shards[k].last_failure;
    all_ok = all_ok && outcome.ok;
    if (outcome.hedge_mismatch) ++result.hedge_mismatches;
    result.shards.push_back(std::move(outcome));
  }

  if (all_ok) {
    const auto t_merge = Clock::now();
    std::vector<driver::BatchReport> parts;
    parts.reserve(shards.size());
    for (auto& shard : shards) parts.push_back(std::move(*shard.part));
    const auto merged = driver::merge_shards(parts);
    result.merged =
        driver::report_to_string(merged, /*include_timing=*/false);
    log.write(Event("merge")
                  .field("shards", shards.size())
                  .field("cells", merged.cells.size())
                  .field("wall_ms", ms_since(t_merge)));
    result.ok = true;
  }

  // Cross-process metrics roll-up: parse every shard's canonical sidecar
  // (the winner's, promoted in finish_shard; a resumed shard's survives
  // from the dead run) and emit one merged "metrics" event. A missing or
  // unparseable sidecar degrades to a warn — observability must never
  // fail a run that computed correctly.
  if (options.metrics) {
    std::vector<obs::Snapshot> snapshots;
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const fs::path mp = metrics_path(work, k);
      if (!fs::exists(mp)) {
        log.write(Event("warn").field(
            "message", "missing metrics sidecar " + mp.string()));
        continue;
      }
      try {
        snapshots.push_back(obs::parse_snapshot(util::read_file(mp.string())));
      } catch (const std::exception& err) {
        log.write(Event("warn").field(
            "message",
            "unreadable metrics sidecar " + mp.string() + ": " + err.what()));
      }
    }
    const obs::Snapshot merged_metrics = obs::merge_snapshots(snapshots);
    Event metrics_event("metrics");
    metrics_event.field("shards_reporting", snapshots.size());
    for (const auto& [name, value] : merged_metrics.counters) {
      metrics_event.field(name, value);
    }
    for (const auto& [name, value] : merged_metrics.gauges) {
      metrics_event.field(name, static_cast<long>(value));
    }
    for (const auto& [name, hist] : merged_metrics.histograms) {
      metrics_event.field(name + ".count", hist.count);
      metrics_event.field(name + ".sum", hist.sum);
    }
    log.write(std::move(metrics_event));

    // Time-series roll-up: the winners' delta streams (one per shard,
    // each self-stamped with pid/seq/t_us) concatenate and sort onto one
    // wall-clock timeline — no resampling, no alignment guesswork. The
    // merged stream lands next to the manifest so a monitoring pipeline
    // can pick up one file per run. Same degradation contract as above.
    if (options.metrics_interval_ms > 0.0) {
      std::vector<obs::DeltaTick> merged_series;
      std::size_t series_reporting = 0;
      for (std::size_t k = 0; k < shards.size(); ++k) {
        const fs::path sp = series_path(work, k);
        if (!fs::exists(sp)) {
          log.write(Event("warn").field(
              "message", "missing metrics series sidecar " + sp.string()));
          continue;
        }
        try {
          const auto ticks =
              obs::parse_time_series(util::read_file(sp.string()));
          merged_series.insert(merged_series.end(), ticks.begin(),
                               ticks.end());
          ++series_reporting;
        } catch (const std::exception& err) {
          log.write(Event("warn").field(
              "message", "unreadable metrics series sidecar " + sp.string() +
                             ": " + err.what()));
        }
      }
      merged_series = obs::merge_time_series({std::move(merged_series)});
      const fs::path merged_path = work / "metrics.series.json";
      try {
        util::write_file_durable(merged_path.string(),
                                 obs::time_series_to_json(merged_series));
        log.write(Event("metrics-series")
                      .field("path", merged_path.string())
                      .field("shards_reporting", series_reporting)
                      .field("ticks", merged_series.size()));
      } catch (const std::exception& err) {
        log.write(Event("warn").field(
            "message",
            "metrics series write failed: " + std::string(err.what())));
      }
    }
  }

  // Stitch the merged timeline: supervisor lifecycle events plus every
  // shard's canonical worker trace, all on the shared wall-clock epoch.
  // Written on failed runs too — a trace is most useful as evidence.
  if (trace.on) {
    std::vector<std::string> stitched = trace.events;
    for (std::size_t k = 0; k < shards.size(); ++k) {
      const fs::path tp = trace_file_path(work, k);
      if (!fs::exists(tp)) continue;  // failed shard: worker never flushed
      try {
        const auto worker_events = obs::read_trace_events(tp.string());
        stitched.insert(stitched.end(), worker_events.begin(),
                        worker_events.end());
      } catch (const std::exception& err) {
        log.write(Event("warn").field(
            "message",
            "unreadable worker trace " + tp.string() + ": " + err.what()));
      }
    }
    try {
      obs::write_trace_file(options.trace, stitched);
      log.write(Event("trace")
                    .field("path", options.trace)
                    .field("events", stitched.size()));
    } catch (const std::exception& err) {
      log.write(Event("warn").field(
          "message", "trace write failed: " + std::string(err.what())));
    }
  }

  if (result.ok && !options.keep_parts) {
    for (std::size_t k = 0; k < shards.size(); ++k) {
      fs::remove(part_path(work, k), ec);
      fs::remove(metrics_path(work, k), ec);
      fs::remove(series_path(work, k), ec);
      fs::remove(trace_file_path(work, k), ec);
      for (std::size_t a = 0; a < shards[k].next_attempt; ++a) {
        fs::remove(attempt_part_path(work, k, a), ec);
        fs::remove(log_path(work, k, a), ec);
        fs::remove(heartbeat_path(work, k, a), ec);
        fs::remove(attempt_metrics_path(work, k, a), ec);
        fs::remove(attempt_series_path(work, k, a), ec);
        fs::remove(attempt_trace_path(work, k, a), ec);
      }
    }
  }
  // On failure, part files and worker logs are always kept as evidence;
  // the manifest is kept in both cases (it records the final states and
  // is what a later --resume reads).

  result.wall_ms = ms_since(t_start);
  log.write(Event(result.ok ? "done" : "failed")
                .field("wall_ms", result.wall_ms));
  return result;
}

}  // namespace manytiers::orchestrator
