#include "orchestrator/manifest.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/file.hpp"

namespace manytiers::orchestrator {

namespace {

constexpr std::string_view kLinePrefix = "ORCH_MANIFEST ";

// Same minimal field scanning as the BATCH_JSON reader: the writer never
// emits escaped quotes or nested objects, so plain scanning is exact.

std::string_view field_token(std::string_view line, std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) {
    throw std::invalid_argument("manifest: missing field \"" +
                                std::string(key) + "\" in line: " +
                                std::string(line.substr(0, 80)));
  }
  return line.substr(at + needle.size());
}

std::string parse_string(std::string_view line, std::string_view key) {
  std::string_view rest = field_token(line, key);
  if (rest.empty() || rest.front() != '"') {
    throw std::invalid_argument("manifest: field \"" + std::string(key) +
                                "\" is not a string");
  }
  rest.remove_prefix(1);
  const std::size_t end = rest.find('"');
  if (end == std::string_view::npos) {
    throw std::invalid_argument("manifest: unterminated string field");
  }
  return std::string(rest.substr(0, end));
}

std::size_t parse_size(std::string_view line, std::string_view key) {
  const std::string token(field_token(line, key));
  // A garbled counter must fail loudly like every other manifest defect:
  // silently reading 0 here would e.g. reset the spawned counter resume
  // uses to keep attempt paths collision-free. Require the field to open
  // with a digit (strtoull would skip whitespace and accept signs) and to
  // parse without overflow.
  if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0]))) {
    throw std::invalid_argument("manifest: field \"" + std::string(key) +
                                "\" is not a number");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || errno == ERANGE) {
    throw std::invalid_argument("manifest: field \"" + std::string(key) +
                                "\" is not a valid number: " + token);
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

std::string manifest_to_string(const Manifest& manifest) {
  std::string out;
  out += kLinePrefix;
  out += "{\"type\":\"run\",\"grid\":\"" + manifest.grid +
         "\",\"signature\":\"" + manifest.signature +
         "\",\"workers\":" + std::to_string(manifest.workers) + "}\n";
  for (std::size_t k = 0; k < manifest.shards.size(); ++k) {
    const ShardManifest& shard = manifest.shards[k];
    out += kLinePrefix;
    out += "{\"type\":\"shard\",\"shard\":" + std::to_string(k) +
           ",\"state\":\"" + shard.state +
           "\",\"spawned\":" + std::to_string(shard.spawned) +
           ",\"failures\":" + std::to_string(shard.failures) + "}\n";
  }
  return out;
}

Manifest parse_manifest(std::string_view text) {
  Manifest manifest;
  bool saw_run = false;
  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(kLinePrefix, 0) != 0) continue;
    const std::string_view body =
        std::string_view(line).substr(kLinePrefix.size());
    const std::string type = parse_string(body, "type");
    if (type == "run") {
      if (saw_run) {
        throw std::invalid_argument("manifest: duplicate run record");
      }
      saw_run = true;
      manifest.grid = parse_string(body, "grid");
      manifest.signature = parse_string(body, "signature");
      manifest.workers = parse_size(body, "workers");
    } else if (type == "shard") {
      if (!saw_run) {
        throw std::invalid_argument(
            "manifest: shard record before run record");
      }
      const std::size_t index = parse_size(body, "shard");
      if (index != manifest.shards.size()) {
        throw std::invalid_argument(
            "manifest: shard records out of order (got " +
            std::to_string(index) + ", expected " +
            std::to_string(manifest.shards.size()) + ")");
      }
      ShardManifest shard;
      shard.state = parse_string(body, "state");
      if (shard.state != "open" && shard.state != "done" &&
          shard.state != "failed") {
        throw std::invalid_argument("manifest: unknown shard state \"" +
                                    shard.state + "\"");
      }
      shard.spawned = parse_size(body, "spawned");
      shard.failures = parse_size(body, "failures");
      manifest.shards.push_back(std::move(shard));
    } else {
      throw std::invalid_argument("manifest: unknown record type \"" + type +
                                  "\"");
    }
  }
  if (!saw_run) {
    throw std::invalid_argument("manifest: no run record found");
  }
  if (manifest.shards.size() != manifest.workers) {
    throw std::invalid_argument(
        "manifest: run declares " + std::to_string(manifest.workers) +
        " workers but carries " + std::to_string(manifest.shards.size()) +
        " shard records");
  }
  return manifest;
}

void save_manifest(const std::string& path, const Manifest& manifest) {
  util::write_file_durable(path, manifest_to_string(manifest));
}

Manifest load_manifest(const std::string& path) {
  return parse_manifest(util::read_file(path));
}

}  // namespace manytiers::orchestrator
