#include <stdexcept>

#include "cost/cost.hpp"
#include "util/stats.hpp"

namespace manytiers::cost {

namespace {

// Linear function of distance (paper §3.3): c_i = gamma * d_i + beta with
// beta = theta * max_j(gamma * d_j), i.e. relative cost f_i = d_i +
// theta * max_j d_j. Low theta means distance dominates total cost.
class LinearCost final : public CostModel {
 public:
  explicit LinearCost(double theta) : theta_(theta) {
    if (theta < 0.0) {
      throw std::invalid_argument("linear cost: theta must be >= 0");
    }
  }

  std::string_view name() const override { return "linear"; }

  std::vector<double> relative_costs(
      const workload::FlowSet& flows) const override {
    if (flows.empty()) {
      throw std::invalid_argument("linear cost: empty flow set");
    }
    const auto d = flows.distances();
    const double base = theta_ * util::max_value(d);
    std::vector<double> out(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      out[i] = d[i] + base;
      if (!(out[i] > 0.0)) {
        throw std::domain_error(
            "linear cost: zero relative cost (zero distance with theta = 0)");
      }
    }
    return out;
  }

 private:
  double theta_;
};

}  // namespace

std::unique_ptr<CostModel> make_linear_cost(double theta) {
  return std::make_unique<LinearCost>(theta);
}

}  // namespace manytiers::cost
