#include <stdexcept>

#include "cost/cost.hpp"

namespace manytiers::cost {

namespace {

// Function of destination type (paper §3.3): "on-net" traffic (to the
// ISP's own customers) costs the ISP half of "off-net" traffic (to peers),
// because customer-to-customer traffic is paid for twice. theta is the
// fraction of traffic at each distance destined to customers, so each flow
// is split into an on-net sub-flow (theta * q, relative cost d) and an
// off-net sub-flow ((1 - theta) * q, relative cost 2d).
class DestTypeCost final : public CostModel {
 public:
  explicit DestTypeCost(double theta) : theta_(theta) {
    if (!(theta > 0.0 && theta < 1.0)) {
      throw std::invalid_argument("dest-type cost: theta must be in (0, 1)");
    }
  }

  std::string_view name() const override { return "dest-type"; }

  workload::FlowSet expand(const workload::FlowSet& flows) const override {
    if (flows.empty()) {
      throw std::invalid_argument("dest-type cost: empty flow set");
    }
    workload::FlowSet out(flows.name() + " (on/off-net split)");
    for (const auto& f : flows) {
      workload::Flow on = f;
      on.demand_mbps = f.demand_mbps * theta_;
      on.dest_type = workload::DestType::OnNet;
      out.add(on);
      workload::Flow off = f;
      off.demand_mbps = f.demand_mbps * (1.0 - theta_);
      off.dest_type = workload::DestType::OffNet;
      out.add(off);
    }
    return out;
  }

  std::vector<double> relative_costs(
      const workload::FlowSet& flows) const override {
    if (flows.empty()) {
      throw std::invalid_argument("dest-type cost: empty flow set");
    }
    // Two cost levels only (paper §3.3): traffic between two customers is
    // paid for twice, so the ISP's net cost for on-net traffic is half
    // that of off-net traffic, independent of distance.
    std::vector<double> out;
    out.reserve(flows.size());
    for (const auto& f : flows) {
      out.push_back(f.dest_type == workload::DestType::OnNet ? 1.0 : 2.0);
    }
    return out;
  }

  int cost_classes() const override { return 2; }

  std::vector<std::size_t> class_of_flows(
      const workload::FlowSet& flows) const override {
    std::vector<std::size_t> out;
    out.reserve(flows.size());
    for (const auto& f : flows) out.push_back(std::size_t(f.dest_type));
    return out;
  }

 private:
  double theta_;
};

}  // namespace

std::unique_ptr<CostModel> make_dest_type_cost(double theta) {
  return std::make_unique<DestTypeCost>(theta);
}

}  // namespace manytiers::cost
