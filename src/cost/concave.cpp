#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cost/cost.hpp"
#include "util/stats.hpp"

namespace manytiers::cost {

namespace {

// Concave function of distance (paper §3.3, Fig. 6): the paper fits
// normalized leased-line price as y = a * log_b(x) + c with x = d/d_max.
// Relative cost f_i = max(a * log_b(d_i/d_max) + c, floor) + theta * max f.
class ConcaveCost final : public CostModel {
 public:
  ConcaveCost(double theta, const ConcaveParams& params)
      : theta_(theta), params_(params) {
    if (theta < 0.0) {
      throw std::invalid_argument("concave cost: theta must be >= 0");
    }
    if (!(params.a > 0.0) || !(params.b > 1.0)) {
      throw std::invalid_argument("concave cost: need a > 0 and b > 1");
    }
    if (!(params.floor > 0.0)) {
      throw std::invalid_argument("concave cost: floor must be > 0");
    }
  }

  std::string_view name() const override { return "concave"; }

  std::vector<double> relative_costs(
      const workload::FlowSet& flows) const override {
    if (flows.empty()) {
      throw std::invalid_argument("concave cost: empty flow set");
    }
    const auto d = flows.distances();
    const double dmax = util::max_value(d);
    if (!(dmax > 0.0)) {
      throw std::domain_error("concave cost: all distances are zero");
    }
    const double log_b = std::log(params_.b);
    std::vector<double> out(d.size());
    double fmax = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double x = std::max(d[i] / dmax, 1e-9);
      const double f = params_.a * std::log(x) / log_b + params_.c;
      out[i] = std::max(f, params_.floor);
      fmax = std::max(fmax, out[i]);
    }
    const double base = theta_ * fmax;
    for (auto& f : out) f += base;
    return out;
  }

 private:
  double theta_;
  ConcaveParams params_;
};

}  // namespace

std::unique_ptr<CostModel> make_concave_cost(double theta,
                                             const ConcaveParams& params) {
  return std::make_unique<ConcaveCost>(theta, params);
}

}  // namespace manytiers::cost
