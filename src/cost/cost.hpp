// Cost models (paper §3.3).
//
// Each model maps a flow set to *relative* unit costs f_i > 0 (only
// ratios matter); the calibration step later finds the scale gamma that
// reconciles them with the blended price, giving c_i = gamma * f_i. The
// base-cost offset beta = theta * max_j(gamma * f_raw_j) is folded into
// the relative costs here (f_i = f_raw_i + theta * max f_raw), so gamma
// remains the single free scale.
//
// The destination-type model additionally *expands* the flow set: the
// paper treats a fraction theta of each flow's traffic as "on-net"
// (destined to the ISP's customers) at base cost and the rest as
// "off-net" at twice the cost, so each flow splits into two class-labeled
// sub-flows.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "workload/flowset.hpp"

namespace manytiers::cost {

class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual std::string_view name() const = 0;

  // Some models (destination-type) split flows into sub-flows; the default
  // is the identity. Relative costs are always computed on the expanded
  // set, and bundling/pricing run on the expanded set too.
  virtual workload::FlowSet expand(const workload::FlowSet& flows) const;

  // Relative unit costs f_i > 0, one per flow of the (expanded) set.
  virtual std::vector<double> relative_costs(
      const workload::FlowSet& flows) const = 0;

  // Number of intrinsic cost classes, if the model has discrete classes
  // (regional -> 3, destination-type -> 2); 0 means continuous.
  virtual int cost_classes() const { return 0; }

  // Class id of each flow of the (expanded) set, for class-aware bundling.
  // Defaults to a single class; models with discrete classes override.
  virtual std::vector<std::size_t> class_of_flows(
      const workload::FlowSet& flows) const;
};

// c ~ gamma * (d + theta * d_max): cost linear in distance with a base
// cost that is a fraction theta of the largest distance cost.
std::unique_ptr<CostModel> make_linear_cost(double theta);

struct ConcaveParams {
  double a = 0.5;  // the paper's pooled ITU/NTT fit: a ~ 0.5, b ~ 6, c ~ 1
  double b = 6.0;
  double c = 1.0;
  // Relative cost floor: a*log_b(x)+c goes negative for very small
  // normalized distances; clamp keeps costs positive (documented
  // substitution for the paper's unstated handling).
  double floor = 0.05;
};

// c ~ gamma * (a * log_b(d / d_max) + c0 + base): concave in distance.
std::unique_ptr<CostModel> make_concave_cost(double theta,
                                             const ConcaveParams& params = {});

// c_metro ~ gamma, c_national ~ gamma * 2^theta, c_international ~
// gamma * 3^theta, using each flow's region label.
std::unique_ptr<CostModel> make_regional_cost(double theta);

// On-net traffic at gamma * d, off-net at 2 * gamma * d; theta is the
// fraction of every flow's demand that is on-net. Expands each flow into
// two class-labeled sub-flows.
std::unique_ptr<CostModel> make_dest_type_cost(double theta);

}  // namespace manytiers::cost
