#include "cost/cost.hpp"

namespace manytiers::cost {

workload::FlowSet CostModel::expand(const workload::FlowSet& flows) const {
  return flows;
}

std::vector<std::size_t> CostModel::class_of_flows(
    const workload::FlowSet& flows) const {
  return std::vector<std::size_t>(flows.size(), 0);
}

}  // namespace manytiers::cost
