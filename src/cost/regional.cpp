#include <cmath>
#include <stdexcept>

#include "cost/cost.hpp"

namespace manytiers::cost {

namespace {

// Function of destination region (paper §3.3): metro capacity is cheapest,
// then national, then international: c_metro = gamma, c_national =
// gamma * 2^theta, c_international = gamma * 3^theta. theta = 0 removes
// the regional differences; theta = 1 makes them linear (1, 2, 3); theta >
// 1 separates them by magnitudes.
class RegionalCost final : public CostModel {
 public:
  explicit RegionalCost(double theta) : theta_(theta) {
    if (theta < 0.0) {
      throw std::invalid_argument("regional cost: theta must be >= 0");
    }
  }

  std::string_view name() const override { return "regional"; }

  std::vector<double> relative_costs(
      const workload::FlowSet& flows) const override {
    if (flows.empty()) {
      throw std::invalid_argument("regional cost: empty flow set");
    }
    std::vector<double> out;
    out.reserve(flows.size());
    for (const auto& f : flows) {
      switch (f.region) {
        case geo::Region::Metro: out.push_back(1.0); break;
        case geo::Region::National: out.push_back(std::pow(2.0, theta_)); break;
        case geo::Region::International:
          out.push_back(std::pow(3.0, theta_));
          break;
      }
    }
    return out;
  }

  int cost_classes() const override { return 3; }

  std::vector<std::size_t> class_of_flows(
      const workload::FlowSet& flows) const override {
    std::vector<std::size_t> out;
    out.reserve(flows.size());
    for (const auto& f : flows) out.push_back(std::size_t(f.region));
    return out;
  }

 private:
  double theta_;
};

}  // namespace

std::unique_ptr<CostModel> make_regional_cost(double theta) {
  return std::make_unique<RegionalCost>(theta);
}

}  // namespace manytiers::cost
