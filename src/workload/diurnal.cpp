#include "workload/diurnal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace manytiers::workload {

namespace {
void validate(const DiurnalProfile& p) {
  if (!(p.mean_mbps > 0.0)) {
    throw std::invalid_argument("diurnal: mean rate must be > 0");
  }
  if (!(p.peak_to_trough >= 1.0)) {
    throw std::invalid_argument("diurnal: peak/trough ratio must be >= 1");
  }
  if (p.peak_hour < 0.0 || p.peak_hour >= 24.0) {
    throw std::invalid_argument("diurnal: peak hour must be in [0, 24)");
  }
  if (p.noise_sd < 0.0) {
    throw std::invalid_argument("diurnal: noise sd must be >= 0");
  }
}
}  // namespace

double diurnal_rate_mbps(const DiurnalProfile& profile,
                         std::uint32_t second_of_day) {
  validate(profile);
  if (second_of_day >= 86400) {
    throw std::invalid_argument("diurnal: second of day out of range");
  }
  // mean * (1 + a cos(phase)) with a = (r - 1)/(r + 1) puts max/min at
  // mean(1 +/- a), whose ratio is exactly peak_to_trough.
  const double amplitude =
      (profile.peak_to_trough - 1.0) / (profile.peak_to_trough + 1.0);
  const double hour = double(second_of_day) / 3600.0;
  const double phase =
      2.0 * std::numbers::pi * (hour - profile.peak_hour) / 24.0;
  return profile.mean_mbps * (1.0 + amplitude * std::cos(phase));
}

std::vector<std::uint64_t> diurnal_interval_bytes(
    const DiurnalProfile& profile, int days, std::uint32_t interval_seconds,
    util::Rng& rng) {
  validate(profile);
  if (days < 1) throw std::invalid_argument("diurnal: days must be >= 1");
  if (interval_seconds == 0 || interval_seconds > 86400) {
    throw std::invalid_argument("diurnal: interval must be in [1s, 1 day]");
  }
  const std::uint32_t per_day = 86400 / interval_seconds;
  std::vector<std::uint64_t> out;
  out.reserve(std::size_t(days) * per_day);
  for (int day = 0; day < days; ++day) {
    for (std::uint32_t k = 0; k < per_day; ++k) {
      const std::uint32_t mid = k * interval_seconds + interval_seconds / 2;
      double mbps = diurnal_rate_mbps(profile, mid);
      if (profile.noise_sd > 0.0) {
        mbps *= std::exp(rng.normal(0.0, profile.noise_sd));
      }
      out.push_back(
          std::uint64_t(mbps * 1e6 / 8.0 * double(interval_seconds)));
    }
  }
  return out;
}

}  // namespace manytiers::workload
