// FlowSet CSV import/export.
//
// Lets operators run the counterfactual engine on their own traffic
// matrices. The format is one header line followed by one row per flow:
//
//   demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip
//   900.5,12.0,metro,on-net,10.0.0.1,100.1.2.3
//
// region is metro|national|international; dest_type is on-net|off-net;
// the IP columns are optional (empty fields allowed).
#pragma once

#include <iosfwd>
#include <string>

#include "workload/flowset.hpp"

namespace manytiers::workload {

// Serialize a flow set (header + rows).
void write_csv(std::ostream& os, const FlowSet& flows);
std::string to_csv(const FlowSet& flows);

// Parse a flow set; throws std::invalid_argument with a line number on
// malformed input. The header line is required and validated.
FlowSet read_csv(std::istream& is, std::string name = "csv");
FlowSet from_csv(const std::string& text, std::string name = "csv");

}  // namespace manytiers::workload
