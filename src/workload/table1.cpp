#include "workload/table1.hpp"

#include <ostream>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace manytiers::workload {

DatasetStats compute_stats(const FlowSet& flows) {
  if (flows.empty()) {
    throw std::invalid_argument("compute_stats: empty flow set");
  }
  DatasetStats s;
  s.name = flows.name();
  s.flow_count = flows.size();
  s.wavg_distance_miles = flows.weighted_avg_distance();
  const auto d = flows.distances();
  const auto q = flows.demands();
  s.cv_distance = util::coefficient_of_variation(d);
  s.aggregate_gbps = flows.total_demand_gbps();
  s.cv_demand = util::coefficient_of_variation(q);
  return s;
}

void print_table1(std::ostream& os, std::span<const DatasetStats> measured) {
  util::TextTable table({"Data set", "Flows", "w-avg dist (mi)", "CV dist",
                         "Aggregate (Gbps)", "CV demand"});
  for (const auto& s : measured) {
    table.add_row({s.name, std::to_string(s.flow_count),
                   util::format_double(s.wavg_distance_miles, 1),
                   util::format_double(s.cv_distance, 2),
                   util::format_double(s.aggregate_gbps, 1),
                   util::format_double(s.cv_demand, 2)});
  }
  table.print(os);
}

}  // namespace manytiers::workload
