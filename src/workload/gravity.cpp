#include "workload/gravity.hpp"

#include <cmath>
#include <stdexcept>

#include "topology/dijkstra.hpp"

namespace manytiers::workload {

std::vector<topology::TrafficDemand> gravity_matrix(
    const topology::Network& net, std::span<const double> masses,
    const GravityOptions& options) {
  if (masses.size() != net.pop_count()) {
    throw std::invalid_argument("gravity_matrix: one mass per PoP required");
  }
  for (const double m : masses) {
    if (!(m > 0.0)) {
      throw std::invalid_argument("gravity_matrix: masses must be > 0");
    }
  }
  if (!(options.total_demand_mbps > 0.0)) {
    throw std::invalid_argument("gravity_matrix: total demand must be > 0");
  }
  if (options.distance_exponent < 0.0 ||
      !(options.distance_floor_miles > 0.0)) {
    throw std::invalid_argument("gravity_matrix: bad distance parameters");
  }
  const auto dist = topology::all_pairs_distances(net);
  std::vector<topology::TrafficDemand> out;
  double total = 0.0;
  for (topology::PopId i = 0; i < net.pop_count(); ++i) {
    for (topology::PopId j = 0; j < net.pop_count(); ++j) {
      if (i == j && !options.include_self_pairs) continue;
      if (dist(i, j) == topology::kUnreachable) continue;
      const double d =
          std::max(dist(i, j), options.distance_floor_miles);
      topology::TrafficDemand demand;
      demand.src = i;
      demand.dst = j;
      demand.mbps =
          masses[i] * masses[j] / std::pow(d, options.distance_exponent);
      total += demand.mbps;
      out.push_back(demand);
    }
  }
  if (out.empty()) {
    throw std::invalid_argument(
        "gravity_matrix: no routable PoP pairs in the topology");
  }
  const double scale = options.total_demand_mbps / total;
  for (auto& d : out) d.mbps *= scale;
  return out;
}

}  // namespace manytiers::workload
