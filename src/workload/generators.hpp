// Synthetic dataset generators standing in for the paper's three networks.
//
// The paper drives its model with 24-hour NetFlow captures from an EU
// transit ISP, a global CDN, and Internet2. Those traces are proprietary,
// so we synthesize datasets with the same *structure* (geographic
// endpoints, regional mix, routing) and then calibrate them to the four
// Table 1 moments the analysis actually depends on: demand-weighted mean
// flow distance, CV of flow distance, aggregate traffic, and CV of flow
// demand. Calibration uses rank-preserving transforms (power + scale), so
// the geography still determines which flows are short or long.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "topology/dijkstra.hpp"
#include "util/rng.hpp"
#include "workload/flowset.hpp"

namespace manytiers::workload {

enum class DatasetKind { EuIsp, Cdn, Internet2 };

std::string_view to_string(DatasetKind kind);

// The paper's Table 1 target moments.
struct DatasetSpec {
  std::string_view name;
  double wavg_distance_miles = 0.0;
  double cv_distance = 0.0;
  double aggregate_gbps = 0.0;
  double cv_demand = 0.0;
};

DatasetSpec paper_spec(DatasetKind kind);

struct GeneratorOptions {
  std::uint64_t seed = 42;
  std::size_t n_flows = 400;
  // When true (default), calibrate distances and demands to the paper's
  // Table 1 moments; when false, return the raw geographic dataset.
  bool calibrate_moments = true;
  // Rank correlation between demand and distance, in [-1, 1]. Transit
  // traffic is demand-heavy on short paths (popular content is replicated
  // close to users; an ISP's largest customers are local), which is also
  // what makes the paper's demand/profit-weighted heuristics competitive
  // with cost-aware ones. -0.8 reproduces that structure; 0 disables it.
  double demand_distance_correlation = -0.8;
};

// The monotone transform calibrate_to_spec applied to one column:
// calibrated = scale * raw^power, with the power step skipped when the
// fit degenerated (fewer than 2 values, or zero spread). apply() replays
// the exact operations (pow then multiply) in the original order, so
// feeding back a raw value the calibration saw reproduces the calibrated
// value bit-for-bit — the anchor of the dynamic-network re-cost path,
// which freezes the epoch-0 transform and pushes updated raw distances
// through it.
struct ColumnTransform {
  std::optional<double> power;  // nullopt: power step was skipped
  double scale = 1.0;

  double apply(double raw) const {
    const double shaped = power ? std::pow(raw, *power) : raw;
    return shaped * scale;
  }
};

// What calibrate_to_spec did to each column, for callers that need to
// replay it on new values (demands are never replayed today; distances
// are, by the netdyn re-cost pass).
struct MomentCalibration {
  ColumnTransform demand;
  ColumnTransform distance;
};

// Topology binding of a network-backed dataset: the PoP pair each flow
// rides, captured at generation time together with the frozen distance
// transform. generate_internet2 fills one when asked; the netdyn layer
// uses it to re-cost exactly the flows whose pair distances changed.
struct TopologyBinding {
  std::vector<std::pair<topology::PopId, topology::PopId>> pairs;
  ColumnTransform distance;
  // Raw shortest-path distance substituted for a pair the (changed)
  // network can no longer route — 4x the largest raw distance any flow
  // saw at generation, i.e. "worse than every real route" but finite so
  // the pricing stack keeps accepting the flow.
  double unreachable_raw_miles = 0.0;
};

// European transit ISP: endpoints drawn from European cities with a strong
// same-country bias plus intra-metro flows; distance is the great-circle
// entry-to-exit distance; regions classified by distance thresholds.
FlowSet generate_eu_isp(const GeneratorOptions& options = {});

// Global CDN: sources are CDN PoP cities, destinations are GeoIP-resolved
// client addresses worldwide with Zipf popularity; distance is the
// GeoIP-estimated source-to-destination distance.
FlowSet generate_cdn(const GeneratorOptions& options = {});

// Internet2: endpoints attached to the 11 Abilene PoPs; distance is the
// sum of link lengths along the shortest backbone path. The two-argument
// form generates over an arbitrary backbone (with its distance matrix)
// and optionally captures the topology binding; the flows it returns for
// (internet2_network(), binding) are byte-identical to the one-argument
// form's.
FlowSet generate_internet2(const GeneratorOptions& options = {});
FlowSet generate_internet2(const GeneratorOptions& options,
                           const topology::Network& net,
                           const topology::DistanceMatrix& dist,
                           TopologyBinding* binding);

FlowSet generate_dataset(DatasetKind kind, const GeneratorOptions& options = {});

// Calibrate a flow set's distances to (wavg, cv) targets via a monotone
// power + scale transform, and its demands to (aggregate, cv) via the
// heavy-tailed resampler's power + scale. Exposed for tests and for users
// who bring their own structural datasets. Returns the transforms it
// applied (ignorable).
MomentCalibration calibrate_to_spec(FlowSet& flows, const DatasetSpec& spec);

// Reassign the existing demand values across flows so that the rank
// correlation between demand and distance approaches `rho` (a Gaussian-
// copula-style coupling with noise). Marginal distributions are
// untouched — only the pairing changes.
void impose_demand_distance_correlation(FlowSet& flows, double rho,
                                        util::Rng& rng);

}  // namespace manytiers::workload
