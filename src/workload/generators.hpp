// Synthetic dataset generators standing in for the paper's three networks.
//
// The paper drives its model with 24-hour NetFlow captures from an EU
// transit ISP, a global CDN, and Internet2. Those traces are proprietary,
// so we synthesize datasets with the same *structure* (geographic
// endpoints, regional mix, routing) and then calibrate them to the four
// Table 1 moments the analysis actually depends on: demand-weighted mean
// flow distance, CV of flow distance, aggregate traffic, and CV of flow
// demand. Calibration uses rank-preserving transforms (power + scale), so
// the geography still determines which flows are short or long.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.hpp"
#include "workload/flowset.hpp"

namespace manytiers::workload {

enum class DatasetKind { EuIsp, Cdn, Internet2 };

std::string_view to_string(DatasetKind kind);

// The paper's Table 1 target moments.
struct DatasetSpec {
  std::string_view name;
  double wavg_distance_miles = 0.0;
  double cv_distance = 0.0;
  double aggregate_gbps = 0.0;
  double cv_demand = 0.0;
};

DatasetSpec paper_spec(DatasetKind kind);

struct GeneratorOptions {
  std::uint64_t seed = 42;
  std::size_t n_flows = 400;
  // When true (default), calibrate distances and demands to the paper's
  // Table 1 moments; when false, return the raw geographic dataset.
  bool calibrate_moments = true;
  // Rank correlation between demand and distance, in [-1, 1]. Transit
  // traffic is demand-heavy on short paths (popular content is replicated
  // close to users; an ISP's largest customers are local), which is also
  // what makes the paper's demand/profit-weighted heuristics competitive
  // with cost-aware ones. -0.8 reproduces that structure; 0 disables it.
  double demand_distance_correlation = -0.8;
};

// European transit ISP: endpoints drawn from European cities with a strong
// same-country bias plus intra-metro flows; distance is the great-circle
// entry-to-exit distance; regions classified by distance thresholds.
FlowSet generate_eu_isp(const GeneratorOptions& options = {});

// Global CDN: sources are CDN PoP cities, destinations are GeoIP-resolved
// client addresses worldwide with Zipf popularity; distance is the
// GeoIP-estimated source-to-destination distance.
FlowSet generate_cdn(const GeneratorOptions& options = {});

// Internet2: endpoints attached to the 11 Abilene PoPs; distance is the
// sum of link lengths along the shortest backbone path.
FlowSet generate_internet2(const GeneratorOptions& options = {});

FlowSet generate_dataset(DatasetKind kind, const GeneratorOptions& options = {});

// Calibrate a flow set's distances to (wavg, cv) targets via a monotone
// power + scale transform, and its demands to (aggregate, cv) via the
// heavy-tailed resampler's power + scale. Exposed for tests and for users
// who bring their own structural datasets.
void calibrate_to_spec(FlowSet& flows, const DatasetSpec& spec);

// Reassign the existing demand values across flows so that the rank
// correlation between demand and distance approaches `rho` (a Gaussian-
// copula-style coupling with noise). Marginal distributions are
// untouched — only the pairing changes.
void impose_demand_distance_correlation(FlowSet& flows, double rho,
                                        util::Rng& rng);

}  // namespace manytiers::workload
