#include "workload/generators.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "geo/cities.hpp"
#include "geo/geoip.hpp"
#include "topology/dijkstra.hpp"
#include "topology/internet2.hpp"
#include "util/optimize.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace manytiers::workload {

std::string_view to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::EuIsp: return "EU ISP";
    case DatasetKind::Cdn: return "CDN";
    case DatasetKind::Internet2: return "Internet2";
  }
  throw std::invalid_argument("unknown dataset kind");
}

DatasetSpec paper_spec(DatasetKind kind) {
  // Paper Table 1 (capture dates 11/12/09 and 12/02/09).
  switch (kind) {
    case DatasetKind::EuIsp: return {"EU ISP", 54.0, 0.70, 37.0, 1.71};
    case DatasetKind::Cdn: return {"CDN", 1988.0, 0.59, 96.0, 2.28};
    case DatasetKind::Internet2: return {"Internet2", 660.0, 0.54, 4.0, 4.53};
  }
  throw std::invalid_argument("unknown dataset kind");
}

namespace {

// Find t such that the sample CV of {x^t} hits `target_cv`, then apply the
// power transform in place. Monotone in t, so bisection is robust. Returns
// the applied power, or nullopt when the step was skipped (too few values
// or degenerate spread).
std::optional<double> match_cv_by_power(std::vector<double>& xs,
                                        double target_cv) {
  if (xs.size() < 2) return std::nullopt;
  for (double x : xs) {
    if (x <= 0.0) {
      throw std::invalid_argument("match_cv_by_power: values must be > 0");
    }
  }
  const auto cv_of_power = [&xs](double t) {
    std::vector<double> ys(xs.size());
    std::transform(xs.begin(), xs.end(), ys.begin(),
                   [t](double x) { return std::pow(x, t); });
    return util::coefficient_of_variation(ys);
  };
  // Degenerate spread (all values equal) cannot be reshaped by a power.
  if (cv_of_power(1.0) < 1e-12) return std::nullopt;
  const double lo = 1e-3;
  double hi = 1.0;
  while (cv_of_power(hi) < target_cv && hi < 64.0) hi *= 2.0;
  double t = hi;
  if (cv_of_power(lo) >= target_cv) {
    t = lo;  // sample already spreads more than the target allows
  } else if (cv_of_power(hi) >= target_cv) {
    t = util::find_root(
        [&](double tt) { return cv_of_power(tt) - target_cv; }, lo, hi, 1e-10);
  }
  for (auto& x : xs) x = std::pow(x, t);
  return t;
}

// Rebuild a flow set column-by-column. FlowSet only exposes mutation via
// scaling, so calibration reconstructs the set with transformed columns.
FlowSet with_columns(const FlowSet& flows, const std::vector<double>& demands,
                     const std::vector<double>& distances) {
  FlowSet out(flows.name());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    Flow f = flows[i];
    f.demand_mbps = demands[i];
    f.distance_miles = distances[i];
    out.add(f);
  }
  return out;
}

}  // namespace

MomentCalibration calibrate_to_spec(FlowSet& flows, const DatasetSpec& spec) {
  if (flows.size() < 2) {
    throw std::invalid_argument("calibrate_to_spec: need at least 2 flows");
  }
  auto demands = flows.demands();
  auto distances = flows.distances();
  MomentCalibration cal;

  // Demands first: the distance target is demand-weighted.
  cal.demand.power = match_cv_by_power(demands, spec.cv_demand);
  const double dsum = util::sum(demands);
  const double target_sum_mbps = spec.aggregate_gbps * 1000.0;
  cal.demand.scale = target_sum_mbps / dsum;
  for (auto& q : demands) q *= cal.demand.scale;

  cal.distance.power = match_cv_by_power(distances, spec.cv_distance);
  const double wavg = util::weighted_mean(distances, demands);
  cal.distance.scale = spec.wavg_distance_miles / wavg;
  for (auto& d : distances) d *= cal.distance.scale;

  flows = with_columns(flows, demands, distances);
  return cal;
}

void impose_demand_distance_correlation(FlowSet& flows, double rho,
                                        util::Rng& rng) {
  if (rho < -1.0 || rho > 1.0) {
    throw std::invalid_argument(
        "impose_demand_distance_correlation: rho must be in [-1, 1]");
  }
  const std::size_t n = flows.size();
  if (n < 2 || rho == 0.0) return;
  // Rank the flows by distance, perturb the ranks with noise scaled by
  // sqrt(1 - rho^2), and hand the sorted demands out along the perturbed
  // order. rho > 0 pairs large demands with large distances; rho < 0
  // with small ones. Marginals are exactly preserved (pure reassignment).
  const auto distances = flows.distances();
  std::vector<std::size_t> by_distance(n);
  std::iota(by_distance.begin(), by_distance.end(), std::size_t{0});
  std::stable_sort(by_distance.begin(), by_distance.end(),
                   [&](std::size_t a, std::size_t b) {
                     return distances[a] < distances[b];
                   });
  std::vector<double> key(n);
  const double noise = std::sqrt(1.0 - rho * rho);
  for (std::size_t r = 0; r < n; ++r) {
    const double u = (double(r) + 0.5) / double(n);
    key[by_distance[r]] = rho * u + noise * rng.uniform(0.0, 1.0);
  }
  std::vector<std::size_t> by_key(n);
  std::iota(by_key.begin(), by_key.end(), std::size_t{0});
  std::stable_sort(by_key.begin(), by_key.end(),
                   [&](std::size_t a, std::size_t b) {
                     return key[a] < key[b];
                   });
  auto demands = flows.demands();
  std::sort(demands.begin(), demands.end());  // ascending
  std::vector<double> reassigned(n);
  for (std::size_t r = 0; r < n; ++r) {
    // Lowest key gets the smallest demand; with rho < 0 low keys are the
    // far flows, so near flows end up with the big demands.
    reassigned[by_key[r]] = demands[r];
  }
  flows = with_columns(flows, reassigned, distances);
}

namespace {

double raw_demand(util::Rng& rng, double cv) {
  // Raw heavy-tailed draw; exact moments are pinned by calibrate_to_spec.
  return rng.lognormal(util::lognormal_from_mean_cv(1.0, cv));
}

// Structural post-processing shared by the generators: couple demand to
// distance, then pin the Table 1 moments.
MomentCalibration finalize(FlowSet& flows, const GeneratorOptions& options,
                           const DatasetSpec& spec, util::Rng& rng) {
  impose_demand_distance_correlation(
      flows, options.demand_distance_correlation, rng);
  if (options.calibrate_moments) return calibrate_to_spec(flows, spec);
  return {};
}

}  // namespace

FlowSet generate_eu_isp(const GeneratorOptions& options) {
  if (options.n_flows < 2) {
    throw std::invalid_argument("generate_eu_isp: need at least 2 flows");
  }
  util::Rng rng(options.seed);
  const auto europe = geo::cities_in(geo::Continent::Europe);
  const auto cities = geo::world_cities();
  const DatasetSpec spec = paper_spec(DatasetKind::EuIsp);

  FlowSet flows("EU ISP");
  for (std::size_t i = 0; i < options.n_flows; ++i) {
    const std::size_t src = europe[rng.index(europe.size())];
    Flow f;
    f.src_city = src;
    const double mix = rng.uniform(0.0, 1.0);
    if (mix < 0.3) {
      // Intra-metro flow: same city, short last-mile distance. The low
      // cluster is kept well under the 10-mile metro threshold so it
      // survives the moment-calibration rescale.
      f.dst_city = src;
      f.distance_miles = rng.uniform(0.1, 3.0);
    } else if (mix < 0.70) {
      // National flow: another city in the same country if one exists.
      const auto domestic = geo::cities_in_country(cities[src].country);
      std::size_t dst = src;
      if (domestic.size() > 1) {
        do {
          dst = domestic[rng.index(domestic.size())];
        } while (dst == src);
        f.distance_miles = geo::city_distance_miles(src, dst);
      } else {
        f.distance_miles = rng.uniform(30.0, 120.0);  // no sibling city
      }
      f.dst_city = dst;
    } else {
      // International European flow.
      std::size_t dst = src;
      do {
        dst = europe[rng.index(europe.size())];
      } while (dst == src);
      f.dst_city = dst;
      f.distance_miles = geo::city_distance_miles(src, dst);
    }
    f.demand_mbps = raw_demand(rng, spec.cv_demand);
    f.dest_type = rng.bernoulli(0.3) ? DestType::OnNet : DestType::OffNet;
    f.src_ip = geo::synthetic_host(*f.src_city, std::uint32_t(2 * i));
    f.dst_ip = geo::synthetic_host(*f.dst_city, std::uint32_t(2 * i + 1));
    // The paper only has entry/exit distances for the EU ISP and falls
    // back to distance thresholds (§3.3); our synthetic flows carry city
    // identities, so we classify from geography directly.
    f.region = geo::classify_cities(src, *f.dst_city);
    flows.add(f);
  }
  finalize(flows, options, spec, rng);
  return flows;
}

FlowSet generate_cdn(const GeneratorOptions& options) {
  if (options.n_flows < 2) {
    throw std::invalid_argument("generate_cdn: need at least 2 flows");
  }
  util::Rng rng(options.seed);
  const DatasetSpec spec = paper_spec(DatasetKind::Cdn);
  // CDN PoP cities: major peering hubs on every continent.
  constexpr std::array<std::string_view, 16> kPopNames{
      "New York", "Los Angeles", "Chicago",   "Miami",     "Seattle",
      "London",   "Paris",       "Amsterdam", "Frankfurt", "Tokyo",
      "Singapore", "Hong Kong",  "Sydney",    "Sao Paulo", "Mumbai",
      "Johannesburg"};
  std::vector<std::size_t> pops;
  for (const auto name : kPopNames) {
    const auto id = geo::find_city(name);
    if (!id) throw std::logic_error("generate_cdn: missing city in database");
    pops.push_back(*id);
  }
  const auto cities = geo::world_cities();
  const geo::GeoIpDb geoip = geo::build_synthetic_geoip();

  FlowSet flows("CDN");
  for (std::size_t i = 0; i < options.n_flows; ++i) {
    // Clients concentrate on popular destinations: Zipf over cities.
    const std::size_t dst =
        std::size_t(rng.zipf(std::int64_t(cities.size()), 0.8)) - 1;
    // Serve from the nearest CDN PoP most of the time; occasionally a cache
    // miss is served from a far PoP.
    std::size_t src = pops[0];
    if (rng.bernoulli(0.15)) {
      src = pops[rng.index(pops.size())];
    } else {
      double best = std::numeric_limits<double>::infinity();
      for (const auto p : pops) {
        const double d = geo::city_distance_miles(p, dst);
        if (d < best) {
          best = d;
          src = p;
        }
      }
    }
    Flow f;
    f.src_city = src;
    f.dst_city = dst;
    f.src_ip = geo::synthetic_host(src, std::uint32_t(2 * i));
    f.dst_ip = geo::synthetic_host(dst, std::uint32_t(2 * i + 1));
    // Distance as the paper estimates it for the CDN: GeoIP both ends.
    const auto src_located = geoip.lookup_city(f.src_ip);
    const auto dst_located = geoip.lookup_city(f.dst_ip);
    if (!src_located || !dst_located) {
      throw std::logic_error("generate_cdn: GeoIP lookup failed");
    }
    f.distance_miles =
        std::max(0.5, geo::city_distance_miles(*src_located, *dst_located));
    f.region = geo::classify_cities(src, dst);
    f.demand_mbps = raw_demand(rng, spec.cv_demand);
    f.dest_type = rng.bernoulli(0.2) ? DestType::OnNet : DestType::OffNet;
    flows.add(f);
  }
  finalize(flows, options, spec, rng);
  return flows;
}

FlowSet generate_internet2(const GeneratorOptions& options) {
  const topology::Network net = topology::internet2_network();
  const auto dist = topology::all_pairs_distances(net);
  return generate_internet2(options, net, dist, nullptr);
}

FlowSet generate_internet2(const GeneratorOptions& options,
                           const topology::Network& net,
                           const topology::DistanceMatrix& dist,
                           TopologyBinding* binding) {
  if (options.n_flows < 2) {
    throw std::invalid_argument("generate_internet2: need at least 2 flows");
  }
  if (net.pop_count() < 2 || dist.size() != net.pop_count()) {
    throw std::invalid_argument(
        "generate_internet2: need >= 2 PoPs and a matching distance matrix");
  }
  util::Rng rng(options.seed);
  const DatasetSpec spec = paper_spec(DatasetKind::Internet2);

  FlowSet flows("Internet2");
  std::vector<std::pair<topology::PopId, topology::PopId>> pairs;
  pairs.reserve(options.n_flows);
  double max_raw = 0.0;
  for (std::size_t i = 0; i < options.n_flows; ++i) {
    const topology::PopId src = rng.index(net.pop_count());
    topology::PopId dst = src;
    while (dst == src) dst = rng.index(net.pop_count());
    if (dist(src, dst) == topology::kUnreachable) {
      throw std::invalid_argument(
          "generate_internet2: backbone must route every PoP pair at "
          "generation time");
    }
    Flow f;
    // PoP names are city names, so city metadata carries over.
    f.src_city = geo::find_city(net.pop(src).name);
    f.dst_city = geo::find_city(net.pop(dst).name);
    if (!f.src_city || !f.dst_city) {
      throw std::invalid_argument(
          "generate_internet2: PoP names must be known cities");
    }
    f.distance_miles = dist(src, dst);
    f.region = geo::classify_cities(*f.src_city, *f.dst_city);
    f.demand_mbps = raw_demand(rng, spec.cv_demand);
    f.dest_type = rng.bernoulli(0.5) ? DestType::OnNet : DestType::OffNet;
    f.src_ip = geo::synthetic_host(*f.src_city, std::uint32_t(2 * i));
    f.dst_ip = geo::synthetic_host(*f.dst_city, std::uint32_t(2 * i + 1));
    pairs.emplace_back(src, dst);
    max_raw = std::max(max_raw, dist(src, dst));
    flows.add(f);
  }
  const MomentCalibration cal = finalize(flows, options, spec, rng);
  if (binding) {
    binding->pairs = std::move(pairs);
    binding->distance = cal.distance;
    binding->unreachable_raw_miles = 4.0 * max_raw;
  }
  return flows;
}

FlowSet generate_dataset(DatasetKind kind, const GeneratorOptions& options) {
  switch (kind) {
    case DatasetKind::EuIsp: return generate_eu_isp(options);
    case DatasetKind::Cdn: return generate_cdn(options);
    case DatasetKind::Internet2: return generate_internet2(options);
  }
  throw std::invalid_argument("unknown dataset kind");
}

}  // namespace manytiers::workload
