// Diurnal traffic profiles.
//
// Transit demand swings daily (the evening peak is what 95th-percentile
// billing prices). This models a sinusoidal day shape with a configurable
// peak-to-trough ratio plus lognormal noise, and renders it as the
// per-interval byte counts a billing meter consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace manytiers::workload {

struct DiurnalProfile {
  double mean_mbps = 100.0;
  double peak_to_trough = 3.0;  // ratio of daily max to daily min (>= 1)
  double peak_hour = 20.0;      // local hour of the daily maximum [0, 24)
  double noise_sd = 0.1;        // lognormal sigma on each interval
};

// Deterministic rate (Mbps) at a given second of the day: a sinusoid with
// the profile's mean, ratio, and peak position.
double diurnal_rate_mbps(const DiurnalProfile& profile,
                         std::uint32_t second_of_day);

// Bytes transferred in each metering interval over `days` days, with
// noise; ready for accounting::BurstMeter::record_interval.
std::vector<std::uint64_t> diurnal_interval_bytes(
    const DiurnalProfile& profile, int days, std::uint32_t interval_seconds,
    util::Rng& rng);

}  // namespace manytiers::workload
