// FlowSet: the demand table every model consumes.
//
// A Flow is one (source, destination) traffic aggregate with its observed
// demand and the distance it travels in the ISP's network — the two
// quantities the paper's calibration needs (§4.1) — plus metadata used by
// the regional and destination-type cost models.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/region.hpp"

namespace manytiers::workload {

// Destination type for the paper's "on-net / off-net" cost model (§3.3):
// traffic to the ISP's own customers vs traffic handed off to peers.
enum class DestType { OnNet, OffNet };

struct Flow {
  double demand_mbps = 0.0;     // observed demand at the blended rate
  double distance_miles = 0.0;  // distance traveled in the ISP network
  geo::Region region = geo::Region::International;
  DestType dest_type = DestType::OffNet;
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::optional<std::size_t> src_city;  // indices into geo::world_cities()
  std::optional<std::size_t> dst_city;
};

class FlowSet {
 public:
  explicit FlowSet(std::string name = "flows") : name_(std::move(name)) {}

  // Flows must have positive demand and non-negative distance.
  void add(Flow flow);

  std::size_t size() const { return flows_.size(); }
  bool empty() const { return flows_.empty(); }
  const Flow& operator[](std::size_t i) const { return flows_[i]; }
  const std::vector<Flow>& flows() const { return flows_; }
  const std::string& name() const { return name_; }

  auto begin() const { return flows_.begin(); }
  auto end() const { return flows_.end(); }

  // Column views (copies) used by calibration and statistics.
  std::vector<double> demands() const;
  std::vector<double> distances() const;

  double total_demand_mbps() const;
  double total_demand_gbps() const { return total_demand_mbps() / 1000.0; }

  // Demand-weighted average distance (Table 1's "w-avg" column).
  double weighted_avg_distance() const;

  // Overwrite one flow's distance (>= 0), leaving demand and metadata
  // untouched. The dynamic-network re-cost pass uses this to update
  // exactly the flows whose backbone path changed.
  void set_distance(std::size_t i, double distance_miles);

  // Multiply every distance by `factor` (> 0). Used by the generators to
  // pin the demand-weighted average distance to a target; pure rescaling
  // preserves the CV of distance and all relative cost structure.
  void scale_distances(double factor);
  // Multiply every demand by `factor` (> 0); preserves the CV of demand.
  void scale_demands(double factor);

  // Re-derive each flow's region from its distance using the paper's
  // EU ISP thresholds (metro < 10 mi, national < 100 mi).
  void classify_regions_by_distance(const geo::DistanceThresholds& t = {});

 private:
  std::string name_;
  std::vector<Flow> flows_;
};

}  // namespace manytiers::workload
