#include "workload/flowset.hpp"

#include <stdexcept>

#include "util/stats.hpp"

namespace manytiers::workload {

void FlowSet::add(Flow flow) {
  if (flow.demand_mbps <= 0.0) {
    throw std::invalid_argument("FlowSet::add: demand must be > 0");
  }
  if (flow.distance_miles < 0.0) {
    throw std::invalid_argument("FlowSet::add: distance must be >= 0");
  }
  flows_.push_back(flow);
}

void FlowSet::set_distance(std::size_t i, double distance_miles) {
  if (distance_miles < 0.0) {
    throw std::invalid_argument("FlowSet::set_distance: distance must be >= 0");
  }
  flows_.at(i).distance_miles = distance_miles;
}

std::vector<double> FlowSet::demands() const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (const auto& f : flows_) out.push_back(f.demand_mbps);
  return out;
}

std::vector<double> FlowSet::distances() const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (const auto& f : flows_) out.push_back(f.distance_miles);
  return out;
}

double FlowSet::total_demand_mbps() const {
  double total = 0.0;
  for (const auto& f : flows_) total += f.demand_mbps;
  return total;
}

double FlowSet::weighted_avg_distance() const {
  if (flows_.empty()) {
    throw std::logic_error("FlowSet::weighted_avg_distance: empty set");
  }
  const auto d = distances();
  const auto q = demands();
  return util::weighted_mean(d, q);
}

void FlowSet::scale_distances(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("FlowSet::scale_distances: factor must be > 0");
  }
  for (auto& f : flows_) f.distance_miles *= factor;
}

void FlowSet::scale_demands(double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("FlowSet::scale_demands: factor must be > 0");
  }
  for (auto& f : flows_) f.demand_mbps *= factor;
}

void FlowSet::classify_regions_by_distance(const geo::DistanceThresholds& t) {
  for (auto& f : flows_) {
    f.region = geo::classify_distance(f.distance_miles, t);
  }
}

}  // namespace manytiers::workload
