#include "workload/io.hpp"

#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "geo/geoip.hpp"

namespace manytiers::workload {

namespace {

constexpr std::string_view kHeader =
    "demand_mbps,distance_miles,region,dest_type,src_ip,dst_ip";

std::string_view region_name(geo::Region r) { return geo::to_string(r); }

std::string_view dest_type_name(DestType t) {
  return t == DestType::OnNet ? "on-net" : "off-net";
}

geo::Region parse_region(std::string_view s, std::size_t line) {
  if (s == "metro") return geo::Region::Metro;
  if (s == "national") return geo::Region::National;
  if (s == "international") return geo::Region::International;
  throw std::invalid_argument("read_csv: line " + std::to_string(line) +
                              ": unknown region '" + std::string(s) + "'");
}

DestType parse_dest_type(std::string_view s, std::size_t line) {
  if (s == "on-net") return DestType::OnNet;
  if (s == "off-net") return DestType::OffNet;
  throw std::invalid_argument("read_csv: line " + std::to_string(line) +
                              ": unknown dest_type '" + std::string(s) + "'");
}

double parse_double(std::string_view s, std::size_t line, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("read_csv: line " + std::to_string(line) +
                                ": bad " + what + " '" + std::string(s) + "'");
  }
  return value;
}

std::vector<std::string_view> split_fields(std::string_view row) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = row.find(',', start);
    if (comma == std::string_view::npos) {
      out.push_back(row.substr(start));
      return out;
    }
    out.push_back(row.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

void write_csv(std::ostream& os, const FlowSet& flows) {
  const auto saved_precision = os.precision(15);
  os << kHeader << '\n';
  for (const auto& f : flows) {
    os << f.demand_mbps << ',' << f.distance_miles << ','
       << region_name(f.region) << ',' << dest_type_name(f.dest_type) << ',';
    if (f.src_ip != 0) os << geo::format_ipv4(f.src_ip);
    os << ',';
    if (f.dst_ip != 0) os << geo::format_ipv4(f.dst_ip);
    os << '\n';
  }
  os.precision(saved_precision);
}

std::string to_csv(const FlowSet& flows) {
  std::ostringstream os;
  write_csv(os, flows);
  return os.str();
}

FlowSet read_csv(std::istream& is, std::string name) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::invalid_argument(
        "read_csv: missing or malformed header line (expected '" +
        std::string(kHeader) + "')");
  }
  FlowSet flows(std::move(name));
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = split_fields(line);
    if (fields.size() != 6) {
      throw std::invalid_argument("read_csv: line " + std::to_string(line_no) +
                                  ": expected 6 fields, got " +
                                  std::to_string(fields.size()));
    }
    Flow f;
    f.demand_mbps = parse_double(fields[0], line_no, "demand");
    f.distance_miles = parse_double(fields[1], line_no, "distance");
    f.region = parse_region(fields[2], line_no);
    f.dest_type = parse_dest_type(fields[3], line_no);
    if (!fields[4].empty()) f.src_ip = geo::parse_ipv4(fields[4]);
    if (!fields[5].empty()) f.dst_ip = geo::parse_ipv4(fields[5]);
    try {
      flows.add(f);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("read_csv: line " + std::to_string(line_no) +
                                  ": " + e.what());
    }
  }
  return flows;
}

FlowSet from_csv(const std::string& text, std::string name) {
  std::istringstream is(text);
  return read_csv(is, std::move(name));
}

}  // namespace manytiers::workload
