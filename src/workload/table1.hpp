// Dataset characterization: the columns of the paper's Table 1.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "workload/flowset.hpp"
#include "workload/generators.hpp"

namespace manytiers::workload {

struct DatasetStats {
  std::string name;
  std::size_t flow_count = 0;
  double wavg_distance_miles = 0.0;  // demand-weighted mean flow distance
  double cv_distance = 0.0;          // CV of flow distances
  double aggregate_gbps = 0.0;       // total demand
  double cv_demand = 0.0;            // CV of flow demands
};

DatasetStats compute_stats(const FlowSet& flows);

// Render a Table 1-shaped comparison of measured stats vs paper targets.
void print_table1(std::ostream& os, std::span<const DatasetStats> measured);

}  // namespace manytiers::workload
