// Gravity-model traffic matrices.
//
// The standard synthesis model for backbone traffic: demand between two
// PoPs is proportional to the product of their masses (population,
// attached customer base) divided by a function of their distance.
// Provides a principled structural prior for the workload generators and
// for users who need a traffic matrix for an arbitrary topology.
#pragma once

#include <vector>

#include "topology/graph.hpp"
#include "topology/utilization.hpp"

namespace manytiers::workload {

struct GravityOptions {
  // Demand(i, j) = scale * mass_i * mass_j / max(distance_ij, floor)^beta.
  double distance_exponent = 1.0;  // beta; 0 = distance-independent
  double distance_floor_miles = 10.0;
  double total_demand_mbps = 1000.0;  // matrix is scaled to this total
  bool include_self_pairs = false;
};

// Build the demand list for every ordered PoP pair (i != j unless
// include_self_pairs). `masses` must be positive, one per PoP; distances
// are shortest-path miles over the topology.
std::vector<topology::TrafficDemand> gravity_matrix(
    const topology::Network& net, std::span<const double> masses,
    const GravityOptions& options = {});

}  // namespace manytiers::workload
