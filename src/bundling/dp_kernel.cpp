#include "bundling/dp_kernel.hpp"

#include <cstdlib>
#include <cstring>

namespace manytiers::bundling {

namespace dp_detail {

const DpCounters& dp_counters() {
  static const DpCounters counters{
      &obs::Registry::instance().counter("bundling.dp_fills"),
      &obs::Registry::instance().counter("bundling.dp_cells"),
      &obs::Registry::instance().counter("bundling.dp_fastpath"),
      &obs::Registry::instance().counter("bundling.dp_fallbacks"),
  };
  return counters;
}

}  // namespace dp_detail

DpKernelOptions dp_kernel_options_from_env() {
  DpKernelOptions opt;
  if (const char* env = std::getenv("MANYTIERS_DP_KERNEL")) {
    if (std::strcmp(env, "naive") == 0) {
      opt.kernel = DpKernel::kNaive;
    } else if (std::strcmp(env, "dc") == 0) {
      opt.kernel = DpKernel::kDivideConquer;
    }
    // "auto", empty, or unrecognized: keep the default (probe + D&C).
  }
  return opt;
}

Bundling extract_dp_bundling(const DpTables& t,
                             std::span<const std::size_t> order,
                             std::size_t n_bundles) {
  const std::size_t n = t.n;
  const std::size_t b_cap = std::min(n_bundles, n);
  // More bundles can never hurt (the objective is superadditive), but take
  // the max over b anyway to stay correct for arbitrary segment values.
  std::size_t b_best = 1;
  for (std::size_t b = 2; b <= b_cap; ++b) {
    if (t.best_at(b, n) > t.best_at(b_best, n)) b_best = b;
  }
  Bundling out(b_best);
  std::size_t end = n;
  for (std::size_t b = b_best; b >= 1; --b) {
    const std::size_t start = t.split_at(b, end);
    for (std::size_t r = start; r < end; ++r) {
      out[b - 1].push_back(order[r]);
    }
    end = start;
  }
  return out;
}

}  // namespace manytiers::bundling
