// Bundlings: partitions of flow indices into pricing tiers.
//
// A Bundling is a partition of {0, ..., n-1}: every flow index appears in
// exactly one bundle, every bundle is non-empty. Bundles are the paper's
// "tiers": all flows in a bundle share one price.
#pragma once

#include <cstddef>
#include <vector>

namespace manytiers::bundling {

using Bundle = std::vector<std::size_t>;
using Bundling = std::vector<Bundle>;

// Throws std::invalid_argument unless `b` is a partition of {0..n-1} into
// non-empty bundles.
void validate(const Bundling& b, std::size_t n_flows);

// The trivial one-bundle (blended-rate) bundling.
Bundling single_bundle(std::size_t n_flows);

// One bundle per flow (infinitely fine-grained tiers).
Bundling per_flow_bundles(std::size_t n_flows);

// flow index -> bundle index lookup.
std::vector<std::size_t> bundle_of_flow(const Bundling& b, std::size_t n_flows);

}  // namespace manytiers::bundling
