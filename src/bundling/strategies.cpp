#include "bundling/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

namespace manytiers::bundling {

namespace {

void require_weights(std::span<const double> ws, const char* what) {
  if (ws.empty()) {
    throw std::invalid_argument(std::string(what) + ": no flows");
  }
  for (const double w : ws) {
    if (!(w > 0.0)) {
      throw std::invalid_argument(std::string(what) +
                                  ": weights must be > 0");
    }
  }
}

// Indices sorted by decreasing key, ties broken by index for determinism.
std::vector<std::size_t> sorted_desc(std::span<const double> keys) {
  std::vector<std::size_t> idx(keys.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return keys[a] > keys[b];
  });
  return idx;
}

Bundling drop_empty(Bundling b) {
  std::erase_if(b, [](const Bundle& bundle) { return bundle.empty(); });
  return b;
}

}  // namespace

Bundling token_bucket(std::span<const double> weights, std::size_t n_bundles) {
  const auto order = sorted_desc(weights);
  return token_bucket_ordered(weights, order, n_bundles);
}

Bundling token_bucket_ordered(std::span<const double> weights,
                              std::span<const std::size_t> order,
                              std::size_t n_bundles) {
  require_weights(weights, "token_bucket");
  if (order.size() != weights.size()) {
    throw std::invalid_argument("token_bucket: order size mismatch");
  }
  if (n_bundles == 0) {
    throw std::invalid_argument("token_bucket: need at least one bundle");
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<double> budget(n_bundles, total / double(n_bundles));
  Bundling bundles(n_bundles);
  for (const std::size_t i : order) {
    if (i >= weights.size()) {
      throw std::invalid_argument("token_bucket: order index out of range");
    }
    // First bundle that is empty or still has budget. The budget invariant
    // (remaining budget == weight of unplaced flows) guarantees one exists.
    std::size_t j = 0;
    while (j < n_bundles && !bundles[j].empty() && !(budget[j] > 0.0)) ++j;
    if (j == n_bundles) j = n_bundles - 1;  // numeric-roundoff safety net
    bundles[j].push_back(i);
    budget[j] -= weights[i];
    if (budget[j] < 0.0 && j + 1 < n_bundles) {
      budget[j + 1] += budget[j];  // charge the overflow to the next bundle
    }
  }
  return drop_empty(std::move(bundles));
}

std::vector<Bundling> token_bucket_series(std::span<const double> weights,
                                          std::size_t max_bundles) {
  if (max_bundles == 0) {
    throw std::invalid_argument("token_bucket: need at least one bundle");
  }
  const auto order = sorted_desc(weights);
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(token_bucket_ordered(weights, order, b));
  }
  return out;
}

Bundling demand_weighted(std::span<const double> demands,
                         std::size_t n_bundles) {
  return token_bucket(demands, n_bundles);
}

std::vector<Bundling> demand_weighted_series(std::span<const double> demands,
                                             std::size_t max_bundles) {
  return token_bucket_series(demands, max_bundles);
}

namespace {
std::vector<double> inverse_costs(std::span<const double> costs) {
  require_weights(costs, "cost_weighted");
  std::vector<double> inv(costs.size());
  std::transform(costs.begin(), costs.end(), inv.begin(),
                 [](double c) { return 1.0 / c; });
  return inv;
}
}  // namespace

Bundling cost_weighted(std::span<const double> costs, std::size_t n_bundles) {
  return token_bucket(inverse_costs(costs), n_bundles);
}

std::vector<Bundling> cost_weighted_series(std::span<const double> costs,
                                           std::size_t max_bundles) {
  return token_bucket_series(inverse_costs(costs), max_bundles);
}

namespace {
std::vector<std::size_t> sorted_by_cost(std::span<const double> costs) {
  std::vector<std::size_t> idx(costs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] < costs[b];
  });
  return idx;
}
}  // namespace

Bundling profit_weighted(std::span<const double> potential_profits,
                         std::span<const double> costs,
                         std::size_t n_bundles) {
  if (costs.size() != potential_profits.size()) {
    throw std::invalid_argument("profit_weighted: costs size mismatch");
  }
  // Tiers are contiguous cost ranges carrying equal potential profit.
  const auto order = sorted_by_cost(costs);
  return token_bucket_ordered(potential_profits, order, n_bundles);
}

std::vector<Bundling> profit_weighted_series(
    std::span<const double> potential_profits, std::span<const double> costs,
    std::size_t max_bundles) {
  if (costs.size() != potential_profits.size()) {
    throw std::invalid_argument("profit_weighted: costs size mismatch");
  }
  if (max_bundles == 0) {
    throw std::invalid_argument("token_bucket: need at least one bundle");
  }
  const auto order = sorted_by_cost(costs);
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(token_bucket_ordered(potential_profits, order, b));
  }
  return out;
}

namespace {
Bundling cost_division_with_cmax(std::span<const double> costs,
                                 std::size_t n_bundles, double cmax) {
  const double width = cmax / double(n_bundles);
  Bundling bundles(n_bundles);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    const std::size_t j =
        width > 0.0
            ? std::min(n_bundles - 1, std::size_t(costs[i] / width))
            : 0;
    bundles[j].push_back(i);
  }
  return drop_empty(std::move(bundles));
}

Bundling index_division_ordered(std::span<const std::size_t> idx,
                                std::size_t n_bundles) {
  Bundling bundles(std::min(n_bundles, idx.size()));
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const std::size_t j = r * bundles.size() / idx.size();
    bundles[j].push_back(idx[r]);
  }
  return drop_empty(std::move(bundles));
}
}  // namespace

Bundling cost_division(std::span<const double> costs, std::size_t n_bundles) {
  require_weights(costs, "cost_division");
  if (n_bundles == 0) {
    throw std::invalid_argument("cost_division: need at least one bundle");
  }
  const double cmax = *std::max_element(costs.begin(), costs.end());
  return cost_division_with_cmax(costs, n_bundles, cmax);
}

std::vector<Bundling> cost_division_series(std::span<const double> costs,
                                           std::size_t max_bundles) {
  require_weights(costs, "cost_division");
  if (max_bundles == 0) {
    throw std::invalid_argument("cost_division: need at least one bundle");
  }
  const double cmax = *std::max_element(costs.begin(), costs.end());
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(cost_division_with_cmax(costs, b, cmax));
  }
  return out;
}

Bundling index_division(std::span<const double> costs, std::size_t n_bundles) {
  require_weights(costs, "index_division");
  if (n_bundles == 0) {
    throw std::invalid_argument("index_division: need at least one bundle");
  }
  return index_division_ordered(sorted_by_cost(costs), n_bundles);
}

std::vector<Bundling> index_division_series(std::span<const double> costs,
                                            std::size_t max_bundles) {
  require_weights(costs, "index_division");
  if (max_bundles == 0) {
    throw std::invalid_argument("index_division: need at least one bundle");
  }
  const auto idx = sorted_by_cost(costs);
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(index_division_ordered(idx, b));
  }
  return out;
}

Bundling class_aware_profit_weighted(
    std::span<const double> potential_profits, std::span<const double> costs,
    std::span<const std::size_t> class_of_flow, std::size_t n_bundles) {
  require_weights(potential_profits, "class_aware_profit_weighted");
  if (class_of_flow.size() != potential_profits.size() ||
      costs.size() != potential_profits.size()) {
    throw std::invalid_argument(
        "class_aware_profit_weighted: class/cost vector size mismatch");
  }
  // Group flow indices by class (classes keep first-seen order).
  std::vector<std::size_t> class_ids;
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < class_of_flow.size(); ++i) {
    const auto it =
        std::find(class_ids.begin(), class_ids.end(), class_of_flow[i]);
    if (it == class_ids.end()) {
      class_ids.push_back(class_of_flow[i]);
      members.emplace_back();
      members.back().push_back(i);
    } else {
      members[std::size_t(it - class_ids.begin())].push_back(i);
    }
  }
  const std::size_t n_classes = class_ids.size();
  if (n_bundles < n_classes) {
    throw std::invalid_argument(
        "class_aware_profit_weighted: need at least one bundle per class");
  }
  // Allocate bundles to classes proportionally to class weight (largest
  // remainder), with at least one bundle per class.
  std::vector<double> class_weight(n_classes, 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < n_classes; ++k) {
    for (const std::size_t i : members[k]) {
      class_weight[k] += potential_profits[i];
    }
    total += class_weight[k];
  }
  std::vector<std::size_t> alloc(n_classes, 1);
  std::size_t remaining = n_bundles - n_classes;
  std::vector<double> fractional(n_classes);
  for (std::size_t k = 0; k < n_classes; ++k) {
    const double ideal = class_weight[k] / total * double(remaining);
    const auto whole = std::size_t(ideal);
    alloc[k] += whole;
    fractional[k] = ideal - double(whole);
  }
  std::size_t assigned = 0;
  for (const auto a : alloc) assigned += a;
  while (assigned < n_bundles) {
    const std::size_t k = std::size_t(
        std::max_element(fractional.begin(), fractional.end()) -
        fractional.begin());
    ++alloc[k];
    fractional[k] = -1.0;
    ++assigned;
  }
  // Cost-ordered profit-weighted bucket within each class, concatenated.
  Bundling out;
  for (std::size_t k = 0; k < n_classes; ++k) {
    std::vector<double> w, c;
    w.reserve(members[k].size());
    c.reserve(members[k].size());
    for (const std::size_t i : members[k]) {
      w.push_back(potential_profits[i]);
      c.push_back(costs[i]);
    }
    const Bundling local = profit_weighted(w, c, alloc[k]);
    for (const auto& bundle : local) {
      Bundle global;
      global.reserve(bundle.size());
      for (const std::size_t local_i : bundle) {
        global.push_back(members[k][local_i]);
      }
      out.push_back(std::move(global));
    }
  }
  return out;
}

}  // namespace manytiers::bundling
