#include "bundling/optimal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace manytiers::bundling {

namespace {

void search_partitions(std::size_t n, std::size_t max_bundles, std::size_t i,
                       Bundling& current,
                       const std::function<double(const Bundling&)>& profit,
                       double& best_value, Bundling& best) {
  if (i == n) {
    const double value = profit(current);
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    return;
  }
  // Flow i joins an existing bundle... (index loop: recursion may grow
  // `current` and invalidate iterators, but indices below `existing`
  // stay stable because deeper frames restore what they add)
  const std::size_t existing = current.size();
  for (std::size_t b = 0; b < existing; ++b) {
    current[b].push_back(i);
    search_partitions(n, max_bundles, i + 1, current, profit, best_value, best);
    current[b].pop_back();
  }
  // ...or opens a new one (canonical order avoids duplicate partitions).
  if (current.size() < max_bundles) {
    current.push_back({i});
    search_partitions(n, max_bundles, i + 1, current, profit, best_value, best);
    current.pop_back();
  }
}

}  // namespace

Bundling exhaustive_optimal(
    std::size_t n_flows, std::size_t max_bundles,
    const std::function<double(const Bundling&)>& profit) {
  if (n_flows == 0) throw std::invalid_argument("exhaustive_optimal: no flows");
  if (n_flows > 14) {
    throw std::invalid_argument(
        "exhaustive_optimal: refusing n > 14 (exponential search); use the "
        "interval DP instead");
  }
  if (max_bundles == 0) {
    throw std::invalid_argument("exhaustive_optimal: need at least one bundle");
  }
  Bundling current, best;
  double best_value = -std::numeric_limits<double>::infinity();
  search_partitions(n_flows, max_bundles, 0, current, profit, best_value, best);
  return best;
}

namespace {

struct DpTables {
  // best[b][k]: maximum value of splitting the first k sorted flows into
  // exactly b intervals; split[b][k]: start of the last interval.
  std::vector<std::vector<double>> best;
  std::vector<std::vector<std::size_t>> split;
  std::size_t n = 0;
};

DpTables fill_dp_tables(std::size_t n, std::size_t b_max,
                        const std::function<double(std::size_t, std::size_t)>&
                            segment_value) {
  // The O(n^2 B) hot loop of the Optimal strategy. The fill counter is
  // what lets tests pin "one capture series costs exactly one fill";
  // the span makes each fill a visible block on the flame view.
  static obs::Counter& fills =
      obs::Registry::instance().counter("bundling.dp_fills");
  fills.add();
  const obs::Span span(
      "interval_dp.fill",
      obs::Tracer::instance().active()
          ? "{\"n\":" + std::to_string(n) +
                ",\"b_max\":" + std::to_string(b_max) + "}"
          : std::string());
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  DpTables t;
  t.n = n;
  t.best.assign(b_max + 1, std::vector<double>(n + 1, kNegInf));
  t.split.assign(b_max + 1, std::vector<std::size_t>(n + 1, 0));
  t.best[0][0] = 0.0;
  for (std::size_t b = 1; b <= b_max; ++b) {
    for (std::size_t k = b; k <= n; ++k) {
      for (std::size_t i = b - 1; i < k; ++i) {
        if (t.best[b - 1][i] == kNegInf) continue;
        const double value = t.best[b - 1][i] + segment_value(i, k);
        if (value > t.best[b][k]) {
          t.best[b][k] = value;
          t.split[b][k] = i;
        }
      }
    }
  }
  return t;
}

// Reconstruct the optimal bundling for a requested bundle count from the
// filled tables. Row b of the DP does not depend on b_max, so extracting
// from a taller table is identical to filling a table of exactly this
// height.
Bundling extract_bundling(const DpTables& t,
                          std::span<const std::size_t> order,
                          std::size_t n_bundles) {
  const std::size_t n = t.n;
  const std::size_t b_cap = std::min(n_bundles, n);
  // More bundles can never hurt (the objective is superadditive), but take
  // the max over b anyway to stay correct for arbitrary segment values.
  std::size_t b_best = 1;
  for (std::size_t b = 2; b <= b_cap; ++b) {
    if (t.best[b][n] > t.best[b_best][n]) b_best = b;
  }
  Bundling out(b_best);
  std::size_t end = n;
  for (std::size_t b = b_best; b >= 1; --b) {
    const std::size_t start = t.split[b][end];
    for (std::size_t r = start; r < end; ++r) {
      out[b - 1].push_back(order[r]);
    }
    end = start;
  }
  return out;
}

void require_dp_args(std::size_t n, std::size_t n_bundles) {
  if (n == 0) throw std::invalid_argument("interval_dp: no flows");
  if (n_bundles == 0) {
    throw std::invalid_argument("interval_dp: need at least one bundle");
  }
}

}  // namespace

Bundling interval_dp(std::span<const std::size_t> order, std::size_t n_bundles,
                     const std::function<double(std::size_t, std::size_t)>&
                         segment_value) {
  require_dp_args(order.size(), n_bundles);
  const std::size_t b_max = std::min(n_bundles, order.size());
  const auto tables = fill_dp_tables(order.size(), b_max, segment_value);
  return extract_bundling(tables, order, n_bundles);
}

std::vector<Bundling> interval_dp_all(
    std::span<const std::size_t> order, std::size_t max_bundles,
    const std::function<double(std::size_t, std::size_t)>& segment_value) {
  require_dp_args(order.size(), max_bundles);
  const std::size_t b_max = std::min(max_bundles, order.size());
  const auto tables = fill_dp_tables(order.size(), b_max, segment_value);
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(extract_bundling(tables, order, b));
  }
  return out;
}

namespace {

struct PrefixSums {
  std::vector<std::size_t> order;  // flow indices sorted by unit cost
  std::vector<double> w;           // prefix sums of weights
  std::vector<double> wc;          // prefix sums of weight * cost
};

// Sort by unit cost and accumulate weight prefix sums. `weight` maps a
// valuation to the model's bundle weight, already normalized by the
// caller for overflow safety (both objectives are homogeneous in the
// weights, so normalization does not change the argmax).
PrefixSums build_prefix_sums(std::span<const double> valuations,
                             std::span<const double> costs,
                             const std::function<double(double)>& weight) {
  if (valuations.empty() || valuations.size() != costs.size()) {
    throw std::invalid_argument(
        "optimal bundling: valuations/costs must be equal-size, non-empty");
  }
  PrefixSums ps;
  ps.order.resize(valuations.size());
  std::iota(ps.order.begin(), ps.order.end(), std::size_t{0});
  std::stable_sort(ps.order.begin(), ps.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return costs[a] < costs[b];
                   });
  ps.w.assign(valuations.size() + 1, 0.0);
  ps.wc.assign(valuations.size() + 1, 0.0);
  for (std::size_t r = 0; r < ps.order.size(); ++r) {
    const std::size_t i = ps.order[r];
    if (!(costs[i] > 0.0)) {
      throw std::invalid_argument("optimal bundling: costs must be > 0");
    }
    const double wi = weight(valuations[i]);
    ps.w[r + 1] = ps.w[r] + wi;
    ps.wc[r + 1] = ps.wc[r] + wi * costs[i];
  }
  return ps;
}

// Sort + prefix sums + the model's segment objective, built once and
// shared between the single-count entry points and the series variants
// so both run the same arithmetic.
struct CedObjective {
  PrefixSums ps;
  double alpha = 0.0;
  double kappa = 0.0;
  double operator()(std::size_t i, std::size_t j) const {
    // Bundle profit at its optimal price, up to the weight normalization:
    // W * cbar^(1-alpha) * alpha^-alpha * (alpha-1)^(alpha-1).
    const double w = ps.w[j] - ps.w[i];
    const double c_bar = (ps.wc[j] - ps.wc[i]) / w;
    return kappa * w * std::pow(c_bar, 1.0 - alpha);
  }
};

CedObjective make_ced_objective(std::span<const double> valuations,
                                std::span<const double> costs, double alpha) {
  if (!(alpha > 1.0)) throw std::invalid_argument("ced_optimal: alpha must be > 1");
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  if (!(vmax > 0.0)) {
    throw std::invalid_argument("ced_optimal: valuations must be > 0");
  }
  CedObjective obj;
  obj.ps = build_prefix_sums(
      valuations, costs,
      [alpha, vmax](double v) { return std::pow(v / vmax, alpha); });
  obj.alpha = alpha;
  obj.kappa = std::pow(alpha, -alpha) * std::pow(alpha - 1.0, alpha - 1.0);
  return obj;
}

struct LogitObjective {
  PrefixSums ps;
  double alpha = 0.0;
  double cmin = 0.0;
  double operator()(std::size_t i, std::size_t j) const {
    // Bundle quality W * e^{-alpha cbar}, shifted by cmin for stability
    // (multiplies every segment by the same e^{alpha cmin} constant).
    const double w = ps.w[j] - ps.w[i];
    const double c_bar = (ps.wc[j] - ps.wc[i]) / w;
    return w * std::exp(-alpha * (c_bar - cmin));
  }
};

LogitObjective make_logit_objective(std::span<const double> valuations,
                                    std::span<const double> costs,
                                    double alpha) {
  if (!(alpha > 0.0)) {
    throw std::invalid_argument("logit_optimal: alpha must be > 0");
  }
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  const double cmin = *std::min_element(costs.begin(), costs.end());
  LogitObjective obj;
  obj.ps = build_prefix_sums(
      valuations, costs,
      [alpha, vmax](double v) { return std::exp(alpha * (v - vmax)); });
  obj.alpha = alpha;
  obj.cmin = cmin;
  return obj;
}

}  // namespace

Bundling ced_optimal(std::span<const double> valuations,
                     std::span<const double> costs, double alpha,
                     std::size_t n_bundles) {
  const auto obj = make_ced_objective(valuations, costs, alpha);
  return interval_dp(obj.ps.order, n_bundles, std::cref(obj));
}

std::vector<Bundling> ced_optimal_series(std::span<const double> valuations,
                                         std::span<const double> costs,
                                         double alpha,
                                         std::size_t max_bundles) {
  const auto obj = make_ced_objective(valuations, costs, alpha);
  return interval_dp_all(obj.ps.order, max_bundles, std::cref(obj));
}

Bundling logit_optimal(std::span<const double> valuations,
                       std::span<const double> costs, double alpha,
                       std::size_t n_bundles) {
  const auto obj = make_logit_objective(valuations, costs, alpha);
  return interval_dp(obj.ps.order, n_bundles, std::cref(obj));
}

std::vector<Bundling> logit_optimal_series(std::span<const double> valuations,
                                           std::span<const double> costs,
                                           double alpha,
                                           std::size_t max_bundles) {
  const auto obj = make_logit_objective(valuations, costs, alpha);
  return interval_dp_all(obj.ps.order, max_bundles, std::cref(obj));
}

}  // namespace manytiers::bundling
