#include "bundling/optimal.hpp"

#include <limits>
#include <stdexcept>

#include "bundling/dp_kernel.hpp"
#include "bundling/objectives.hpp"

namespace manytiers::bundling {

namespace {

void search_partitions(std::size_t n, std::size_t max_bundles, std::size_t i,
                       Bundling& current,
                       const std::function<double(const Bundling&)>& profit,
                       double& best_value, Bundling& best) {
  if (i == n) {
    const double value = profit(current);
    if (value > best_value) {
      best_value = value;
      best = current;
    }
    return;
  }
  // Flow i joins an existing bundle... (index loop: recursion may grow
  // `current` and invalidate iterators, but indices below `existing`
  // stay stable because deeper frames restore what they add)
  const std::size_t existing = current.size();
  for (std::size_t b = 0; b < existing; ++b) {
    current[b].push_back(i);
    search_partitions(n, max_bundles, i + 1, current, profit, best_value, best);
    current[b].pop_back();
  }
  // ...or opens a new one (canonical order avoids duplicate partitions).
  if (current.size() < max_bundles) {
    current.push_back({i});
    search_partitions(n, max_bundles, i + 1, current, profit, best_value, best);
    current.pop_back();
  }
}

}  // namespace

Bundling exhaustive_optimal(
    std::size_t n_flows, std::size_t max_bundles,
    const std::function<double(const Bundling&)>& profit) {
  if (n_flows == 0) throw std::invalid_argument("exhaustive_optimal: no flows");
  if (n_flows > 14) {
    throw std::invalid_argument(
        "exhaustive_optimal: refusing n > 14 (exponential search); use the "
        "interval DP instead");
  }
  if (max_bundles == 0) {
    throw std::invalid_argument("exhaustive_optimal: need at least one bundle");
  }
  Bundling current, best;
  double best_value = -std::numeric_limits<double>::infinity();
  search_partitions(n_flows, max_bundles, 0, current, profit, best_value, best);
  return best;
}

namespace {

void require_dp_args(std::size_t n, std::size_t n_bundles) {
  if (n == 0) throw std::invalid_argument("interval_dp: no flows");
  if (n_bundles == 0) {
    throw std::invalid_argument("interval_dp: need at least one bundle");
  }
}

// Shared single-count / series plumbing, templated on the concrete
// objective so ced_optimal / logit_optimal compile to direct calls into
// the kernel (the std::function entry points below instantiate it with
// the type-erased callable).
template <class Objective>
Bundling interval_dp_impl(std::span<const std::size_t> order,
                          std::size_t n_bundles, const Objective& value) {
  require_dp_args(order.size(), n_bundles);
  const std::size_t b_max = std::min(n_bundles, order.size());
  const auto tables = fill_dp_tables(order.size(), b_max, value);
  return extract_dp_bundling(tables, order, n_bundles);
}

template <class Objective>
std::vector<Bundling> interval_dp_all_impl(std::span<const std::size_t> order,
                                           std::size_t max_bundles,
                                           const Objective& value) {
  require_dp_args(order.size(), max_bundles);
  const std::size_t b_max = std::min(max_bundles, order.size());
  const auto tables = fill_dp_tables(order.size(), b_max, value);
  std::vector<Bundling> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    out.push_back(extract_dp_bundling(tables, order, b));
  }
  return out;
}

}  // namespace

Bundling interval_dp(std::span<const std::size_t> order, std::size_t n_bundles,
                     const std::function<double(std::size_t, std::size_t)>&
                         segment_value) {
  return interval_dp_impl(order, n_bundles, segment_value);
}

std::vector<Bundling> interval_dp_all(
    std::span<const std::size_t> order, std::size_t max_bundles,
    const std::function<double(std::size_t, std::size_t)>& segment_value) {
  return interval_dp_all_impl(order, max_bundles, segment_value);
}

Bundling ced_optimal(std::span<const double> valuations,
                     std::span<const double> costs, double alpha,
                     std::size_t n_bundles) {
  const auto obj = make_ced_objective(valuations, costs, alpha);
  return interval_dp_impl(obj.ps.order, n_bundles, obj);
}

std::vector<Bundling> ced_optimal_series(std::span<const double> valuations,
                                         std::span<const double> costs,
                                         double alpha,
                                         std::size_t max_bundles) {
  const auto obj = make_ced_objective(valuations, costs, alpha);
  return interval_dp_all_impl(obj.ps.order, max_bundles, obj);
}

Bundling logit_optimal(std::span<const double> valuations,
                       std::span<const double> costs, double alpha,
                       std::size_t n_bundles) {
  const auto obj = make_logit_objective(valuations, costs, alpha);
  return interval_dp_impl(obj.ps.order, n_bundles, obj);
}

std::vector<Bundling> logit_optimal_series(std::span<const double> valuations,
                                           std::span<const double> costs,
                                           double alpha,
                                           std::size_t max_bundles) {
  const auto obj = make_logit_objective(valuations, costs, alpha);
  return interval_dp_all_impl(obj.ps.order, max_bundles, obj);
}

}  // namespace manytiers::bundling
