// Heuristic bundling strategies (paper §4.2.1).
//
// The weighted strategies all share the paper's token-bucket algorithm:
// give each of the B bundles an equal share of the total weight, sort the
// flows by decreasing weight, and pour them into bundles in order,
// carrying overflow into the next bundle. They differ only in the weight:
//   demand-weighted  w_i = q_i
//   cost-weighted    w_i = 1 / c_i   (cheap/local flows fill bundles first)
//   profit-weighted  w_i = potential profit of flow i (Eq. 12 / Eq. 13)
// The division strategies ignore demand entirely:
//   cost division    equal-width cost ranges over [0, c_max]
//   index division   equal-count groups of the cost-sorted flows
// The class-aware variant (used with the destination-type cost model,
// §4.3.1) never mixes flows of different cost classes in one bundle.
#pragma once

#include <span>
#include <string_view>

#include "bundling/bundle.hpp"

namespace manytiers::bundling {

// The paper's token-bucket weighting algorithm. Flows are sorted by
// decreasing `weight`; each of the `n_bundles` buckets gets budget
// sum(weight)/B; each flow goes to the first bucket that is empty or has
// budget left, and a bucket's deficit is charged to the next bucket.
Bundling token_bucket(std::span<const double> weights, std::size_t n_bundles);

// Token bucket with an explicit traversal order (weights are spent in
// `order`). The base algorithm is token_bucket_ordered with the flows
// ordered by decreasing weight.
Bundling token_bucket_ordered(std::span<const double> weights,
                              std::span<const std::size_t> order,
                              std::size_t n_bundles);

Bundling demand_weighted(std::span<const double> demands,
                         std::size_t n_bundles);
Bundling cost_weighted(std::span<const double> costs, std::size_t n_bundles);

// Profit-weighted bundling: tiers are spans of increasing unit cost (the
// shape tiers take in practice: local, regional, global), sized so each
// tier carries an equal share of the flows' potential profit. This is
// the "account for both cost and demand" strategy the paper finds
// near-optimal; ordering by potential profit alone (token_bucket on
// potential profits) performs strictly worse — see the ablation bench.
Bundling profit_weighted(std::span<const double> potential_profits,
                         std::span<const double> costs,
                         std::size_t n_bundles);

// Equal-width cost ranges over [0, max cost]; empty ranges are dropped
// (a tier nobody maps to does not exist), so the result can have fewer
// than `n_bundles` bundles.
Bundling cost_division(std::span<const double> costs, std::size_t n_bundles);

// Flows ranked by cost, ranks divided into `n_bundles` equal groups.
Bundling index_division(std::span<const double> costs, std::size_t n_bundles);

// Profit-weighted bundling that never mixes cost classes: the bundle
// budget is split over classes proportionally to their total weight, and
// the cost-ordered profit-weighted bucket runs within each class.
// Requires n_bundles >= number of distinct classes.
Bundling class_aware_profit_weighted(
    std::span<const double> potential_profits, std::span<const double> costs,
    std::span<const std::size_t> class_of_flow, std::size_t n_bundles);

// --- Series variants ---
//
// Element b-1 equals the corresponding single-count strategy at bundle
// count b, for every b in 1..max_bundles. The per-b bucket/division fill
// is O(n), so sharing the one O(n log n) sort (and derived weights)
// across the series is what makes capture-vs-bundle-count curves cheap.
std::vector<Bundling> token_bucket_series(std::span<const double> weights,
                                          std::size_t max_bundles);
std::vector<Bundling> demand_weighted_series(std::span<const double> demands,
                                             std::size_t max_bundles);
std::vector<Bundling> cost_weighted_series(std::span<const double> costs,
                                           std::size_t max_bundles);
std::vector<Bundling> profit_weighted_series(
    std::span<const double> potential_profits, std::span<const double> costs,
    std::size_t max_bundles);
std::vector<Bundling> cost_division_series(std::span<const double> costs,
                                           std::size_t max_bundles);
std::vector<Bundling> index_division_series(std::span<const double> costs,
                                            std::size_t max_bundles);

}  // namespace manytiers::bundling
