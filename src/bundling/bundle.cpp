#include "bundling/bundle.hpp"

#include <stdexcept>

namespace manytiers::bundling {

void validate(const Bundling& b, std::size_t n_flows) {
  std::vector<bool> seen(n_flows, false);
  std::size_t count = 0;
  for (const auto& bundle : b) {
    if (bundle.empty()) {
      throw std::invalid_argument("Bundling: empty bundle");
    }
    for (const std::size_t i : bundle) {
      if (i >= n_flows) {
        throw std::invalid_argument("Bundling: flow index out of range");
      }
      if (seen[i]) {
        throw std::invalid_argument("Bundling: flow appears twice");
      }
      seen[i] = true;
      ++count;
    }
  }
  if (count != n_flows) {
    throw std::invalid_argument("Bundling: not all flows are covered");
  }
}

Bundling single_bundle(std::size_t n_flows) {
  if (n_flows == 0) throw std::invalid_argument("single_bundle: no flows");
  Bundle all(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) all[i] = i;
  return {all};
}

Bundling per_flow_bundles(std::size_t n_flows) {
  if (n_flows == 0) throw std::invalid_argument("per_flow_bundles: no flows");
  Bundling out;
  out.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) out.push_back({i});
  return out;
}

std::vector<std::size_t> bundle_of_flow(const Bundling& b,
                                        std::size_t n_flows) {
  validate(b, n_flows);
  std::vector<std::size_t> out(n_flows);
  for (std::size_t j = 0; j < b.size(); ++j) {
    for (const std::size_t i : b[j]) out[i] = j;
  }
  return out;
}

}  // namespace manytiers::bundling
