// Optimal bundling (paper §4.2.1, the "Optimal" strategy).
//
// The paper exhaustively searches all bundle combinations; that is
// exponential, so we also provide an exact polynomial algorithm. For both
// demand models, a bundle's contribution to total optimal profit depends
// only on (W, C) = (sum of flow weights, sum of weight * unit cost):
//
//   CED:   weight w_i = v_i^alpha; bundle profit at its optimal price is
//          W * (C/W)^(1-alpha) * alpha^(-alpha) * (alpha-1)^(alpha-1),
//          and total profit is the sum over bundles.
//   Logit: weight w_i = e^{alpha v_i}; total profit is monotone in the
//          bundle-set quality G = sum_b W_b * e^{-alpha C_b / W_b}.
//
// Both per-bundle objectives are positively homogeneous and convex in
// (W, C), so some optimal partition is contiguous in unit cost c_i: sort
// flows by cost and split into intervals. That makes an O(B n^2) interval
// DP exact; tests verify it against exhaustive enumeration on small
// instances for both models.
#pragma once

#include <functional>
#include <span>

#include "bundling/bundle.hpp"

namespace manytiers::bundling {

// Exhaustive search over every partition of {0..n-1} into at most
// `max_bundles` non-empty bundles, maximizing `profit`. Exponential;
// refuses n_flows > 14.
Bundling exhaustive_optimal(std::size_t n_flows, std::size_t max_bundles,
                            const std::function<double(const Bundling&)>& profit);

// Exact optimal bundling for the CED model (interval DP, O(B n^2)).
Bundling ced_optimal(std::span<const double> valuations,
                     std::span<const double> costs, double alpha,
                     std::size_t n_bundles);

// Exact optimal bundling for the logit model (interval DP, O(B n^2)).
Bundling logit_optimal(std::span<const double> valuations,
                       std::span<const double> costs, double alpha,
                       std::size_t n_bundles);

// Series variants: element b-1 equals ced_optimal / logit_optimal at
// bundle count b, for every b in 1..max_bundles, from ONE sort, one set
// of prefix sums, and one DP table fill (interval_dp_all) — O(n^2 B)
// total instead of O(n^2 B^2) for the per-b loop.
std::vector<Bundling> ced_optimal_series(std::span<const double> valuations,
                                         std::span<const double> costs,
                                         double alpha,
                                         std::size_t max_bundles);
std::vector<Bundling> logit_optimal_series(std::span<const double> valuations,
                                           std::span<const double> costs,
                                           double alpha,
                                           std::size_t max_bundles);

// Shared machinery: maximize the sum of `segment_value(i, j)` (value of
// the sorted segment [i, j)) over partitions of the `order`-sorted flows
// into at most `n_bundles` intervals. Returns bundles of original indices.
Bundling interval_dp(std::span<const std::size_t> order,
                     std::size_t n_bundles,
                     const std::function<double(std::size_t, std::size_t)>&
                         segment_value);

// One DP fill, every bundle count: element b-1 is identical to
// interval_dp(order, b, segment_value) for b = 1..max_bundles. The DP
// rows are shared across bundle counts (row b only reads row b-1), so
// filling once and reconstructing per b gives bit-identical results at
// 1/max_bundles of the cost.
std::vector<Bundling> interval_dp_all(
    std::span<const std::size_t> order, std::size_t max_bundles,
    const std::function<double(std::size_t, std::size_t)>& segment_value);

// Implementation note: every entry point above runs through the layered
// kernel in bundling/dp_kernel.hpp — flat row-major tables with uint32
// split indices, a divide-and-conquer O(n log n)-per-row fast path when
// the objective passes the total-monotonicity probe (both CED and logit
// do; DESIGN.md §6), a naive-fill fallback otherwise, and deterministic
// chunked parallelism for rows past a width threshold. Output is
// bit-identical to the naive reference at any thread count; the
// MANYTIERS_DP_KERNEL env var ("auto" | "naive" | "dc") forces a kernel
// for A/B byte-compares.
//
// Instrumentation (obs registry, per-thread sharded, safe under
// parallel sweeps): "bundling.dp_fills" counts table fills (shared by
// interval_dp and interval_dp_all; tests enable the registry and assert
// a capture series costs exactly one fill), "bundling.dp_cells" the DP
// cells computed, and "bundling.dp_fastpath" / "bundling.dp_fallbacks"
// partition auto-kernel fills by whether the monotonicity probe let the
// divide-and-conquer path run.

}  // namespace manytiers::bundling
