#include "bundling/objectives.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace manytiers::bundling {

PrefixSums build_prefix_sums(std::span<const double> valuations,
                             std::span<const double> costs,
                             const std::function<double(double)>& weight) {
  if (valuations.empty() || valuations.size() != costs.size()) {
    throw std::invalid_argument(
        "optimal bundling: valuations/costs must be equal-size, non-empty");
  }
  PrefixSums ps;
  ps.order.resize(valuations.size());
  std::iota(ps.order.begin(), ps.order.end(), std::size_t{0});
  std::stable_sort(ps.order.begin(), ps.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return costs[a] < costs[b];
                   });
  ps.w.assign(valuations.size() + 1, 0.0);
  ps.wc.assign(valuations.size() + 1, 0.0);
  for (std::size_t r = 0; r < ps.order.size(); ++r) {
    const std::size_t i = ps.order[r];
    if (!(costs[i] > 0.0)) {
      throw std::invalid_argument("optimal bundling: costs must be > 0");
    }
    const double wi = weight(valuations[i]);
    ps.w[r + 1] = ps.w[r] + wi;
    ps.wc[r + 1] = ps.wc[r] + wi * costs[i];
  }
  return ps;
}

CedObjective make_ced_objective(std::span<const double> valuations,
                                std::span<const double> costs, double alpha) {
  if (!(alpha > 1.0)) throw std::invalid_argument("ced_optimal: alpha must be > 1");
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  if (!(vmax > 0.0)) {
    throw std::invalid_argument("ced_optimal: valuations must be > 0");
  }
  CedObjective obj;
  obj.ps = build_prefix_sums(
      valuations, costs,
      [alpha, vmax](double v) { return std::pow(v / vmax, alpha); });
  obj.alpha = alpha;
  obj.kappa = std::pow(alpha, -alpha) * std::pow(alpha - 1.0, alpha - 1.0);
  return obj;
}

LogitObjective make_logit_objective(std::span<const double> valuations,
                                    std::span<const double> costs,
                                    double alpha) {
  if (!(alpha > 0.0)) {
    throw std::invalid_argument("logit_optimal: alpha must be > 0");
  }
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  const double cmin = *std::min_element(costs.begin(), costs.end());
  LogitObjective obj;
  obj.ps = build_prefix_sums(
      valuations, costs,
      [alpha, vmax](double v) { return std::exp(alpha * (v - vmax)); });
  obj.alpha = alpha;
  obj.cmin = cmin;
  return obj;
}

}  // namespace manytiers::bundling
