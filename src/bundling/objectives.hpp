// The paper's segment objectives for the interval DP, shared by the
// optimal-bundling entry points, the DP-kernel benches, and the
// cross-check tests.
//
// Both objectives score a cost-sorted segment [i, j) from prefix sums of
// the model weights: they are positively homogeneous convex functions of
// (W, C) = (sum of weights, sum of weight * unit cost), which is what
// makes them totally monotone for the divide-and-conquer fast path
// (DESIGN.md §6). Instantiating fill_dp_tables<CedObjective> (or
// <LogitObjective>) compiles the inner loop down to two prefix-sum loads
// and one fused expression with no std::function dispatch.
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace manytiers::bundling {

struct PrefixSums {
  std::vector<std::size_t> order;  // flow indices sorted by unit cost
  std::vector<double> w;           // prefix sums of weights
  std::vector<double> wc;          // prefix sums of weight * cost
};

// Sort by unit cost and accumulate weight prefix sums. `weight` maps a
// valuation to the model's bundle weight, already normalized by the
// caller for overflow safety (both objectives are homogeneous in the
// weights, so normalization does not change the argmax). Throws
// std::invalid_argument on empty/mismatched inputs or non-positive costs.
PrefixSums build_prefix_sums(std::span<const double> valuations,
                             std::span<const double> costs,
                             const std::function<double(double)>& weight);

// Sort + prefix sums + the model's segment objective, built once and
// shared between the single-count entry points and the series variants
// so both run the same arithmetic.
struct CedObjective {
  PrefixSums ps;
  double alpha = 0.0;
  double kappa = 0.0;
  // Bundle profit at its optimal price, up to the weight normalization:
  // W * cbar^(1-alpha) * alpha^-alpha * (alpha-1)^(alpha-1). Inline so
  // the templated kernel's inner loop sees the loads and the pow.
  double operator()(std::size_t i, std::size_t j) const {
    const double w = ps.w[j] - ps.w[i];
    const double c_bar = (ps.wc[j] - ps.wc[i]) / w;
    return kappa * w * std::pow(c_bar, 1.0 - alpha);
  }
};

// Validates alpha > 1 and valuations > 0.
CedObjective make_ced_objective(std::span<const double> valuations,
                                std::span<const double> costs, double alpha);

struct LogitObjective {
  PrefixSums ps;
  double alpha = 0.0;
  double cmin = 0.0;
  // Bundle quality W * e^{-alpha cbar}, shifted by cmin for stability
  // (multiplies every segment by the same e^{alpha cmin} constant).
  double operator()(std::size_t i, std::size_t j) const {
    const double w = ps.w[j] - ps.w[i];
    const double c_bar = (ps.wc[j] - ps.wc[i]) / w;
    return w * std::exp(-alpha * (c_bar - cmin));
  }
};

// Validates alpha > 0.
LogitObjective make_logit_objective(std::span<const double> valuations,
                                    std::span<const double> costs,
                                    double alpha);

}  // namespace manytiers::bundling
