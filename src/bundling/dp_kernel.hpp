// The interval-DP fill kernel behind the Optimal bundling strategy.
//
// This is the top hot path of every sweep: best[b][k] = max over i of
// best[b-1][i] + value(i, k), filled for b = 1..b_max, k = b..n. The
// kernel is layered (ROADMAP "beat O(n^2 B)"):
//
//  1. Layout + devirtualization — fill_dp_tables<Objective> is templated
//     on the segment objective, so the CED/logit entry points compile to
//     a direct (inlinable) call instead of a std::function dispatch, and
//     the tables are flat row-major single allocations (8-byte best +
//     4-byte split per cell) instead of vectors of vectors.
//  2. Divide-and-conquer row fill — when the objective is totally
//     monotone (leftmost argmax nondecreasing in k; see the probe
//     below), each row fills in O(n log n) instead of O(n^2). Both the
//     paper's segment objectives qualify: they are positively
//     homogeneous convex functions of cost-sorted prefix-sum
//     differences, which makes -value Monge (DESIGN.md §6). A runtime
//     probe samples the quadrangle inequality per fill and falls back
//     to the naive scan when it fails, so arbitrary objectives stay
//     exact.
//  3. Deterministic parallelism — rows wider than a threshold fill in
//     parallel over util::parallel_for. The work decomposition is a
//     pure function of the row width (never of the thread count), each
//     chunk keeps the serial scan order, and ties break lowest-split-
//     wins exactly like the serial fill — so the tables are
//     bit-identical at any thread count, extending the sweep engine's
//     determinism guarantee through this layer.
//
// Equality contract: for any objective, kernel, thread count, and
// options, fill_dp_tables produces tables bit-identical to the naive
// reference fill whenever the leftmost argmax of each row (as computed
// in floating point) is nondecreasing in k — which the probe checks on
// samples and the cross-check tests verify end-to-end on seeded
// markets. When the probe fails, the naive fill runs and identity is
// trivial.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "bundling/bundle.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace manytiers::bundling {

// Flat row-major DP tables: row b at offset b*(n+1), columns 0..n.
// best[b][k] is the maximum value of splitting the first k sorted flows
// into exactly b intervals; split[b][k] is the start of the last
// interval. Split indices are uint32_t (n < 2^32 is enforced by the
// fill), which shrinks the tables to 12 bytes per cell in exactly two
// allocations — (b_max+1)*(n+1)*12 bytes total, the documented budget
// asserted by tests.
struct DpTables {
  std::size_t n = 0;
  std::size_t b_max = 0;
  std::vector<double> best;
  std::vector<std::uint32_t> split;

  std::size_t stride() const { return n + 1; }
  double best_at(std::size_t b, std::size_t k) const {
    return best[b * stride() + k];
  }
  std::uint32_t split_at(std::size_t b, std::size_t k) const {
    return split[b * stride() + k];
  }
  // Heap footprint of the two tables (the struct itself is trivial).
  std::size_t bytes() const {
    return best.capacity() * sizeof(double) +
           split.capacity() * sizeof(std::uint32_t);
  }
};

enum class DpKernel {
  kAuto,           // probe total monotonicity; D&C on pass, naive on fail
  kNaive,          // force the O(n^2) reference scan
  kDivideConquer,  // force D&C (no probe; caller asserts monotonicity)
};

struct DpKernelOptions {
  DpKernel kernel = DpKernel::kAuto;
  // Rows at least this wide fill via parallel_for (unless the fill is
  // already running inside a parallel_for worker — nested fan-out would
  // oversubscribe; the sweep engine owns the outer parallelism).
  std::size_t parallel_row_threshold = 16384;
  // Target columns per parallel chunk. Chunk boundaries are a function
  // of (row width, grain, max_chunks) only — never the thread count —
  // which is what keeps parallel fills bit-identical to serial ones.
  std::size_t parallel_grain = 8192;
  std::size_t max_chunks = 64;
  // Worker threads for parallel rows; 0 defers to MANYTIERS_THREADS /
  // hardware_concurrency (util::parallel_for semantics).
  std::size_t threads = 0;
};

// Options with the kernel choice taken from MANYTIERS_DP_KERNEL
// ("auto" | "naive" | "dc"; unset or unrecognized means auto). The env
// override exists so any binary — benches, the batch driver, a golden
// byte-compare — can force a kernel without a flag.
DpKernelOptions dp_kernel_options_from_env();

// Reconstruct the optimal bundling for a requested bundle count from
// filled tables. Row b of the DP does not depend on b_max, so
// extracting from a taller table is identical to filling a table of
// exactly this height.
Bundling extract_dp_bundling(const DpTables& t,
                             std::span<const std::size_t> order,
                             std::size_t n_bundles);

namespace dp_detail {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Sampled check of the inverse quadrangle inequality
//   value(i1,k1) + value(i2,k2) >= value(i1,k2) + value(i2,k1)
// for i1 < i2 < k1 < k2, which (per the classic SMAWK/D&C argument)
// makes the leftmost argmax of every DP row nondecreasing in k. The
// probe is deterministic: an 8-position ladder of adjacent quadruples
// plus an 8x8 grid of spread quadruples up to full extent. A sampled
// pass is not a proof — the cross-check tests carry the end-to-end
// guarantee — but any violation found forces the exact naive fill.
template <class Objective>
bool probe_total_monotonicity(std::size_t n, const Objective& value) {
  if (n < 4) return false;  // no quadruple to test; naive is cheap anyway
  const auto holds = [&](std::size_t i1, std::size_t i2, std::size_t k1,
                         std::size_t k2) {
    return !(value(i1, k1) + value(i2, k2) < value(i1, k2) + value(i2, k1));
  };
  const std::size_t steps = std::min<std::size_t>(n - 3, 8);
  for (std::size_t a = 0; a < steps; ++a) {
    const std::size_t i1 = (a * (n - 3)) / steps;  // <= n - 4
    if (!holds(i1, i1 + 1, i1 + 2, i1 + 3)) return false;
    for (std::size_t c = 1; c <= steps; ++c) {
      const std::size_t k2 = i1 + 3 + ((n - 3 - i1) * c) / steps;  // <= n
      const std::size_t k1 = i1 + 2 + (k2 - i1 - 2) / 2;           // < k2
      const std::size_t i2 = i1 + 1 + (k1 - i1 - 1) / 2;           // < k1
      if (!holds(i1, i2, k1, k2)) return false;
      if (!holds(i1, i1 + 1, k2 - 1, k2)) return false;
    }
  }
  return true;
}

// Naive reference scan for row b over k in [klo, khi]: the exact loop
// (including the lowest-split-wins strict-> tie-break and the -inf skip
// that only row 1 can hit) of the pre-kernel implementation.
template <class Objective>
void fill_row_naive(std::size_t b, const double* prev, double* best,
                    std::uint32_t* split, std::size_t klo, std::size_t khi,
                    const Objective& value) {
  for (std::size_t k = klo; k <= khi; ++k) {
    double bk = kNegInf;
    std::uint32_t sk = 0;
    for (std::size_t i = b - 1; i < k; ++i) {
      if (prev[i] == kNegInf) continue;
      const double v = prev[i] + value(i, k);
      if (v > bk) {
        bk = v;
        sk = static_cast<std::uint32_t>(i);
      }
    }
    best[k] = bk;
    split[k] = sk;
  }
}

// Divide-and-conquer row fill: compute the leftmost argmax at the
// midpoint k by a plain ascending scan (same candidate expression and
// strict-> tie-break as the naive fill), then recurse left with the
// argmax as the new upper bound and iterate right with it as the new
// lower bound. Exact whenever the leftmost argmax is nondecreasing in
// k. O((khi-klo) + (ihi-ilo)) work per level, log2(width) levels.
template <class Objective>
struct RowDC {
  const double* prev;
  double* best;
  std::uint32_t* split;
  const Objective& value;

  void solve(std::size_t klo, std::size_t khi, std::size_t ilo,
             std::size_t ihi) {
    while (klo <= khi) {
      const std::size_t k = klo + (khi - klo) / 2;
      const std::size_t hi = std::min(ihi, k - 1);
      double bk = kNegInf;
      std::size_t sk = ilo;
      for (std::size_t i = ilo; i <= hi; ++i) {
        const double v = prev[i] + value(i, k);
        if (v > bk) {
          bk = v;
          sk = i;
        }
      }
      best[k] = bk;
      split[k] = static_cast<std::uint32_t>(sk);
      if (k > klo) solve(klo, k - 1, ilo, sk);  // left half: argmax <= sk
      klo = k + 1;                              // right half: argmax >= sk
      ilo = sk;
    }
  }
};

// Deterministic chunk count for a row of `width` columns: a function of
// the options and the width only, never of the thread count.
inline std::size_t row_chunks(std::size_t width, const DpKernelOptions& opt) {
  const std::size_t grain = std::max<std::size_t>(opt.parallel_grain, 1);
  return std::min(std::max<std::size_t>(opt.max_chunks, 1), width / grain);
}

template <class Objective>
void fill_row(std::size_t b, std::size_t n, const double* prev, double* best,
              std::uint32_t* split, const Objective& value, bool use_dc,
              const DpKernelOptions& opt) {
  if (b > n) return;  // row has no feasible k; stays -inf like the reference
  const std::size_t klo = b;
  const std::size_t khi = n;
  const std::size_t width = khi - klo + 1;
  // Never fan out from inside a parallel_for worker: the sweep engine
  // already owns the cores, and the serial kernel is bit-identical.
  const bool parallel = width >= opt.parallel_row_threshold &&
                        !util::in_parallel_worker() &&
                        row_chunks(width, opt) >= 2;

  if (b == 1) {
    // Only i = 0 is feasible (prev[i>0] is -inf); computing prev[0] +
    // value(0,k) directly is bitwise what the naive -inf-skipping scan
    // stores, in O(n) instead of O(n^2).
    const auto run = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t k = lo; k <= hi; ++k) {
        best[k] = prev[0] + value(0, k);
        split[k] = 0;
      }
    };
    if (!use_dc) {
      // The naive kernel is the reference: keep its exact loop shape.
      if (!parallel) {
        fill_row_naive(b, prev, best, split, klo, khi, value);
      } else {
        const std::size_t chunks = row_chunks(width, opt);
        util::parallel_for(
            chunks,
            [&](std::size_t t) {
              const std::size_t lo = klo + (width * t) / chunks;
              const std::size_t hi = klo + (width * (t + 1)) / chunks - 1;
              if (lo <= hi) fill_row_naive(b, prev, best, split, lo, hi, value);
            },
            opt.threads);
      }
      return;
    }
    if (!parallel) {
      run(klo, khi);
    } else {
      const std::size_t chunks = row_chunks(width, opt);
      util::parallel_for(
          chunks,
          [&](std::size_t t) {
            const std::size_t lo = klo + (width * t) / chunks;
            const std::size_t hi = klo + (width * (t + 1)) / chunks - 1;
            if (lo <= hi) run(lo, hi);
          },
          opt.threads);
    }
    return;
  }

  if (!use_dc) {
    if (!parallel) {
      fill_row_naive(b, prev, best, split, klo, khi, value);
      return;
    }
    const std::size_t chunks = row_chunks(width, opt);
    util::parallel_for(
        chunks,
        [&](std::size_t t) {
          const std::size_t lo = klo + (width * t) / chunks;
          const std::size_t hi = klo + (width * (t + 1)) / chunks - 1;
          if (lo <= hi) fill_row_naive(b, prev, best, split, lo, hi, value);
        },
        opt.threads);
    return;
  }

  RowDC<Objective> dc{prev, best, split, value};
  if (!parallel) {
    dc.solve(klo, khi, b - 1, n - 1);
    return;
  }
  // Parallel D&C: solve the chunk-boundary columns serially first (each
  // scan lower-bounded by the previous boundary's argmax, so the pass
  // is O(n) total under monotonicity), then every chunk is an
  // independent D&C with i-bounds pinned by its boundary argmaxes.
  const std::size_t chunks = row_chunks(width, opt);
  std::vector<std::size_t> kb(chunks + 1);
  std::vector<std::size_t> jb(chunks + 1, 0);
  for (std::size_t t = 0; t <= chunks; ++t) {
    kb[t] = klo + (width * t) / chunks;
  }
  std::size_t prevj = b - 1;
  for (std::size_t t = 1; t < chunks; ++t) {
    const std::size_t k = kb[t];
    const std::size_t hi = std::min(n - 1, k - 1);
    double bk = kNegInf;
    std::size_t sk = prevj;
    for (std::size_t i = prevj; i <= hi; ++i) {
      const double v = prev[i] + value(i, k);
      if (v > bk) {
        bk = v;
        sk = i;
      }
    }
    best[k] = bk;
    split[k] = static_cast<std::uint32_t>(sk);
    jb[t] = sk;
    prevj = sk;
  }
  util::parallel_for(
      chunks,
      [&](std::size_t t) {
        const std::size_t lo = kb[t] + (t > 0 ? 1 : 0);
        const std::size_t hi = kb[t + 1] - 1;
        if (lo > hi) return;
        const std::size_t ilo = (t == 0) ? b - 1 : jb[t];
        const std::size_t ihi = (t + 1 < chunks) ? jb[t + 1] : n - 1;
        RowDC<Objective>{prev, best, split, value}.solve(lo, hi, ilo, ihi);
      },
      opt.threads);
}

struct DpCounters {
  obs::Counter* fills;
  obs::Counter* cells;
  obs::Counter* fastpath;
  obs::Counter* fallbacks;
};
// Cached handles for bundling.dp_fills / dp_cells / dp_fastpath /
// dp_fallbacks (one registry lookup per process).
const DpCounters& dp_counters();

}  // namespace dp_detail

// Fill the DP tables for `n` sorted flows and rows 1..b_max. The
// `value(i, k)` objective scores the sorted segment [i, k); callers
// clamp b_max <= n. Throws std::invalid_argument when n >= 2^32 (split
// indices are uint32_t).
template <class Objective>
DpTables fill_dp_tables(std::size_t n, std::size_t b_max,
                        const Objective& value,
                        const DpKernelOptions& opt = dp_kernel_options_from_env()) {
  if (n >= std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "interval_dp: n must be < 2^32 - 1 (split indices are stored as "
        "uint32_t)");
  }
  const auto& counters = dp_detail::dp_counters();
  counters.fills->add();
  // Cells actually computed: row b covers k in [b, n].
  if (b_max > 0 && b_max <= n) {
    counters.cells->add(b_max * (n + 1) - b_max * (b_max + 1) / 2);
  }
  // The span args string is built only when the tracer is live; an
  // untraced fill pays one relaxed load here and nothing else.
  std::string span_args;
  if (obs::Tracer::instance().active()) {
    span_args = "{\"n\":" + std::to_string(n) +
                ",\"b_max\":" + std::to_string(b_max) + "}";
  }
  const obs::Span span("interval_dp.fill", span_args);

  DpTables t;
  t.n = n;
  t.b_max = b_max;
  const std::size_t stride = n + 1;
  t.best.assign((b_max + 1) * stride, dp_detail::kNegInf);
  t.split.assign((b_max + 1) * stride, 0);
  t.best[0] = 0.0;

  bool use_dc = false;
  switch (opt.kernel) {
    case DpKernel::kNaive:
      break;
    case DpKernel::kDivideConquer:
      use_dc = true;
      break;
    case DpKernel::kAuto:
      use_dc = dp_detail::probe_total_monotonicity(n, value);
      if (use_dc) {
        counters.fastpath->add();
      } else {
        counters.fallbacks->add();
      }
      break;
  }

  for (std::size_t b = 1; b <= b_max; ++b) {
    const double* prev = t.best.data() + (b - 1) * stride;
    double* best = t.best.data() + b * stride;
    std::uint32_t* split = t.split.data() + b * stride;
    dp_detail::fill_row(b, n, prev, best, split, value, use_dc, opt);
  }
  return t;
}

}  // namespace manytiers::bundling
