#include "demand/ced.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace manytiers::demand {

namespace {
void require_positive(double x, const char* what) {
  if (!(x > 0.0)) {
    throw std::invalid_argument(std::string(what) + " must be > 0");
  }
}
void require_same_nonempty(std::span<const double> a, std::span<const double> b,
                           const char* what) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) +
                                ": inputs must be equal-size and non-empty");
  }
}
}  // namespace

CedModel::CedModel(double alpha) : alpha_(alpha) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("CedModel: alpha must be > 1");
  }
}

double CedModel::quantity(double valuation, double price) const {
  require_positive(valuation, "valuation");
  require_positive(price, "price");
  return std::pow(valuation / price, alpha_);
}

double CedModel::flow_profit(double valuation, double cost, double price) const {
  require_positive(cost, "cost");
  return quantity(valuation, price) * (price - cost);
}

double CedModel::optimal_price(double cost) const {
  require_positive(cost, "cost");
  return alpha_ * cost / (alpha_ - 1.0);
}

double CedModel::potential_profit(double valuation, double cost) const {
  // Eq. 12: pi_i = v^alpha / alpha * (alpha c / (alpha - 1))^(1 - alpha).
  require_positive(valuation, "valuation");
  require_positive(cost, "cost");
  return std::pow(valuation, alpha_) / alpha_ *
         std::pow(optimal_price(cost), 1.0 - alpha_);
}

double CedModel::consumer_surplus(double valuation, double price) const {
  require_positive(valuation, "valuation");
  require_positive(price, "price");
  // integral_p^inf (v/x)^alpha dx = v^alpha p^(1-alpha) / (alpha - 1).
  return std::pow(valuation, alpha_) * std::pow(price, 1.0 - alpha_) /
         (alpha_ - 1.0);
}

double CedModel::bundle_price(std::span<const double> valuations,
                              std::span<const double> costs) const {
  require_same_nonempty(valuations, costs, "bundle_price");
  // Eq. 5: P* = alpha * sum(c v^alpha) / ((alpha - 1) * sum(v^alpha)).
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    require_positive(valuations[i], "valuation");
    require_positive(costs[i], "cost");
    const double w = std::pow(valuations[i], alpha_);
    num += costs[i] * w;
    den += w;
  }
  return alpha_ * num / ((alpha_ - 1.0) * den);
}

double CedModel::total_profit(std::span<const double> valuations,
                              std::span<const double> costs,
                              std::span<const double> prices) const {
  require_same_nonempty(valuations, costs, "total_profit");
  if (prices.size() != valuations.size()) {
    throw std::invalid_argument("total_profit: price vector size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    total += flow_profit(valuations[i], costs[i], prices[i]);
  }
  return total;
}

ValuationFit CedModel::fit_valuations(std::span<const double> demands,
                                      double blended_price) const {
  require_positive(blended_price, "blended price");
  if (demands.empty()) {
    throw std::invalid_argument("fit_valuations: no demands");
  }
  ValuationFit fit;
  fit.valuations.reserve(demands.size());
  for (const double q : demands) {
    require_positive(q, "demand");
    // From Eq. 2 at p = P0: v = q^(1/alpha) * P0.
    fit.valuations.push_back(std::pow(q, 1.0 / alpha_) * blended_price);
  }
  return fit;
}

double CedModel::fit_gamma(std::span<const double> valuations,
                           std::span<const double> relative_costs,
                           double blended_price) const {
  require_same_nonempty(valuations, relative_costs, "fit_gamma");
  require_positive(blended_price, "blended price");
  // gamma = P0 (alpha - 1) sum(v^alpha) / (alpha sum(f(d) v^alpha)): makes
  // P0 the optimal single-bundle price (invert Eq. 5 with c = gamma f(d)).
  double sum_w = 0.0, sum_fw = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    require_positive(valuations[i], "valuation");
    require_positive(relative_costs[i], "relative cost");
    const double w = std::pow(valuations[i], alpha_);
    sum_w += w;
    sum_fw += relative_costs[i] * w;
  }
  return blended_price * (alpha_ - 1.0) * sum_w / (alpha_ * sum_fw);
}

}  // namespace manytiers::demand
