// Elasticity estimation from observed price/demand histories.
//
// The paper treats the price sensitivity alpha as an unobservable swept
// in the evaluation (§4.3.2). An ISP, however, sees how each customer's
// demand responded to its own past price changes; this module recovers
// the demand-model parameters from such histories.
//
// CED: ln q = alpha (ln v - ln p), so within one flow (v fixed) demand
// and price co-move with slope -alpha on log scales. We estimate alpha by
// pooled OLS with per-flow fixed effects (within-flow demeaning), which
// cancels the unknown valuations exactly.
//
// Logit: ln(s_i / s0) = alpha (v_i - p_i), so within one flow the log
// odds against the outside option move with slope -alpha in the price;
// the same within-flow estimator applies.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace manytiers::demand {

// One (price, demand) observation of a flow, e.g. one billing period.
struct PriceDemandPoint {
  double price = 0.0;
  double quantity = 0.0;
};

// One (price, market share, outside share) observation of a flow.
struct PriceSharePoint {
  double price = 0.0;
  double share = 0.0;             // s_i
  double no_purchase_share = 0.0; // s0 in the same period
};

struct ElasticityFit {
  double alpha = 0.0;
  double r_squared = 0.0;       // of the within-flow regression
  std::size_t observations = 0; // points contributing variation
};

// Estimate CED alpha from per-flow histories. Every flow needs >= 2
// observations and at least one flow must have price variation; prices
// and quantities must be > 0.
ElasticityFit estimate_ced_alpha(
    std::span<const std::vector<PriceDemandPoint>> flow_histories);

// Given alpha, recover each flow's valuation as the geometric mean of
// q_t^{1/alpha} * p_t over its history (exact when the data is CED).
std::vector<double> estimate_ced_valuations(
    std::span<const std::vector<PriceDemandPoint>> flow_histories,
    double alpha);

// Estimate logit alpha from per-flow share histories (shares and s0 in
// (0, 1)).
ElasticityFit estimate_logit_alpha(
    std::span<const std::vector<PriceSharePoint>> flow_histories);

}  // namespace manytiers::demand
