#include "demand/estimation.hpp"

#include <cmath>
#include <stdexcept>

namespace manytiers::demand {

namespace {

// Pooled within-flow OLS of y on x: demean per flow, regress, and return
// (-slope, r^2, n). Throws if no flow contributes price variation.
ElasticityFit within_flow_regression(
    const std::vector<std::vector<std::pair<double, double>>>& xy) {
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  std::size_t n = 0;
  for (const auto& history : xy) {
    if (history.size() < 2) {
      throw std::invalid_argument(
          "elasticity estimation: every flow needs >= 2 observations");
    }
    double mx = 0.0, my = 0.0;
    for (const auto& [x, y] : history) {
      mx += x;
      my += y;
    }
    mx /= double(history.size());
    my /= double(history.size());
    for (const auto& [x, y] : history) {
      sxx += (x - mx) * (x - mx);
      sxy += (x - mx) * (y - my);
      syy += (y - my) * (y - my);
      ++n;
    }
  }
  if (!(sxx > 0.0)) {
    throw std::invalid_argument(
        "elasticity estimation: no price variation in any flow history");
  }
  ElasticityFit fit;
  const double slope = sxy / sxx;
  fit.alpha = -slope;
  fit.observations = n;
  fit.r_squared = syy > 0.0 ? (slope * sxy) / syy : 1.0;
  return fit;
}

}  // namespace

ElasticityFit estimate_ced_alpha(
    std::span<const std::vector<PriceDemandPoint>> flow_histories) {
  if (flow_histories.empty()) {
    throw std::invalid_argument("estimate_ced_alpha: no flows");
  }
  std::vector<std::vector<std::pair<double, double>>> xy;
  xy.reserve(flow_histories.size());
  for (const auto& history : flow_histories) {
    auto& points = xy.emplace_back();
    for (const auto& obs : history) {
      if (!(obs.price > 0.0) || !(obs.quantity > 0.0)) {
        throw std::invalid_argument(
            "estimate_ced_alpha: prices and quantities must be > 0");
      }
      points.emplace_back(std::log(obs.price), std::log(obs.quantity));
    }
  }
  return within_flow_regression(xy);
}

std::vector<double> estimate_ced_valuations(
    std::span<const std::vector<PriceDemandPoint>> flow_histories,
    double alpha) {
  if (!(alpha > 1.0)) {
    throw std::invalid_argument("estimate_ced_valuations: alpha must be > 1");
  }
  std::vector<double> out;
  out.reserve(flow_histories.size());
  for (const auto& history : flow_histories) {
    if (history.empty()) {
      throw std::invalid_argument(
          "estimate_ced_valuations: empty flow history");
    }
    // From q = (v/p)^alpha: v = q^{1/alpha} p; average in log space.
    double acc = 0.0;
    for (const auto& obs : history) {
      if (!(obs.price > 0.0) || !(obs.quantity > 0.0)) {
        throw std::invalid_argument(
            "estimate_ced_valuations: prices and quantities must be > 0");
      }
      acc += std::log(obs.quantity) / alpha + std::log(obs.price);
    }
    out.push_back(std::exp(acc / double(history.size())));
  }
  return out;
}

ElasticityFit estimate_logit_alpha(
    std::span<const std::vector<PriceSharePoint>> flow_histories) {
  if (flow_histories.empty()) {
    throw std::invalid_argument("estimate_logit_alpha: no flows");
  }
  std::vector<std::vector<std::pair<double, double>>> xy;
  xy.reserve(flow_histories.size());
  for (const auto& history : flow_histories) {
    auto& points = xy.emplace_back();
    for (const auto& obs : history) {
      if (!(obs.share > 0.0 && obs.share < 1.0) ||
          !(obs.no_purchase_share > 0.0 && obs.no_purchase_share < 1.0)) {
        throw std::invalid_argument(
            "estimate_logit_alpha: shares must be in (0, 1)");
      }
      points.emplace_back(obs.price,
                          std::log(obs.share / obs.no_purchase_share));
    }
  }
  return within_flow_regression(xy);
}

}  // namespace manytiers::demand
