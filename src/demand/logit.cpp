#include "demand/logit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/optimize.hpp"

namespace manytiers::demand {

namespace {
void require_same_nonempty(std::span<const double> a, std::span<const double> b,
                           const char* what) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument(std::string(what) +
                                ": inputs must be equal-size and non-empty");
  }
}
}  // namespace

LogitModel::LogitModel(double alpha, double market_size)
    : alpha_(alpha), market_size_(market_size) {
  if (!(alpha > 0.0)) throw std::invalid_argument("LogitModel: alpha must be > 0");
  if (!(market_size > 0.0)) {
    throw std::invalid_argument("LogitModel: market size must be > 0");
  }
}

std::vector<double> LogitModel::shares(std::span<const double> valuations,
                                       std::span<const double> prices) const {
  require_same_nonempty(valuations, prices, "shares");
  // Numerically stable softmax against the outside option's utility 0.
  double max_u = 0.0;
  std::vector<double> utils(valuations.size());
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    utils[i] = alpha_ * (valuations[i] - prices[i]);
    max_u = std::max(max_u, utils[i]);
  }
  double denom = std::exp(-max_u);  // the outside option
  for (double u : utils) denom += std::exp(u - max_u);
  std::vector<double> out(valuations.size());
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    out[i] = std::exp(utils[i] - max_u) / denom;
  }
  return out;
}

double LogitModel::no_purchase_share(std::span<const double> valuations,
                                     std::span<const double> prices) const {
  const auto s = shares(valuations, prices);
  double total = 0.0;
  for (double si : s) total += si;
  return std::max(0.0, 1.0 - total);
}

std::vector<double> LogitModel::quantities(
    std::span<const double> valuations, std::span<const double> prices) const {
  auto s = shares(valuations, prices);
  for (auto& si : s) si *= market_size_;
  return s;
}

double LogitModel::total_profit(std::span<const double> valuations,
                                std::span<const double> costs,
                                std::span<const double> prices) const {
  require_same_nonempty(valuations, costs, "total_profit");
  if (prices.size() != valuations.size()) {
    throw std::invalid_argument("total_profit: price vector size mismatch");
  }
  const auto s = shares(valuations, prices);
  double profit = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    profit += s[i] * (prices[i] - costs[i]);
  }
  return market_size_ * profit;
}

double LogitModel::consumer_surplus(std::span<const double> valuations,
                                    std::span<const double> prices) const {
  require_same_nonempty(valuations, prices, "consumer_surplus");
  // Stable log-sum-exp including the outside option's utility 0.
  double max_u = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    max_u = std::max(max_u, alpha_ * (valuations[i] - prices[i]));
  }
  double sum = std::exp(-max_u);
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    sum += std::exp(alpha_ * (valuations[i] - prices[i]) - max_u);
  }
  return market_size_ / alpha_ * (max_u + std::log(sum));
}

LogitModel::PricingResult LogitModel::optimal_prices(
    std::span<const double> valuations, std::span<const double> costs) const {
  require_same_nonempty(valuations, costs, "optimal_prices");
  // At the optimum every flow carries markup m = 1/(alpha s0), and with
  // p_i = c_i + m the fixed point is m = g(m), g(m) = (1 + S e^{-alpha m})
  // / alpha where S = sum_i e^{alpha(v_i - c_i)}. h(m) = m - g(m) is
  // strictly increasing, so bisection is exact. S is kept in log space
  // (stable log-sum-exp) so large alpha * (v - c) cannot overflow.
  double umax = alpha_ * (valuations[0] - costs[0]);
  for (std::size_t i = 1; i < valuations.size(); ++i) {
    umax = std::max(umax, alpha_ * (valuations[i] - costs[i]));
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    sum += std::exp(alpha_ * (valuations[i] - costs[i]) - umax);
  }
  const double log_s = umax + std::log(sum);
  const auto g = [&](double m) {
    const double ex = log_s - alpha_ * m;
    return (1.0 + (ex > 700.0 ? std::exp(700.0) : std::exp(ex))) / alpha_;
  };
  // h(lo) < 0 (g explodes as m -> 0) and h(hi) > 0 by construction.
  const double lo = std::max(1e-12, (log_s - 700.0) / alpha_);
  const double hi = (2.0 + std::max(0.0, log_s)) / alpha_;
  const double m = util::find_root([&](double x) { return x - g(x); }, lo, hi,
                                   1e-13 * std::max(1.0, hi));
  PricingResult res;
  res.markup = m;
  res.prices.resize(costs.size());
  for (std::size_t i = 0; i < costs.size(); ++i) res.prices[i] = costs[i] + m;
  res.profit = total_profit(valuations, costs, res.prices);
  res.converged = true;
  return res;
}

LogitModel::PricingResult LogitModel::gradient_prices(
    std::span<const double> valuations, std::span<const double> costs) const {
  require_same_nonempty(valuations, costs, "gradient_prices");
  const std::vector<double> v(valuations.begin(), valuations.end());
  const std::vector<double> c(costs.begin(), costs.end());
  util::GradientAscentOptions opts;
  opts.lower_bounds = c;  // prices below cost are never profitable here
  opts.tol = 1e-12;
  // Start from a uniform small markup over cost.
  std::vector<double> p0 = c;
  for (auto& p : p0) p += 1.0 / alpha_;
  const auto objective = [&](std::span<const double> p) {
    return total_profit(v, c, p);
  };
  auto res = util::gradient_ascent(objective, std::move(p0), opts);
  PricingResult out;
  out.prices = std::move(res.x);
  out.profit = res.value;
  out.converged = res.converged;
  double markup = 0.0;
  for (std::size_t i = 0; i < out.prices.size(); ++i) {
    markup += out.prices[i] - c[i];
  }
  out.markup = markup / double(out.prices.size());
  return out;
}

double LogitModel::potential_profit_weight(double observed_demand) const {
  if (!(observed_demand > 0.0)) {
    throw std::invalid_argument("potential_profit_weight: demand must be > 0");
  }
  // Eq. 13: pi_i = K s_i / (alpha s0) is proportional to observed demand.
  return observed_demand;
}

double LogitModel::bundle_valuation(std::span<const double> valuations) const {
  if (valuations.empty()) {
    throw std::invalid_argument("bundle_valuation: empty bundle");
  }
  // Eq. 10, computed stably: v_b = max_v + ln(sum e^{alpha(v_i-max_v)})/alpha.
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  double sum = 0.0;
  for (double v : valuations) sum += std::exp(alpha_ * (v - vmax));
  return vmax + std::log(sum) / alpha_;
}

double LogitModel::bundle_cost(std::span<const double> valuations,
                               std::span<const double> costs) const {
  require_same_nonempty(valuations, costs, "bundle_cost");
  // Eq. 11: share-weighted average unit cost of the bundled flows.
  const double vmax = *std::max_element(valuations.begin(), valuations.end());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    const double w = std::exp(alpha_ * (valuations[i] - vmax));
    num += costs[i] * w;
    den += w;
  }
  return num / den;
}

ValuationFit LogitModel::fit_valuations(std::span<const double> demands,
                                        double blended_price,
                                        double no_purchase_share,
                                        double alpha) {
  if (demands.empty()) throw std::invalid_argument("fit_valuations: no demands");
  if (!(blended_price > 0.0)) {
    throw std::invalid_argument("fit_valuations: blended price must be > 0");
  }
  if (!(no_purchase_share > 0.0 && no_purchase_share < 1.0)) {
    throw std::invalid_argument("fit_valuations: s0 must be in (0, 1)");
  }
  if (!(alpha > 0.0)) throw std::invalid_argument("fit_valuations: alpha must be > 0");
  double total = 0.0;
  for (double q : demands) {
    if (!(q > 0.0)) throw std::invalid_argument("fit_valuations: demand must be > 0");
    total += q;
  }
  ValuationFit fit;
  // Q_i = K s_i with sum_i s_i = 1 - s0 pins K = sum q / (1 - s0).
  fit.market_size = total / (1.0 - no_purchase_share);
  fit.valuations.reserve(demands.size());
  for (double q : demands) {
    const double share = q * (1.0 - no_purchase_share) / total;
    // §4.1.2: v_i = (ln s_i - ln s0)/alpha + P0.
    fit.valuations.push_back(
        (std::log(share) - std::log(no_purchase_share)) / alpha +
        blended_price);
  }
  return fit;
}

double LogitModel::fit_gamma(std::span<const double> valuations,
                             std::span<const double> relative_costs,
                             double blended_price) const {
  require_same_nonempty(valuations, relative_costs, "fit_gamma");
  if (!(blended_price > 0.0)) {
    throw std::invalid_argument("fit_gamma: blended price must be > 0");
  }
  // First-order condition for the blended price P0 with c_i = gamma f(d_i):
  //   gamma = E (alpha P0 - 1 - E) / (alpha sum_i f(d_i) e_i),
  // with e_i = e^{alpha (v_i - P0)} and E = sum_i e_i (§4.1.3).
  double e_sum = 0.0, fe_sum = 0.0;
  for (std::size_t i = 0; i < valuations.size(); ++i) {
    if (!(relative_costs[i] > 0.0)) {
      throw std::invalid_argument("fit_gamma: relative costs must be > 0");
    }
    const double e = std::exp(alpha_ * (valuations[i] - blended_price));
    e_sum += e;
    fe_sum += relative_costs[i] * e;
  }
  const double gamma =
      e_sum * (alpha_ * blended_price - 1.0 - e_sum) / (alpha_ * fe_sum);
  if (!(gamma > 0.0)) {
    throw std::domain_error(
        "fit_gamma: calibration infeasible (alpha * P0 <= 1/s0); the blended "
        "rate cannot be profit-maximizing for these parameters");
  }
  return gamma;
}

}  // namespace manytiers::demand
