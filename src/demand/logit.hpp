// Logit demand (paper §3.2.2).
//
// Each of K consumers picks the flow with the highest utility
// u_ij = alpha (v_i - p_i) + eps_ij (Gumbel eps), or opts out. Market
// shares follow the logit formula (Eq. 6); demands are NOT separable — the
// outside option s0 couples every price.
//
//   s_i = exp(alpha (v_i - p_i)) / (sum_j exp(alpha (v_j - p_j)) + 1)
//   Q_i = K s_i                                                   (Eq. 7)
//   Pi  = K sum_i s_i (p_i - c_i)                                 (Eq. 8)
//   p*_i = c_i + 1 / (alpha s0)                                   (Eq. 9)
//
// Eq. 9 says every flow carries the same markup m = 1/(alpha s0) at the
// optimum; s0 itself depends on the prices, so m solves the 1-D fixed
// point m = (1 + sum_i e^{alpha (v_i - c_i - m)})/alpha, which this class
// solves exactly by bisection. The paper's gradient-descent heuristic is
// also provided (`gradient_prices`) and agrees to numerical tolerance.
#pragma once

#include <span>
#include <vector>

#include "demand/demand.hpp"

namespace manytiers::demand {

class LogitModel {
 public:
  // alpha > 0 is the elasticity; market_size K > 0 is the consumer count.
  LogitModel(double alpha, double market_size);

  double alpha() const { return alpha_; }
  double market_size() const { return market_size_; }

  // Market shares s_i for the given prices (Eq. 6); same length as v.
  std::vector<double> shares(std::span<const double> valuations,
                             std::span<const double> prices) const;
  // Share of consumers who buy nothing: s0 = 1 - sum_i s_i.
  double no_purchase_share(std::span<const double> valuations,
                           std::span<const double> prices) const;

  // Demand for each flow: Q_i = K s_i (Eq. 7).
  std::vector<double> quantities(std::span<const double> valuations,
                                 std::span<const double> prices) const;

  // Total profit at the given prices (Eq. 8).
  double total_profit(std::span<const double> valuations,
                      std::span<const double> costs,
                      std::span<const double> prices) const;

  // Expected consumer surplus: the standard logit welfare measure
  // K/alpha * ln(sum_i e^{alpha (v_i - p_i)} + 1).
  double consumer_surplus(std::span<const double> valuations,
                          std::span<const double> prices) const;

  struct PricingResult {
    std::vector<double> prices;
    double markup = 0.0;  // common p_i - c_i at the optimum
    double profit = 0.0;
    bool converged = false;
  };

  // Exact profit-maximizing prices via the equal-markup fixed point.
  PricingResult optimal_prices(std::span<const double> valuations,
                               std::span<const double> costs) const;

  // The paper's heuristic: projected gradient ascent from p = c upward.
  PricingResult gradient_prices(std::span<const double> valuations,
                                std::span<const double> costs) const;

  // Potential profit ranking weight (Eq. 13): proportional to share at the
  // blended calibration point, i.e. to observed demand.
  double potential_profit_weight(double observed_demand) const;

  // --- Bundling (Eq. 10 / Eq. 11) ---
  double bundle_valuation(std::span<const double> valuations) const;
  double bundle_cost(std::span<const double> valuations,
                     std::span<const double> costs) const;

  // --- Calibration (paper §4.1.2 / §4.1.3) ---

  // Fit valuations from observed demands at blended rate P0, given the
  // fraction s0 of the market that buys nothing; also returns K.
  static ValuationFit fit_valuations(std::span<const double> demands,
                                     double blended_price,
                                     double no_purchase_share, double alpha);

  // Cost scale gamma making P0 the optimal single blended price, given
  // relative costs f(d_i):
  //   gamma = E (alpha P0 - 1 - E) / (alpha sum f(d_i) e_i),
  //   e_i = e^{alpha (v_i - P0)}, E = sum e_i.
  double fit_gamma(std::span<const double> valuations,
                   std::span<const double> relative_costs,
                   double blended_price) const;

 private:
  double alpha_;
  double market_size_;
};

}  // namespace manytiers::demand
