// Constant-elasticity demand (paper §3.2.1).
//
//   Q_i(p_i) = (v_i / p_i)^alpha,      alpha in (1, inf)
//
// Demands are separable, so each flow (or bundle) is priced independently.
// All the closed forms from the paper are implemented here:
//   * per-flow profit-maximizing price       p*_i = alpha c_i / (alpha - 1)   (Eq. 4)
//   * bundle profit-maximizing price                                          (Eq. 5)
//   * potential profit of a flow                                              (Eq. 12)
//   * valuation fit from observed demand      v_i = q_i^(1/alpha) P0          (§4.1.2)
//   * cost-scale fit                           gamma                          (§4.1.3)
#pragma once

#include <span>
#include <vector>

#include "demand/demand.hpp"

namespace manytiers::demand {

class CedModel {
 public:
  // alpha is the price sensitivity; must be > 1 for finite optima.
  explicit CedModel(double alpha);

  double alpha() const { return alpha_; }

  // Quantity demanded at unit price p (Eq. 2).
  double quantity(double valuation, double price) const;

  // Profit contribution of one flow at price p: Q(p) * (p - c) (Eq. 3 term).
  double flow_profit(double valuation, double cost, double price) const;

  // Profit-maximizing price for a single flow (Eq. 4).
  double optimal_price(double cost) const;

  // Profit at the optimal single-flow price (Eq. 12, "potential profit").
  double potential_profit(double valuation, double cost) const;

  // Consumer surplus of one flow at price p: the area under the demand
  // curve above p, v^alpha p^(1-alpha) / (alpha - 1). Finite because
  // alpha > 1. Used for the welfare accounting of paper Fig. 1.
  double consumer_surplus(double valuation, double price) const;

  // Profit-maximizing common price for a bundle of flows (Eq. 5).
  double bundle_price(std::span<const double> valuations,
                      std::span<const double> costs) const;

  // Total profit when every flow i is charged prices[i].
  double total_profit(std::span<const double> valuations,
                      std::span<const double> costs,
                      std::span<const double> prices) const;

  // --- Calibration (paper §4.1.2 / §4.1.3) ---

  // Valuations from observed demands q_i at blended rate P0.
  ValuationFit fit_valuations(std::span<const double> demands,
                              double blended_price) const;

  // Cost scale gamma such that the blended rate P0 is the single-bundle
  // profit-maximizing price, given relative costs f(d_i).
  double fit_gamma(std::span<const double> valuations,
                   std::span<const double> relative_costs,
                   double blended_price) const;

 private:
  double alpha_;
};

}  // namespace manytiers::demand
