// Shared vocabulary for the demand models (paper §3.2).
//
// Both models describe, per flow i, how the quantity demanded Q_i responds
// to the price vector, given a fitted valuation v_i. The pricing engine
// only needs the operations in this header; CedModel and LogitModel each
// provide them with their own closed forms.
#pragma once

#include <span>
#include <vector>

namespace manytiers::demand {

enum class DemandKind { ConstantElasticity, Logit };

// A flow as the demand models see it: fitted valuation and unit cost.
struct ModeledFlow {
  double valuation = 0.0;  // v_i
  double cost = 0.0;       // c_i ($/Mbps)
};

// Result of a calibration step (paper §4.1): per-flow valuations plus any
// model-specific scale (the logit model also needs the market size K).
struct ValuationFit {
  std::vector<double> valuations;
  double market_size = 0.0;  // K for logit; unused (0) for CED
};

}  // namespace manytiers::demand
