// Duopoly transit competition (the paper's noted future work).
//
// The paper models a single profit-maximizing ISP and folds competition
// into the residual demand curves (§3.2.1), noting explicitly that it
// does "not capture full dynamic interaction between competing ISPs
// (e.g., price wars)". This module adds that interaction for the logit
// market: two ISPs sell transit for the same flows, each consumer picks
// ISP A's offer, ISP B's offer, or the outside option, and the ISPs
// alternate best responses until prices converge.
//
// Each ISP's best response given the rival's prices is an equal-markup
// fixed point like the monopoly case: with p_i = c_i + m, the first-order
// conditions give m = (1 + E_rival + E_own(m)) / alpha evaluated at the
// optimum, where E are the rival's and own exponential attraction sums.
// h(m) = m - g(m) is strictly increasing, so bisection solves it exactly.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace manytiers::market {

// One competitor: per-flow unit costs, and a price vector that evolves.
struct Transiter {
  std::string name;
  std::vector<double> costs;   // c_i per flow
  std::vector<double> prices;  // current prices (start anywhere >= cost)
};

struct CompetitionConfig {
  double alpha = 1.1;          // logit elasticity
  double market_size = 1000.0; // consumers K
  int max_rounds = 500;        // alternating best-response rounds
  double tolerance = 1e-10;    // max price change declaring convergence
};

struct CompetitionResult {
  Transiter a;
  Transiter b;
  int rounds = 0;
  bool converged = false;
  double profit_a = 0.0;
  double profit_b = 0.0;
  double share_a = 0.0;  // total market share won by A
  double share_b = 0.0;
  double no_purchase_share = 0.0;
};

class Duopoly {
 public:
  // Both ISPs must quote the same flows (equal-size valuation/cost sets).
  Duopoly(std::vector<double> valuations, CompetitionConfig config);

  // Exact best response of `self` to `rival`'s current prices: the
  // equal-markup fixed point given the rival's attraction mass.
  std::vector<double> best_response(const Transiter& self,
                                    const Transiter& rival) const;

  // Alternate best responses until convergence (or max_rounds).
  CompetitionResult run(Transiter a, Transiter b) const;

  // Profit of `self` at the current price vectors.
  double profit(const Transiter& self, const Transiter& rival) const;

  // Monopoly benchmark: the profit A would earn with B absent.
  double monopoly_profit(const Transiter& alone) const;

  const std::vector<double>& valuations() const { return valuations_; }

 private:
  // Logit shares of self's offers given both ISPs' prices.
  std::vector<double> shares(const Transiter& self,
                             const Transiter& rival) const;

  std::vector<double> valuations_;
  CompetitionConfig config_;
};

}  // namespace manytiers::market
