#include "market/competition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/optimize.hpp"

namespace manytiers::market {

namespace {

void require_flows(const std::vector<double>& v, const Transiter& t) {
  if (t.costs.size() != v.size() || t.prices.size() != v.size()) {
    throw std::invalid_argument("Duopoly: transiter '" + t.name +
                                "' must quote every flow");
  }
  // Prices may legitimately sit below some flows' costs: a blended rate
  // subsidizes expensive flows with cheap ones (paper §2.1).
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!(t.costs[i] > 0.0)) {
      throw std::invalid_argument("Duopoly: costs must be > 0");
    }
    if (!(t.prices[i] > 0.0)) {
      throw std::invalid_argument("Duopoly: prices must be > 0");
    }
  }
}

// Attraction mass sum_i e^{alpha (v_i - p_i)} of a price vector.
double attraction(const std::vector<double>& v, std::span<const double> p,
                  double alpha) {
  double total = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    total += std::exp(alpha * (v[i] - p[i]));
  }
  return total;
}

}  // namespace

Duopoly::Duopoly(std::vector<double> valuations, CompetitionConfig config)
    : valuations_(std::move(valuations)), config_(config) {
  if (valuations_.empty()) {
    throw std::invalid_argument("Duopoly: no flows");
  }
  if (!(config_.alpha > 0.0) || !(config_.market_size > 0.0)) {
    throw std::invalid_argument("Duopoly: alpha and market size must be > 0");
  }
  if (config_.max_rounds < 1) {
    throw std::invalid_argument("Duopoly: max_rounds must be >= 1");
  }
}

std::vector<double> Duopoly::shares(const Transiter& self,
                                    const Transiter& rival) const {
  const double alpha = config_.alpha;
  const double denom = 1.0 + attraction(valuations_, self.prices, alpha) +
                       attraction(valuations_, rival.prices, alpha);
  std::vector<double> out(valuations_.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(alpha * (valuations_[i] - self.prices[i])) / denom;
  }
  return out;
}

double Duopoly::profit(const Transiter& self, const Transiter& rival) const {
  require_flows(valuations_, self);
  require_flows(valuations_, rival);
  const auto s = shares(self, rival);
  double total = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    total += s[i] * (self.prices[i] - self.costs[i]);
  }
  return config_.market_size * total;
}

std::vector<double> Duopoly::best_response(const Transiter& self,
                                           const Transiter& rival) const {
  require_flows(valuations_, self);
  require_flows(valuations_, rival);
  const double alpha = config_.alpha;
  // Multiproduct-logit best response: the optimal common markup satisfies
  // m = 1 / (alpha (1 - S_self)), where S_self is the firm's total share.
  // With D = 1 + E_rival + E_self(m) and 1 - S_self = (1 + E_rival)/D,
  // the fixed point is m = (1 + E_rival + E_self(m)) / (alpha (1 +
  // E_rival)); h(m) = m - g(m) is strictly increasing, so bisection is
  // exact. (The monopoly case has E_rival = 0 and reduces to Eq. 9.)
  const double outside = 1.0 + attraction(valuations_, rival.prices, alpha);
  double self_mass = 0.0;  // at m = 0
  for (std::size_t i = 0; i < valuations_.size(); ++i) {
    self_mass += std::exp(alpha * (valuations_[i] - self.costs[i]));
  }
  const auto g = [&](double m) {
    return (outside + self_mass * std::exp(-alpha * m)) / (alpha * outside);
  };
  const double hi = g(0.0);
  const double m = util::find_root([&](double x) { return x - g(x); }, 1e-12,
                                   hi, 1e-13 * std::max(1.0, hi));
  std::vector<double> prices(valuations_.size());
  for (std::size_t i = 0; i < prices.size(); ++i) {
    prices[i] = self.costs[i] + m;
  }
  return prices;
}

double Duopoly::monopoly_profit(const Transiter& alone) const {
  // A rival with unbuyable prices contributes no attraction.
  Transiter ghost;
  ghost.name = "(absent)";
  ghost.costs.assign(valuations_.size(), 1.0);
  const double vmax =
      *std::max_element(valuations_.begin(), valuations_.end());
  ghost.prices.assign(valuations_.size(), vmax + 1e4);
  Transiter self = alone;
  self.prices = best_response(self, ghost);
  return profit(self, ghost);
}

CompetitionResult Duopoly::run(Transiter a, Transiter b) const {
  require_flows(valuations_, a);
  require_flows(valuations_, b);
  CompetitionResult result;
  for (int round = 1; round <= config_.max_rounds; ++round) {
    result.rounds = round;
    double max_change = 0.0;
    for (Transiter* mover : {&a, &b}) {
      const Transiter& rival = mover == &a ? b : a;
      auto next = best_response(*mover, rival);
      for (std::size_t i = 0; i < next.size(); ++i) {
        max_change = std::max(max_change,
                              std::abs(next[i] - mover->prices[i]));
      }
      mover->prices = std::move(next);
    }
    if (max_change < config_.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.profit_a = profit(a, b);
  result.profit_b = profit(b, a);
  const auto sa = shares(a, b);
  const auto sb = shares(b, a);
  for (const double s : sa) result.share_a += s;
  for (const double s : sb) result.share_b += s;
  result.no_purchase_share = 1.0 - result.share_a - result.share_b;
  result.a = std::move(a);
  result.b = std::move(b);
  return result;
}

}  // namespace manytiers::market
