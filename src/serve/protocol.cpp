#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <system_error>

namespace manytiers::serve {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Escape the two characters our own emitter can ever need escaped
// (error messages echo client-supplied market names).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

// --- Field scanning, same discipline as the batch report reader: our
// own writer never emits nested objects except the schedule tier array
// (handled explicitly), so key scanning is exact on well-formed input
// and merely throws on garbage.

std::optional<std::string_view> find_field(std::string_view payload,
                                           std::string_view key) {
  // Stack-built needle: this runs ten times per request on the daemon's
  // hot path, and a heap-allocated needle per field lookup was the
  // single biggest slice of parse time.
  char needle[32];
  if (key.size() + 3 > sizeof needle) return std::nullopt;
  needle[0] = '"';
  std::memcpy(needle + 1, key.data(), key.size());
  needle[key.size() + 1] = '"';
  needle[key.size() + 2] = ':';
  const std::size_t at =
      payload.find(std::string_view(needle, key.size() + 3));
  if (at == std::string_view::npos) return std::nullopt;
  return payload.substr(at + key.size() + 3);
}

std::string_view require_field(std::string_view payload, std::string_view key) {
  const auto rest = find_field(payload, key);
  if (!rest) {
    throw std::invalid_argument("serve protocol: missing field \"" +
                                std::string(key) + "\"");
  }
  return *rest;
}

std::string parse_string_token(std::string_view rest, std::string_view key) {
  if (rest.empty() || rest.front() != '"') {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a string");
  }
  rest.remove_prefix(1);
  std::string out;
  for (std::size_t i = 0; i < rest.size(); ++i) {
    if (rest[i] == '\\') {
      if (i + 1 >= rest.size()) break;
      out += rest[++i];
      continue;
    }
    if (rest[i] == '"') return out;
    out += rest[i];
  }
  throw std::invalid_argument("serve protocol: unterminated string field \"" +
                              std::string(key) + "\"");
}

std::string_view number_token(std::string_view rest, std::string_view key) {
  std::size_t end = 0;
  while (end < rest.size() &&
         (std::isdigit(static_cast<unsigned char>(rest[end])) ||
          rest[end] == '-' || rest[end] == '+' || rest[end] == '.' ||
          rest[end] == 'e' || rest[end] == 'E' || rest[end] == 'i' ||
          rest[end] == 'n' || rest[end] == 'f' || rest[end] == 'a')) {
    ++end;
  }
  if (end == 0) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a number");
  }
  return rest.substr(0, end);
}

// strtod/strtoull need NUL termination; a stack copy keeps the number
// parsers allocation-free (%.17g tokens are at most a few dozen chars,
// and number_token caps what can reach here).
struct TokenBuf {
  char data[64];
  std::size_t size = 0;
  bool fits(std::string_view token) {
    if (token.size() >= sizeof data) return false;
    std::memcpy(data, token.data(), token.size());
    data[token.size()] = '\0';
    size = token.size();
    return true;
  }
};

double parse_double_token(std::string_view rest, std::string_view key) {
  const std::string_view token = number_token(rest, key);
  TokenBuf buf;
  char* end = nullptr;
  errno = 0;
  const double value = buf.fits(token) ? std::strtod(buf.data, &end) : 0.0;
  if (end != buf.data + buf.size || errno == ERANGE) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a valid number: " +
                                std::string(token));
  }
  return value;
}

std::uint64_t parse_u64_token(std::string_view rest, std::string_view key) {
  const std::string_view token = number_token(rest, key);
  if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0]))) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a non-negative integer: " +
                                std::string(token));
  }
  TokenBuf buf;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value =
      buf.fits(token) ? std::strtoull(buf.data, &end, 10) : 0;
  if (end != buf.data + buf.size || errno == ERANGE) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a valid integer: " +
                                std::string(token));
  }
  return value;
}

std::int64_t parse_i64_token(std::string_view rest, std::string_view key) {
  const std::string_view token = number_token(rest, key);
  TokenBuf buf;
  char* end = nullptr;
  errno = 0;
  const long long value = buf.fits(token) ? std::strtoll(buf.data, &end, 10) : 0;
  if (end != buf.data + buf.size || errno == ERANGE) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\" is not a valid integer: " +
                                std::string(token));
  }
  return value;
}

std::string req_string(std::string_view payload, std::string_view key) {
  return parse_string_token(require_field(payload, key), key);
}

std::uint64_t req_u64(std::string_view payload, std::string_view key) {
  return parse_u64_token(require_field(payload, key), key);
}

double req_double(std::string_view payload, std::string_view key) {
  return parse_double_token(require_field(payload, key), key);
}

bool parse_bool_token(std::string_view rest, std::string_view key) {
  if (rest.substr(0, 4) == "true") return true;
  if (rest.substr(0, 5) == "false") return false;
  throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                              "\" is not a boolean");
}

}  // namespace

std::string_view to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::Price: return "price";
    case QueryKind::Schedule: return "schedule";
    case QueryKind::Requote: return "requote";
    case QueryKind::Reload: return "reload";
    case QueryKind::Health: return "health";
    case QueryKind::Stats: return "stats";
  }
  throw std::invalid_argument("unknown query kind");
}

QueryKind parse_query_kind(std::string_view name) {
  if (name == "price") return QueryKind::Price;
  if (name == "schedule") return QueryKind::Schedule;
  if (name == "requote") return QueryKind::Requote;
  if (name == "reload") return QueryKind::Reload;
  if (name == "health") return QueryKind::Health;
  if (name == "stats") return QueryKind::Stats;
  throw std::invalid_argument(
      "serve protocol: unknown query kind \"" + std::string(name) +
      "\"; known: price, schedule, requote, reload, health, stats");
}

std::string serialize_request(const Request& request) {
  std::string out = "{\"id\":" + std::to_string(request.id) + ",\"kind\":\"" +
                    std::string(to_string(request.kind)) + "\"";
  switch (request.kind) {
    case QueryKind::Price:
      out += ",\"market\":\"" + json_escape(request.market) +
             "\",\"strategy\":\"" + json_escape(request.strategy) +
             "\",\"bundles\":" + std::to_string(request.bundles) +
             ",\"q\":" + fmt_double(request.q) +
             ",\"d\":" + fmt_double(request.d) +
             ",\"class\":" + std::to_string(request.cost_class);
      break;
    case QueryKind::Schedule:
      out += ",\"market\":\"" + json_escape(request.market) +
             "\",\"strategy\":\"" + json_escape(request.strategy) +
             "\",\"bundles\":" + std::to_string(request.bundles);
      break;
    case QueryKind::Requote:
      out += ",\"market\":\"" + json_escape(request.market) +
             "\",\"strategy\":\"" + json_escape(request.strategy) +
             "\",\"bundles\":" + std::to_string(request.bundles) +
             ",\"flow\":" + std::to_string(request.flow);
      break;
    case QueryKind::Reload:
      if (request.seed) out += ",\"seed\":" + std::to_string(*request.seed);
      if (request.n_flows) {
        out += ",\"n_flows\":" + std::to_string(*request.n_flows);
      }
      if (!request.updates.empty()) {
        out += ",\"updates\":\"" + json_escape(request.updates) + "\"";
      }
      break;
    case QueryKind::Health:
    case QueryKind::Stats:
      break;  // id + kind is the whole request
  }
  out += '}';
  return out;
}

Request parse_request(std::string_view payload) {
  if (payload.empty() || payload.front() != '{' || payload.back() != '}') {
    throw std::invalid_argument(
        "serve protocol: request payload is not a JSON object");
  }
  Request request;
  request.id = req_u64(payload, "id");
  request.kind = parse_query_kind(req_string(payload, "kind"));
  switch (request.kind) {
    case QueryKind::Price:
      request.market = req_string(payload, "market");
      request.strategy = req_string(payload, "strategy");
      request.bundles = req_u64(payload, "bundles");
      request.q = req_double(payload, "q");
      request.d = req_double(payload, "d");
      request.cost_class = req_u64(payload, "class");
      break;
    case QueryKind::Schedule:
      request.market = req_string(payload, "market");
      request.strategy = req_string(payload, "strategy");
      request.bundles = req_u64(payload, "bundles");
      break;
    case QueryKind::Requote:
      request.market = req_string(payload, "market");
      request.strategy = req_string(payload, "strategy");
      request.bundles = req_u64(payload, "bundles");
      request.flow = req_u64(payload, "flow");
      break;
    case QueryKind::Reload:
      if (const auto rest = find_field(payload, "seed")) {
        request.seed = parse_u64_token(*rest, "seed");
      }
      if (const auto rest = find_field(payload, "n_flows")) {
        request.n_flows = parse_u64_token(*rest, "n_flows");
      }
      if (const auto rest = find_field(payload, "updates")) {
        request.updates = parse_string_token(*rest, "updates");
      }
      break;
    case QueryKind::Health:
    case QueryKind::Stats:
      break;
  }
  return request;
}

// Append-style emitters for the response path: the daemon serializes a
// response per request, so the builder avoids the temporary strings the
// operator+ chains on the request side (client-built, once per call)
// can afford.
void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(v));
  out.append(buf, std::size_t(n));
}

void append_double(std::string& out, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  out.append(buf, std::size_t(n));
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const int n =
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out.append(buf, std::size_t(n));
}

std::string serialize_response(const Response& response) {
  std::string out;
  out.reserve(128 + response.tiers.size() * 128);
  out += "{\"id\":";
  append_u64(out, response.id);
  out += response.ok ? ",\"ok\":true" : ",\"ok\":false";
  out += ",\"epoch\":";
  append_u64(out, response.epoch);
  if (!response.ok) {
    // The stable code token first (clients branch on it), then the
    // human-readable message. An empty code serializes as bad_request so
    // every error frame carries a token.
    out += ",\"code\":\"";
    out += response.code.empty() ? std::string(kCodeBadRequest)
                                 : json_escape(response.code);
    out += "\",\"error\":\"";
    out += json_escape(response.error);
    out += "\"}";
    return out;
  }
  out += ",\"kind\":\"";
  out += to_string(response.kind);
  out += '"';
  switch (response.kind) {
    case QueryKind::Price:
      out += ",\"tier\":";
      append_u64(out, response.tier);
      out += ",\"price\":";
      append_double(out, response.price);
      out += ",\"rel_cost\":";
      append_double(out, response.rel_cost);
      break;
    case QueryKind::Requote:
      out += ",\"tier\":";
      append_u64(out, response.tier);
      out += ",\"price\":";
      append_double(out, response.price);
      out += ",\"rel_cost\":";
      append_double(out, response.rel_cost);
      out += ",\"blended_price\":";
      append_double(out, response.blended_price);
      break;
    case QueryKind::Schedule: {
      out += ",\"capture\":";
      if (response.capture_text.empty()) {
        append_double(out, response.capture);
      } else {
        out += response.capture_text;
      }
      out += ",\"tiers\":[";
      for (std::size_t i = 0; i < response.tiers.size(); ++i) {
        const TierInfo& tier = response.tiers[i];
        if (i != 0) out += ',';
        out += "{\"tier\":";
        append_u64(out, i);
        out += ",\"price\":";
        append_double(out, tier.price);
        out += ",\"f_lo\":";
        append_double(out, tier.rel_cost_lo);
        out += ",\"f_hi\":";
        append_double(out, tier.rel_cost_hi);
        out += ",\"flows\":";
        append_u64(out, tier.n_flows);
        out += ",\"demand_mbps\":";
        append_double(out, tier.demand_mbps);
        out += '}';
      }
      out += ']';
      break;
    }
    case QueryKind::Reload:
      out += ",\"markets\":";
      append_u64(out, response.markets);
      out += ",\"recalibrated\":";
      append_u64(out, response.recalibrated);
      break;
    case QueryKind::Health:
      out += ",\"state\":\"";
      out += json_escape(response.state);
      out += "\",\"active_connections\":";
      append_u64(out, response.active_connections);
      out += ",\"inflight\":";
      append_u64(out, response.inflight);
      out += ",\"shed\":";
      append_u64(out, response.shed);
      out += ",\"markets\":";
      append_u64(out, response.markets);
      break;
    case QueryKind::Stats: {
      // Scalar fields first so top-level key scans can never collide
      // with a metric name inside the arrays below.
      out += ",\"version\":\"";
      out += json_escape(response.version.empty()
                             ? std::string(kProtocolVersion)
                             : response.version);
      out += "\",\"t_us\":";
      append_u64(out, response.t_us);
      out += ",\"pid\":";
      append_i64(out, response.stats_pid);
      out += ",\"state\":\"";
      out += json_escape(response.state);
      out += "\",\"active_connections\":";
      append_u64(out, response.active_connections);
      out += ",\"inflight\":";
      append_u64(out, response.inflight);
      out += ",\"shed\":";
      append_u64(out, response.shed);
      out += ",\"markets\":";
      append_u64(out, response.markets);
      out += ",\"counters\":[";
      for (std::size_t i = 0; i < response.stats_counters.size(); ++i) {
        if (i != 0) out += ',';
        out += "[\"";
        out += json_escape(response.stats_counters[i].first);
        out += "\",";
        append_u64(out, response.stats_counters[i].second);
        out += ']';
      }
      out += "],\"gauges\":[";
      for (std::size_t i = 0; i < response.stats_gauges.size(); ++i) {
        if (i != 0) out += ',';
        out += "[\"";
        out += json_escape(response.stats_gauges[i].first);
        out += "\",";
        append_i64(out, response.stats_gauges[i].second);
        out += ']';
      }
      out += "],\"hists\":[";
      for (std::size_t i = 0; i < response.stats_hists.size(); ++i) {
        const StatsHist& h = response.stats_hists[i];
        if (i != 0) out += ',';
        out += "{\"name\":\"";
        out += json_escape(h.name);
        out += "\",\"count\":";
        append_u64(out, h.count);
        out += ",\"sum\":";
        append_double(out, h.sum);
        out += ",\"p50\":";
        append_double(out, h.p50);
        out += ",\"p99\":";
        append_double(out, h.p99);
        out += ",\"p999\":";
        append_double(out, h.p999);
        out += ",\"buckets\":[";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          if (b != 0) out += ',';
          out += '[';
          append_u64(out, h.buckets[b].first);
          out += ',';
          append_u64(out, h.buckets[b].second);
          out += ']';
        }
        out += "]}";
      }
      out += ']';
      break;
    }
  }
  out += '}';
  return out;
}

namespace {

// Scan a `[["name",V],...]` pair array (the stats counter and gauge
// lists). `parse_value` is handed the text at the value token; the
// token's extent comes from number_token, so both integer widths share
// this scanner.
template <typename Value, typename ParseValue>
std::vector<std::pair<std::string, Value>> parse_pair_array(
    std::string_view rest, std::string_view key, ParseValue parse_value) {
  const auto fail = [&key](const char* why) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\": " + why);
  };
  std::vector<std::pair<std::string, Value>> out;
  if (rest.empty() || rest.front() != '[') fail("not an array");
  rest.remove_prefix(1);
  for (;;) {
    while (!rest.empty() && (rest.front() == ',' || rest.front() == ' ')) {
      rest.remove_prefix(1);
    }
    if (rest.empty()) fail("unterminated array");
    if (rest.front() == ']') break;
    if (rest.front() != '[') fail("expected [name, value] pair");
    rest.remove_prefix(1);
    if (rest.empty() || rest.front() != '"') fail("pair name is not a string");
    std::string name;
    std::size_t i = 1;
    for (; i < rest.size() && rest[i] != '"'; ++i) {
      if (rest[i] == '\\' && i + 1 < rest.size()) ++i;
      name += rest[i];
    }
    if (i >= rest.size()) fail("unterminated pair name");
    rest.remove_prefix(i + 1);
    while (!rest.empty() && (rest.front() == ',' || rest.front() == ' ')) {
      rest.remove_prefix(1);
    }
    const std::string_view token = number_token(rest, key);
    out.emplace_back(std::move(name), parse_value(rest, key));
    rest.remove_prefix(token.size());
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty() || rest.front() != ']') fail("unterminated pair");
    rest.remove_prefix(1);
  }
  return out;
}

// Scan a stats `buckets` array: `[[b,n],...]` of unsigned pairs.
std::vector<std::pair<std::uint64_t, std::uint64_t>> parse_bucket_pairs(
    std::string_view rest, std::string_view key) {
  const auto fail = [&key](const char* why) {
    throw std::invalid_argument("serve protocol: field \"" + std::string(key) +
                                "\": " + why);
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  if (rest.empty() || rest.front() != '[') fail("not an array");
  rest.remove_prefix(1);
  for (;;) {
    while (!rest.empty() && (rest.front() == ',' || rest.front() == ' ')) {
      rest.remove_prefix(1);
    }
    if (rest.empty()) fail("unterminated array");
    if (rest.front() == ']') break;
    if (rest.front() != '[') fail("expected [bucket, count] pair");
    rest.remove_prefix(1);
    const std::string_view b_tok = number_token(rest, key);
    const std::uint64_t b = parse_u64_token(rest, key);
    rest.remove_prefix(b_tok.size());
    if (rest.empty() || rest.front() != ',') fail("malformed pair");
    rest.remove_prefix(1);
    const std::string_view n_tok = number_token(rest, key);
    const std::uint64_t n = parse_u64_token(rest, key);
    rest.remove_prefix(n_tok.size());
    if (rest.empty() || rest.front() != ']') fail("unterminated pair");
    rest.remove_prefix(1);
    out.emplace_back(b, n);
  }
  return out;
}

std::vector<StatsHist> parse_stats_hists(std::string_view rest) {
  const auto fail = [](const char* why) {
    throw std::invalid_argument(std::string("serve protocol: field \"hists\": ") +
                                why);
  };
  std::vector<StatsHist> out;
  if (rest.empty() || rest.front() != '[') fail("not an array");
  rest.remove_prefix(1);
  for (;;) {
    while (!rest.empty() && (rest.front() == ',' || rest.front() == ' ')) {
      rest.remove_prefix(1);
    }
    if (rest.empty()) fail("unterminated array");
    if (rest.front() == ']') break;
    if (rest.front() != '{') fail("expected histogram object");
    // Histogram objects are flat (the buckets array nests only
    // brackets), so the first '}' closes the object.
    const std::size_t close = rest.find('}');
    if (close == std::string_view::npos) fail("unterminated object");
    const std::string_view h_text = rest.substr(0, close + 1);
    StatsHist h;
    h.name = req_string(h_text, "name");
    h.count = req_u64(h_text, "count");
    h.sum = req_double(h_text, "sum");
    h.p50 = req_double(h_text, "p50");
    h.p99 = req_double(h_text, "p99");
    h.p999 = req_double(h_text, "p999");
    h.buckets = parse_bucket_pairs(require_field(h_text, "buckets"), "buckets");
    out.push_back(std::move(h));
    rest.remove_prefix(close + 1);
  }
  return out;
}

}  // namespace

Response parse_response(std::string_view payload) {
  if (payload.empty() || payload.front() != '{' || payload.back() != '}') {
    throw std::invalid_argument(
        "serve protocol: response payload is not a JSON object");
  }
  Response response;
  response.id = req_u64(payload, "id");
  response.ok = parse_bool_token(require_field(payload, "ok"), "ok");
  response.epoch = req_u64(payload, "epoch");
  if (!response.ok) {
    response.error = req_string(payload, "error");
    // Optional for wire-compat with pre-v1.1 error frames.
    if (const auto rest = find_field(payload, "code")) {
      response.code = parse_string_token(*rest, "code");
    }
    return response;
  }
  response.kind = parse_query_kind(req_string(payload, "kind"));
  switch (response.kind) {
    case QueryKind::Price:
      response.tier = req_u64(payload, "tier");
      response.price = req_double(payload, "price");
      response.rel_cost = req_double(payload, "rel_cost");
      break;
    case QueryKind::Requote:
      response.tier = req_u64(payload, "tier");
      response.price = req_double(payload, "price");
      response.rel_cost = req_double(payload, "rel_cost");
      response.blended_price = req_double(payload, "blended_price");
      break;
    case QueryKind::Schedule: {
      const std::string_view capture_rest = require_field(payload, "capture");
      response.capture_text =
          std::string(number_token(capture_rest, "capture"));
      response.capture = parse_double_token(capture_rest, "capture");
      // Tier objects parse one by one; each is flat, so scanning within
      // the braces of each element is exact.
      std::string_view rest = require_field(payload, "tiers");
      if (rest.empty() || rest.front() != '[') {
        throw std::invalid_argument(
            "serve protocol: field \"tiers\" is not an array");
      }
      rest.remove_prefix(1);
      while (!rest.empty() && rest.front() == '{') {
        const std::size_t close = rest.find('}');
        if (close == std::string_view::npos) {
          throw std::invalid_argument(
              "serve protocol: unterminated tier object");
        }
        const std::string_view tier_text = rest.substr(0, close + 1);
        TierInfo tier;
        tier.price = req_double(tier_text, "price");
        tier.rel_cost_lo = req_double(tier_text, "f_lo");
        tier.rel_cost_hi = req_double(tier_text, "f_hi");
        tier.n_flows = req_u64(tier_text, "flows");
        tier.demand_mbps = req_double(tier_text, "demand_mbps");
        response.tiers.push_back(tier);
        rest.remove_prefix(close + 1);
        if (!rest.empty() && rest.front() == ',') rest.remove_prefix(1);
      }
      break;
    }
    case QueryKind::Reload:
      response.markets = req_u64(payload, "markets");
      response.recalibrated = req_u64(payload, "recalibrated");
      break;
    case QueryKind::Health:
      response.state = req_string(payload, "state");
      response.active_connections = req_u64(payload, "active_connections");
      response.inflight = req_u64(payload, "inflight");
      response.shed = req_u64(payload, "shed");
      response.markets = req_u64(payload, "markets");
      break;
    case QueryKind::Stats: {
      response.version = req_string(payload, "version");
      response.t_us = req_u64(payload, "t_us");
      response.stats_pid = parse_i64_token(require_field(payload, "pid"), "pid");
      response.state = req_string(payload, "state");
      response.active_connections = req_u64(payload, "active_connections");
      response.inflight = req_u64(payload, "inflight");
      response.shed = req_u64(payload, "shed");
      response.markets = req_u64(payload, "markets");
      response.stats_counters = parse_pair_array<std::uint64_t>(
          require_field(payload, "counters"), "counters", parse_u64_token);
      response.stats_gauges = parse_pair_array<std::int64_t>(
          require_field(payload, "gauges"), "gauges", parse_i64_token);
      response.stats_hists = parse_stats_hists(require_field(payload, "hists"));
      break;
    }
  }
  return response;
}

std::string error_payload(std::uint64_t id, std::uint64_t epoch,
                          std::string_view message) {
  return error_payload(id, epoch, kCodeBadRequest, message);
}

std::string error_payload(std::uint64_t id, std::uint64_t epoch,
                          std::string_view code, std::string_view message) {
  Response response;
  response.id = id;
  response.ok = false;
  response.epoch = epoch;
  response.code = std::string(code);
  response.error = std::string(message);
  return serialize_response(response);
}

void append_frame(std::string& out, std::string_view payload) {
  if (payload.size() > kMaxFrame) {
    throw std::invalid_argument("serve protocol: payload exceeds kMaxFrame");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  char prefix[4] = {static_cast<char>(n & 0xff),
                    static_cast<char>((n >> 8) & 0xff),
                    static_cast<char>((n >> 16) & 0xff),
                    static_cast<char>((n >> 24) & 0xff)};
  out.append(prefix, 4);
  out.append(payload);
}

std::string encode_frame(std::string_view payload) {
  if (payload.size() > kMaxFrame) {
    throw std::invalid_argument("serve protocol: payload exceeds kMaxFrame");
  }
  const std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>(n & 0xff);
  out += static_cast<char>((n >> 8) & 0xff);
  out += static_cast<char>((n >> 16) & 0xff);
  out += static_cast<char>((n >> 24) & 0xff);
  out += payload;
  return out;
}

void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up surfaces as EPIPE, never a
    // process-killing SIGPIPE. send() requires a socket fd, which is
    // the only place this protocol runs.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "serve protocol: send");
    }
    off += static_cast<std::size_t>(n);
  }
}

FrameReader::Status FrameReader::next(std::string& payload) {
  // The wait clock for the read limits: one call to next() is exactly
  // one wait-for-a-frame episode, so both the idle window and the
  // slow-loris frame window are measured from here. (A frame's first
  // bytes may have landed in an earlier call's burst; that makes the
  // cutoff strictly more lenient, never tighter.)
  const auto wait_start = std::chrono::steady_clock::now();
  for (;;) {
    const std::size_t have = buffer_.size() - pos_;
    if (have >= 4) {
      const unsigned char* p =
          reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
      const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                                (static_cast<std::uint32_t>(p[1]) << 8) |
                                (static_cast<std::uint32_t>(p[2]) << 16) |
                                (static_cast<std::uint32_t>(p[3]) << 24);
      if (len == 0 || len > kMaxFrame) {
        throw FrameError(FrameError::Kind::BadLength,
                         "serve protocol: frame length " +
                             std::to_string(len) + " outside (0, " +
                             std::to_string(kMaxFrame) + "]");
      }
      if (have >= 4 + static_cast<std::size_t>(len)) {
        payload.assign(buffer_, pos_ + 4, len);
        pos_ += 4 + static_cast<std::size_t>(len);
        if (pos_ == buffer_.size()) {
          buffer_.clear();
          pos_ = 0;
        }
        return Status::Frame;
      }
    }
    // Compact once consumption passes half the buffer, so a pipelined
    // connection never grows the buffer without bound.
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    char chunk[64 * 1024];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof chunk, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired. With limits armed this is the polling tick
      // that lets us notice a wedged peer; without them it is the
      // client-side hard receive timeout.
      if (limits_.idle_timeout_ms == 0 && limits_.frame_timeout_ms == 0) {
        throw std::system_error(errno, std::generic_category(),
                                "serve protocol: recv timed out");
      }
      const auto waited_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - wait_start)
              .count();
      const bool mid_frame = buffer_.size() > pos_;
      if (mid_frame && limits_.frame_timeout_ms > 0 &&
          waited_ms >= limits_.frame_timeout_ms) {
        throw FrameError(FrameError::Kind::SlowPeer,
                         "serve protocol: peer did not complete its frame "
                         "within " +
                             std::to_string(limits_.frame_timeout_ms) +
                             " ms (slow-loris cutoff)");
      }
      if (!mid_frame && limits_.idle_timeout_ms > 0 &&
          waited_ms >= limits_.idle_timeout_ms) {
        throw FrameError(FrameError::Kind::Idle,
                         "serve protocol: connection idle past " +
                             std::to_string(limits_.idle_timeout_ms) + " ms");
      }
      continue;  // inside the window: keep waiting
    }
    if (n < 0) {
      throw std::system_error(errno, std::generic_category(),
                              "serve protocol: recv");
    }
    if (n == 0) {
      const std::size_t leftover = buffer_.size() - pos_;
      if (leftover == 0) return Status::Eof;
      throw FrameError(
          leftover < 4 ? FrameError::Kind::TornPrefix
                       : FrameError::Kind::MidFrame,
          "serve protocol: connection closed mid-frame (" +
              std::to_string(leftover) + " trailing bytes)");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    fill_time_ = std::chrono::steady_clock::now();
  }
}

bool FrameReader::buffered_frame() const {
  const std::size_t have = buffer_.size() - pos_;
  if (have < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
  const std::uint32_t len = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
  // A bad length is also "ready": next() will turn it into FrameError
  // without blocking.
  if (len == 0 || len > kMaxFrame) return true;
  return have >= 4 + static_cast<std::size_t>(len);
}

std::string roundtrip(int fd, std::string_view payload) {
  write_all(fd, encode_frame(payload));
  FrameReader reader(fd);
  std::string response;
  if (reader.next(response) != FrameReader::Status::Frame) {
    throw FrameError(FrameError::Kind::MidFrame,
                     "serve protocol: connection closed before response");
  }
  return response;
}

}  // namespace manytiers::serve
