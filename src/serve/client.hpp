// Client side of the serve protocol: connect, frame, exchange.
//
// A Client owns one connected socket and one persistent FrameReader
// (responses to pipelined requests can share a recv buffer, so the
// reader must outlive individual calls). call() is the blocking
// request/response path every tool uses; send()/recv() split the
// exchange for pipelined use (the load generator runs a sender and a
// receiver thread over one Client — FrameReader itself is
// single-consumer, so only the receiver thread may call recv()).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace manytiers::serve {

class Client {
 public:
  // Throw std::system_error when the endpoint does not answer.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  // Retry connect_unix until the daemon binds or the deadline passes —
  // the start-the-daemon-then-connect idiom every test and tool needs.
  static Client connect_unix_retry(const std::string& path, int timeout_ms);

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  // Bound every subsequent send()/recv() syscall to `ms` wall-clock
  // milliseconds (SO_SNDTIMEO / SO_RCVTIMEO; 0 = block forever). An
  // expired timeout surfaces as std::system_error with EAGAIN — a hung
  // daemon becomes a typed client-side failure instead of a wedge.
  void set_timeout_ms(int ms);

  // One blocking exchange. Throws FrameError / std::system_error on
  // transport faults, std::invalid_argument on unparseable responses.
  // If the send fails with EPIPE/ECONNRESET but the server already
  // queued a frame (a typed refuse-and-close), that frame is returned
  // instead of the transport error.
  Response call(const Request& request);
  // Same exchange, returning the raw response payload untouched — the
  // determinism test byte-compares these against batch output.
  std::string call_raw(std::string_view request_payload);

  // Pipelined halves: send never reads, recv never writes.
  void send(const Request& request);
  std::string recv_raw();
  Response recv() { return parse_response(recv_raw()); }

  int fd() const { return fd_; }
  void close();

 private:
  explicit Client(int fd);
  int fd_;
  std::unique_ptr<FrameReader> reader_;
};

}  // namespace manytiers::serve
