// manytiers_top — live monitor for a manytiers_serve daemon.
//
//   manytiers_top --socket /tmp/mt.sock
//   manytiers_top --socket /tmp/mt.sock --interval-ms 500 --iterations 10
//   manytiers_top --socket /tmp/mt.sock --raw | jq .
//
// Polls the `stats` wire query at a fixed interval and renders a
// top-style live table: request rate, interval latency percentiles
// (p50/p99/p999 derived from the serve.latency_us.all histogram's
// bucket *deltas* between polls, so the numbers describe the last
// interval, not the process lifetime), in-flight requests, active
// connections, shed / deadline / overload counts, and the snapshot
// epoch. stats is never load-shed and answered during drain, so the
// view survives exactly the moments it matters — an overload storm or
// a reload/drain sequence.
//
// On a TTY the screen repaints in place; on a pipe each poll appends
// one line (watchable with tail -f). --raw skips rendering entirely
// and prints the raw stats response payload per poll, one JSON object
// per line, for scripting.
//
// Exit codes: 0 after --iterations polls (or SIGINT via the default
// handler), 1 when the daemon cannot be reached or answers garbage,
// 2 on usage errors.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "serve/client.hpp"

namespace {

using namespace manytiers;

int usage(std::ostream& os, int code) {
  os << "usage: manytiers_top --socket PATH [options]\n"
        "  --socket PATH     the daemon's unix socket (required)\n"
        "  --interval-ms N   poll cadence (default 1000)\n"
        "  --iterations N    stop after N polls (default 0 = forever)\n"
        "  --retry-ms N      wait up to N ms for the daemon to bind\n"
        "  --raw             print raw stats JSON per poll, no table\n"
        "  --help            this text\n"
        "\n"
        "exit codes: 0 clean, 1 daemon unreachable/unparseable, 2 usage\n";
  return code;
}

std::uint64_t counter_value(const serve::Response& r, std::string_view name) {
  for (const auto& [n, v] : r.stats_counters) {
    if (n == name) return v;
  }
  return 0;
}

const serve::StatsHist* find_hist(const serve::Response& r,
                                  std::string_view name) {
  for (const auto& h : r.stats_hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// Interval view of a cumulative histogram: bucket deltas between two
// polls, clamped at zero (a daemon restart mid-watch resets counts).
obs::HistogramSnapshot hist_delta(const serve::StatsHist& now,
                                  const serve::StatsHist* before) {
  obs::HistogramSnapshot out;
  for (const auto& [b, n] : now.buckets) {
    std::uint64_t prev = 0;
    if (before != nullptr) {
      for (const auto& [pb, pn] : before->buckets) {
        if (pb == b) {
          prev = pn;
          break;
        }
      }
    }
    if (n > prev) {
      out.buckets.emplace_back(static_cast<std::size_t>(b), n - prev);
      out.count += n - prev;
    }
  }
  return out;
}

std::string fmt_us(double us) {
  char buf[32];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0fus", us);
  }
  return buf;
}

struct Row {
  std::string state;
  double rps = 0.0;
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
  std::uint64_t inflight = 0, conns = 0;
  std::uint64_t shed = 0, deadline = 0, overload = 0;
  std::uint64_t epoch = 0;
  std::uint64_t requests = 0;
};

Row make_row(const serve::Response& now, const serve::Response* prev) {
  Row row;
  row.state = now.state;
  row.inflight = now.inflight;
  row.conns = now.active_connections;
  row.shed = now.shed;
  row.deadline = counter_value(now, "serve.deadline_exceeded");
  row.overload = counter_value(now, "serve.shed.overloaded");
  row.epoch = now.epoch;
  row.requests = counter_value(now, "serve.requests");
  if (prev != nullptr && now.t_us > prev->t_us) {
    const std::uint64_t before = counter_value(*prev, "serve.requests");
    const double dt_s = static_cast<double>(now.t_us - prev->t_us) / 1e6;
    if (row.requests >= before) {
      row.rps = static_cast<double>(row.requests - before) / dt_s;
    }
  }
  if (const serve::StatsHist* all = find_hist(now, "serve.latency_us.all")) {
    const serve::StatsHist* all_before =
        prev != nullptr ? find_hist(*prev, "serve.latency_us.all") : nullptr;
    obs::HistogramSnapshot interval = hist_delta(*all, all_before);
    if (interval.count == 0 && all_before == nullptr) {
      // First poll: fall back to lifetime buckets so the table is never
      // blank while the first interval accrues.
      for (const auto& [b, n] : all->buckets) {
        interval.buckets.emplace_back(static_cast<std::size_t>(b), n);
        interval.count += n;
      }
    }
    row.p50 = obs::histogram_percentile(interval, 0.50);
    row.p99 = obs::histogram_percentile(interval, 0.99);
    row.p999 = obs::histogram_percentile(interval, 0.999);
  }
  return row;
}

void print_header(std::ostream& os) {
  os << "STATE       RPS      P50      P99     P999  INFL CONN     SHED "
        "DEADLN OVRLD EPOCH\n";
}

void print_row(std::ostream& os, const Row& row) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%-9s %6.1f %8s %8s %8s %5llu %4llu %8llu %6llu %5llu %5llu",
                row.state.c_str(), row.rps, fmt_us(row.p50).c_str(),
                fmt_us(row.p99).c_str(), fmt_us(row.p999).c_str(),
                static_cast<unsigned long long>(row.inflight),
                static_cast<unsigned long long>(row.conns),
                static_cast<unsigned long long>(row.shed),
                static_cast<unsigned long long>(row.deadline),
                static_cast<unsigned long long>(row.overload),
                static_cast<unsigned long long>(row.epoch));
  os << buf << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int interval_ms = 1000;
  long iterations = 0;
  int retry_ms = 0;
  bool raw = false;

  try {
    const auto next = [&](int& i) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(argv[i]) +
                                    " requires an argument");
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--socket") {
        socket_path = next(i);
      } else if (arg == "--interval-ms") {
        interval_ms = std::stoi(next(i));
      } else if (arg == "--iterations") {
        iterations = std::stol(next(i));
      } else if (arg == "--retry-ms") {
        retry_ms = std::stoi(next(i));
      } else if (arg == "--raw") {
        raw = true;
      } else {
        std::cerr << "manytiers_top: unknown flag " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (socket_path.empty()) {
      std::cerr << "manytiers_top: --socket is required\n";
      return usage(std::cerr, 2);
    }
    if (interval_ms <= 0) {
      std::cerr << "manytiers_top: --interval-ms must be positive\n";
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_top: " << err.what() << "\n";
    return 2;
  }

  const bool tty = ::isatty(STDOUT_FILENO) == 1 && !raw;
  serve::Request request;
  request.kind = serve::QueryKind::Stats;
  std::optional<serve::Response> prev;
  long polls = 0;
  bool printed_header = false;

  try {
    // One persistent connection: stats answers ride outside the
    // admission machinery, so the monitor never competes with query
    // load for a connection slot more than once.
    serve::Client client =
        retry_ms > 0 ? serve::Client::connect_unix_retry(socket_path, retry_ms)
                     : serve::Client::connect_unix(socket_path);
    client.set_timeout_ms(30000);
    for (;;) {
      request.id = static_cast<std::uint64_t>(polls + 1);
      const std::string payload =
          client.call_raw(serve::serialize_request(request));
      const serve::Response response = serve::parse_response(payload);
      if (!response.ok) {
        std::cerr << "manytiers_top: daemon answered: " << response.error
                  << "\n";
        return 1;
      }
      if (raw) {
        std::cout << payload << std::endl;
      } else {
        const Row row = make_row(response, prev ? &*prev : nullptr);
        if (tty) {
          // Home + clear: repaint the whole two-line view in place.
          std::cout << "\x1b[H\x1b[2J";
          print_header(std::cout);
          print_row(std::cout, row);
          std::cout.flush();
        } else {
          if (!printed_header) {
            print_header(std::cout);
            printed_header = true;
          }
          print_row(std::cout, row);
          std::cout.flush();
        }
      }
      prev = response;
      ++polls;
      if (iterations > 0 && polls >= iterations) return 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_top: " << err.what() << "\n";
    return 1;
  }
}
