#include "serve/dynamic.hpp"

#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "topology/internet2.hpp"
#include "util/parallel.hpp"
#include "workload/generators.hpp"

namespace manytiers::serve {

DynamicState::DynamicState(const driver::ExperimentGrid& grid)
    : grid_(grid), net_(topology::internet2_network()) {
  driver::validate_grid(grid_);
  if (grid_.sweep.kind != driver::SweepAxis::Kind::None) {
    throw std::invalid_argument(
        "serve dynamic: grid \"" + grid_.name +
        "\" has a sweep axis; the daemon serves base-parameter markets "
        "only");
  }
  const workload::GeneratorOptions gen{.seed = grid_.base.seed,
                                       .n_flows = grid_.base.n_flows};
  flows_.reserve(grid_.datasets.size());
  recosters_.reserve(grid_.datasets.size());
  for (const auto kind : grid_.datasets) {
    if (kind == workload::DatasetKind::Internet2) {
      // Epoch-0 distances equal all_pairs_distances(backbone) bit-for-
      // bit, so these flows match the startup snapshot's exactly.
      workload::TopologyBinding binding;
      flows_.push_back(workload::generate_internet2(
          gen, topology::internet2_network(), net_.distances(), &binding));
      recosters_.emplace_back(netdyn::FlowRecoster(std::move(binding)));
    } else {
      flows_.push_back(workload::generate_dataset(kind, gen));
      recosters_.emplace_back(std::nullopt);
    }
  }
}

DynamicState::Derived DynamicState::apply(
    const Snapshot& prev, std::span<const netdyn::NetworkUpdate> batch,
    std::uint64_t epoch, std::size_t threads) {
  static obs::Counter& rebuilt_counter =
      obs::Registry::instance().counter("serve.markets_recalibrated");
  const obs::Span span(
      "serve.dynamic_reload",
      obs::Tracer::instance().active()
          ? "{\"updates\":" + std::to_string(batch.size()) + "}"
          : std::string());

  const netdyn::DistanceDelta delta = net_.apply(batch);

  std::vector<std::size_t> dirty;
  if (!delta.empty()) {
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (!recosters_[i]) continue;
      if (recosters_[i]->recost(flows_[i], delta, net_.distances()) != 0) {
        dirty.push_back(i);
      }
    }
  }

  auto next = std::make_shared<Snapshot>();
  next->epoch = epoch;
  next->grid = prev.grid;
  next->markets = prev.markets;  // clean entries stay shared
  next->by_key = prev.by_key;    // same keys, same slots

  Derived out;
  if (!dirty.empty()) {
    // Markets enumerate dataset-major, so dataset ds owns the contiguous
    // index block [ds * per_ds, (ds + 1) * per_ds).
    const std::size_t n_cost = grid_.cost_kinds.size();
    const std::size_t n_dem = grid_.demand_kinds.size();
    const std::size_t per_ds = n_dem * n_cost;
    std::vector<std::size_t> rebuild;
    rebuild.reserve(dirty.size() * per_ds);
    for (const std::size_t ds : dirty) {
      for (std::size_t k = 0; k < per_ds; ++k) {
        rebuild.push_back(ds * per_ds + k);
      }
    }
    util::parallel_for(
        rebuild.size(),
        [&](std::size_t j) {
          const std::size_t m = rebuild[j];
          const std::size_t cost_i = m % n_cost;
          const std::size_t dem_i = (m / n_cost) % n_dem;
          const std::size_t ds_i = m / n_cost / n_dem;
          next->markets[m] =
              build_market_entry(grid_, flows_[ds_i], ds_i, dem_i, cost_i);
        },
        threads);
    out.recalibrated = rebuild.size();
    rebuilt_counter.add(rebuild.size());
  }
  out.snapshot = std::move(next);
  return out;
}

std::shared_ptr<const Snapshot> DynamicState::scratch_snapshot(
    std::uint64_t epoch, std::size_t threads) const {
  const topology::DistanceMatrix dist = net_.scratch_distances();
  std::vector<workload::FlowSet> flows = flows_;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (recosters_[i]) recosters_[i]->recost_all(flows[i], dist);
  }
  SnapshotBuildOptions build;
  build.threads = threads;
  build.epoch = epoch;
  build.flows_override = &flows;
  return build_snapshot(grid_, build);
}

}  // namespace manytiers::serve
