#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace manytiers::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument("serve: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket(AF_UNIX)");
  // A previous daemon's socket file would make bind fail with EADDRINUSE;
  // a stale file is indistinguishable from a live one at this layer, so
  // the caller picks fresh paths and we just clear leftovers.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: bind(" + path + ")");
  }
  if (::listen(fd, 128) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: bind(tcp " + std::to_string(port) + ")");
  }
  if (::listen(fd, 128) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: listen(tcp)");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: getsockname");
  }
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

struct KindMetrics {
  obs::Counter* requests;
  obs::Histogram* latency;
};

// Per-kind counters/histograms, resolved once (handles are
// process-stable).
KindMetrics kind_metrics(QueryKind kind) {
  obs::Registry& registry = obs::Registry::instance();
  static KindMetrics table[] = {
      {&registry.counter("serve.requests.price"),
       &registry.histogram("serve.latency_us.price")},
      {&registry.counter("serve.requests.schedule"),
       &registry.histogram("serve.latency_us.schedule")},
      {&registry.counter("serve.requests.requote"),
       &registry.histogram("serve.latency_us.requote")},
      {&registry.counter("serve.requests.reload"),
       &registry.histogram("serve.latency_us.reload")},
      {&registry.counter("serve.requests.health"),
       &registry.histogram("serve.latency_us.health")},
      {&registry.counter("serve.requests.stats"),
       &registry.histogram("serve.latency_us.stats")},
  };
  return table[static_cast<std::size_t>(kind)];
}

void set_socket_timeout(int fd, int which, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  // Best-effort: a socket that refuses the option still works, it just
  // loses the corresponding cutoff.
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof tv);
}

double us_since(std::chrono::steady_clock::time_point from) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - from)
      .count();
}

}  // namespace

void TailTracker::record(double latency_us) {
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  ring_[n % kWindow].store(latency_us, std::memory_order_relaxed);
  if ((n + 1) % kRecompute != 0) return;
  // One recompute at a time; losers skip rather than wait (the next
  // kRecompute-th sample will try again).
  bool expected = false;
  if (!recomputing_.compare_exchange_strong(expected, true,
                                            std::memory_order_acquire)) {
    return;
  }
  const std::size_t filled =
      static_cast<std::size_t>(std::min<std::uint64_t>(n + 1, kWindow));
  std::array<double, kWindow> copy;
  for (std::size_t i = 0; i < filled; ++i) {
    copy[i] = ring_[i].load(std::memory_order_relaxed);
  }
  const std::size_t rank = (filled * 99) / 100;
  std::nth_element(copy.begin(), copy.begin() + rank, copy.begin() + filled);
  p99_us_.store(copy[rank], std::memory_order_relaxed);
  recomputing_.store(false, std::memory_order_release);
}

Server::Server(driver::ExperimentGrid grid, ServerOptions options)
    : grid_(std::move(grid)), options_(std::move(options)) {
  if (options_.unix_path.empty()) {
    throw std::invalid_argument("serve: unix socket path is required");
  }
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) throw std::logic_error("serve: start() called twice");
  SnapshotBuildOptions build;
  build.threads = options_.threads;
  build.epoch = 1;
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = build_snapshot(grid_, build);
  }
  epoch_.store(1, std::memory_order_release);

  unix_fd_ = listen_unix(options_.unix_path);
  if (options_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(options_.tcp_port, &bound_tcp_port_);
  }
  started_ = true;
  accept_threads_.emplace_back([this] { accept_loop(unix_fd_); });
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { accept_loop(tcp_fd_); });
  }
}

void Server::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  // Closing the listener fds unblocks accept(); shutdown() on live
  // connection fds unblocks recv() in their handlers. Handlers own
  // nothing shared beyond the snapshot pointer, so after the joins the
  // teardown is complete.
  ::shutdown(unix_fd_, SHUT_RDWR);
  ::close(unix_fd_);
  if (tcp_fd_ >= 0) {
    ::shutdown(tcp_fd_, SHUT_RDWR);
    ::close(tcp_fd_);
  }
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& t : accept_threads_) t.join();
  accept_threads_.clear();
  // Second pass: a connection accepted concurrently with the flag flip
  // may have been registered after the shutdown loop above; with the
  // accept threads joined the table is now final.
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
  }
  reap_finished(/*join_all=*/true);
  ::unlink(options_.unix_path.c_str());
  started_ = false;
}

void Server::drain() {
  const std::lock_guard<std::mutex> lock(drain_mutex_);
  if (drained_ || stopping_.load(std::memory_order_relaxed) || !started_) {
    drained_ = true;
    return;
  }
  draining_.store(true, std::memory_order_relaxed);
  // Half-close every live connection: SHUT_RD delivers whatever the peer
  // already sent, then EOF. The handler finishes every in-flight frame —
  // byte-identical answers, flushed through the still-open write side —
  // and exits cleanly at the EOF. The accept loops stay up so late
  // connections get a typed "draining" refusal instead of ECONNREFUSED.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(options_.drain_timeout_ms, 0));
  bool all_done = false;
  while (!all_done) {
    {
      // Re-run the half-close pass every iteration: a connection the
      // accept loop admitted concurrently with the flag flip shows up
      // here one tick later and is drained like the rest.
      const std::lock_guard<std::mutex> conns_lock(conns_mutex_);
      for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
    }
    reap_finished(/*join_all=*/false);
    {
      const std::lock_guard<std::mutex> conns_lock(conns_mutex_);
      all_done = conns_.empty();
    }
    if (all_done) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      // Drain timeout: hard-close what's left. SHUT_RDWR wakes a handler
      // blocked in send() to a non-reading peer (EPIPE) as well as any
      // still mid-read, so the joins below cannot wedge.
      const std::lock_guard<std::mutex> conns_lock(conns_mutex_);
      for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  reap_finished(/*join_all=*/true);
  drained_ = true;
}

void Server::reap_finished(bool join_all) {
  std::vector<std::unique_ptr<Conn>> finished;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (join_all || conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  for (auto& conn : finished) {
    conn->thread.join();
    // The handler never closes its own fd: closing only after the join
    // means no handler can ever race a reused descriptor number.
    ::close(conn->fd);
  }
}

void Server::apply_socket_timeouts(int fd) const {
  // The read limits need recv to surface EAGAIN periodically; the poll
  // granularity is a quarter of the tightest window, clamped to
  // [10 ms, 500 ms], so a cutoff overshoots by at most ~25%.
  int tightest = 0;
  for (const int w : {options_.idle_timeout_ms, options_.frame_timeout_ms}) {
    if (w > 0 && (tightest == 0 || w < tightest)) tightest = w;
  }
  if (tightest > 0) {
    set_socket_timeout(fd, SO_RCVTIMEO,
                       std::clamp(tightest / 4, 10, 500));
  }
  if (options_.write_timeout_ms > 0) {
    set_socket_timeout(fd, SO_SNDTIMEO, options_.write_timeout_ms);
  }
}

void Server::refuse_connection_overloaded(int fd) {
  static obs::Counter& refused =
      obs::Registry::instance().counter("serve.shed.connections");
  refused.add();
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  try {
    // One typed error frame, then close: the peer learns *why* instead
    // of a silent RST. SO_SNDTIMEO is not armed on this fd, but a
    // just-accepted socket has an empty send buffer, so the write
    // cannot block.
    write_all(fd, encode_frame(error_payload(
                      0, epoch_.load(std::memory_order_relaxed),
                      kCodeOverloaded,
                      "server at --max-connections; retry with backoff")));
  } catch (const std::exception&) {
    // Peer vanished before reading its refusal; nothing owed.
  }
  ::close(fd);
}

void Server::refuse_connection_draining(int fd) {
  static obs::Counter& refused =
      obs::Registry::instance().counter("serve.shed.draining");
  refused.add();
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  // Bounded single-frame read so a health probe still gets a state
  // answer during drain; anything else (including silence) gets the
  // typed refusal. 100 ms cap keeps the accept loop responsive and the
  // whole phase is bounded by drain_timeout_ms anyway.
  set_socket_timeout(fd, SO_RCVTIMEO, 25);
  FrameReader reader(fd);
  reader.set_limits({/*idle_timeout_ms=*/100, /*frame_timeout_ms=*/100});
  std::uint64_t id = 0;
  bool answer_health = false;
  bool answer_stats = false;
  try {
    std::string payload;
    if (reader.next(payload) == FrameReader::Status::Frame) {
      const Request request = parse_request(payload);
      id = request.id;
      answer_health = request.kind == QueryKind::Health;
      answer_stats = request.kind == QueryKind::Stats;
    }
  } catch (const std::exception&) {
    // Torn/absent frame: fall through to the plain refusal.
  }
  try {
    Request probe;
    probe.id = id;
    std::string answer;
    if (answer_stats) {
      // A live monitor keeps its view through the drain, same as a
      // supervisor's health probe.
      probe.kind = QueryKind::Stats;
      answer = handle_stats(probe);
    } else if (answer_health) {
      probe.kind = QueryKind::Health;
      answer = handle_health(probe);
    } else {
      answer = error_payload(id, epoch_.load(std::memory_order_relaxed),
                             kCodeDraining,
                             "server is draining; reconnect later");
    }
    write_all(fd, encode_frame(answer));
  } catch (const std::exception&) {
  }
  ::close(fd);
}

void Server::accept_loop(int listen_fd) {
  static obs::Counter& connections =
      obs::Registry::instance().counter("serve.connections");
  static obs::Gauge& active_gauge =
      obs::Registry::instance().gauge("serve.active_connections");
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL after stop() closed the listener: clean exit.
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      refuse_connection_draining(fd);
      continue;
    }
    reap_finished(/*join_all=*/false);
    if (options_.max_connections > 0 &&
        live_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      refuse_connection_overloaded(fd);
      continue;
    }
    apply_socket_timeouts(fd);
    connections.add();
    active_gauge.set(static_cast<std::int64_t>(
        live_conns_.fetch_add(1, std::memory_order_relaxed) + 1));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    {
      // Publish and start under one lock: a drain/reap holding the
      // mutex must never see a Conn whose thread member is still being
      // move-assigned on this thread.
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { handle_connection(raw); });
    }
  }
}

void Server::handle_connection(Conn* conn) {
  static obs::Counter& protocol_errors =
      obs::Registry::instance().counter("serve.protocol_errors");
  static obs::Counter& idle_timeouts =
      obs::Registry::instance().counter("serve.timeout.idle");
  static obs::Counter& slow_timeouts =
      obs::Registry::instance().counter("serve.timeout.slow");
  static obs::Gauge& active_gauge =
      obs::Registry::instance().gauge("serve.active_connections");
  FrameReader reader(conn->fd);
  reader.set_limits(
      {options_.idle_timeout_ms, options_.frame_timeout_ms});
  std::string payload;
  std::string out;
  SnapCache cache;
  try {
    for (;;) {
      if (reader.next(payload) == FrameReader::Status::Eof) break;
      out.clear();  // keeps its capacity across iterations
      append_frame(out, handle_payload(payload, reader.last_fill(), cache));
      // Drain every request the client already pipelined before paying
      // for a write: under load this turns N round-trips into one
      // recv + one send.
      while (reader.buffered_frame()) {
        if (reader.next(payload) == FrameReader::Status::Eof) break;
        append_frame(out, handle_payload(payload, reader.last_fill(), cache));
      }
      write_all(conn->fd, out);
    }
  } catch (const FrameError& e) {
    switch (e.kind()) {
      case FrameError::Kind::BadLength:
        protocol_errors.add();
        // The stream still works in our direction; tell the client what
        // was wrong with its framing before hanging up.
        try {
          write_all(conn->fd, encode_frame(error_payload(
                                  0, epoch_.load(std::memory_order_relaxed),
                                  e.what())));
        } catch (const std::exception&) {
          // Peer is gone; the close below is all that's left.
        }
        break;
      case FrameError::Kind::Idle:
        // A parked or half-open peer: reaped quietly, not a protocol
        // fault — its slot goes back to the admission budget.
        idle_timeouts.add();
        break;
      case FrameError::Kind::SlowPeer:
        // Slow-loris writer failed the progress cutoff.
        slow_timeouts.add();
        break;
      case FrameError::Kind::TornPrefix:
      case FrameError::Kind::MidFrame:
        // The peer vanished mid-message; nothing to answer.
        protocol_errors.add();
        break;
    }
  } catch (const std::exception&) {
    // recv/send faults (ECONNRESET, EPIPE after shutdown, SO_SNDTIMEO
    // expiry on a peer that stopped reading): drop the connection. The
    // daemon itself never dies with a client.
    protocol_errors.add();
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  active_gauge.set(static_cast<std::int64_t>(
      live_conns_.fetch_sub(1, std::memory_order_relaxed) - 1));
  conn->done.store(true, std::memory_order_release);
}

// nullopt = admitted. The caller has already counted this request into
// inflight_ (`inflight_now` includes it), so the budget check is exact
// even when handlers race.
std::optional<std::string> Server::admission_check(
    const Request& request, std::chrono::steady_clock::time_point arrival,
    std::size_t inflight_now) {
  static obs::Counter& deadline_exceeded =
      obs::Registry::instance().counter("serve.deadline_exceeded");
  static obs::Counter& shed_overloaded =
      obs::Registry::instance().counter("serve.shed.overloaded");
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (options_.request_deadline_ms > 0 &&
      us_since(arrival) > 1e3 * options_.request_deadline_ms) {
    // The request aged out in the queue before any work started: answer
    // cheaply so the backlog drains instead of compounding.
    deadline_exceeded.add();
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    return error_payload(
        request.id, epoch, kCodeDeadline,
        "request waited past --request-deadline-ms " +
            std::to_string(options_.request_deadline_ms) + " before work");
  }
  const char* reason = nullptr;
  if (options_.max_inflight > 0 && inflight_now > options_.max_inflight) {
    reason = "in-flight budget --max-inflight exhausted";
  } else if (options_.shed_p99_us > 0.0 &&
             tail_.p99_us() > options_.shed_p99_us) {
    reason = "measured p99 over --shed-p99-us";
  }
  if (reason == nullptr) return std::nullopt;
  shed_overloaded.add();
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  return error_payload(request.id, epoch, kCodeOverloaded,
                       std::string(reason) + "; retry with backoff");
}

std::string Server::handle_health(const Request& request) {
  const bool overloaded =
      (options_.max_connections > 0 &&
       live_conns_.load(std::memory_order_relaxed) >=
           options_.max_connections) ||
      (options_.max_inflight > 0 &&
       inflight_.load(std::memory_order_relaxed) >= options_.max_inflight) ||
      (options_.shed_p99_us > 0.0 && tail_.p99_us() > options_.shed_p99_us);
  Response response;
  response.id = request.id;
  response.ok = true;
  response.epoch = epoch_.load(std::memory_order_relaxed);
  response.kind = QueryKind::Health;
  response.state = draining_.load(std::memory_order_relaxed)
                       ? "draining"
                       : overloaded ? "overloaded" : "ready";
  response.active_connections =
      static_cast<std::uint64_t>(live_conns_.load(std::memory_order_relaxed));
  response.inflight =
      static_cast<std::uint64_t>(inflight_.load(std::memory_order_relaxed));
  response.shed = shed_total_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (snapshot_ != nullptr) response.markets = snapshot_->markets.size();
  }
  return serialize_response(response);
}

std::string Server::handle_stats(const Request& request) {
  // Health's answer plus the full registry fold: parse the health
  // fields the same way, then attach the snapshot. The registry fold is
  // the only extra cost, and stats shares health's never-shed path, so
  // a monitor polling at 1 Hz rides entirely outside the admission
  // machinery.
  Response response = parse_response(handle_health(request));
  response.kind = QueryKind::Stats;
  response.version = std::string(kProtocolVersion);
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  response.t_us = snap.t_us;
  response.stats_pid = snap.pid;
  response.stats_counters.reserve(snap.counters.size());
  for (const auto& [name, value] : snap.counters) {
    response.stats_counters.emplace_back(name, value);
  }
  response.stats_gauges.reserve(snap.gauges.size());
  for (const auto& [name, value] : snap.gauges) {
    response.stats_gauges.emplace_back(name, value);
  }
  response.stats_hists.reserve(snap.histograms.size());
  for (const auto& [name, h] : snap.histograms) {
    StatsHist out;
    out.name = name;
    out.count = h.count;
    out.sum = h.sum;
    out.p50 = obs::histogram_percentile(h, 0.50);
    out.p99 = obs::histogram_percentile(h, 0.99);
    out.p999 = obs::histogram_percentile(h, 0.999);
    out.buckets.reserve(h.buckets.size());
    for (const auto& [b, n] : h.buckets) {
      out.buckets.emplace_back(static_cast<std::uint64_t>(b), n);
    }
    response.stats_hists.push_back(std::move(out));
  }
  return serialize_response(response);
}

std::string Server::handle_payload(std::string_view payload,
                                   std::chrono::steady_clock::time_point
                                       arrival,
                                   SnapCache& cache) {
  static obs::Counter& requests =
      obs::Registry::instance().counter("serve.requests");
  static obs::Counter& errors =
      obs::Registry::instance().counter("serve.errors");
  static obs::Gauge& inflight_gauge =
      obs::Registry::instance().gauge("serve.inflight");
  requests.add();
  const auto start = std::chrono::steady_clock::now();
  Request request;
  try {
    request = parse_request(payload);
  } catch (const std::exception& e) {
    errors.add();
    return error_payload(0, epoch_.load(std::memory_order_relaxed), e.what());
  }
  std::string response;
  if (request.kind == QueryKind::Health ||
      request.kind == QueryKind::Stats) {
    // Health and stats are never shed and never queue-gated: a
    // saturated or draining daemon must still answer its supervisor —
    // and its monitor, which needs the stats view most exactly when the
    // daemon is overloaded.
    response = request.kind == QueryKind::Health ? handle_health(request)
                                                 : handle_stats(request);
  } else if (request.kind == QueryKind::Reload) {
    // Admin path: reload is not load-shed either — an operator fixing
    // an overload (say, reloading onto a cheaper snapshot) must not be
    // locked out by the very overload being fixed.
    try {
      response = handle_reload(request);
    } catch (const std::exception& e) {
      errors.add();
      response = error_payload(
          request.id, epoch_.load(std::memory_order_relaxed), e.what());
    }
  } else {
    const std::size_t inflight_now =
        inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    inflight_gauge.set(static_cast<std::int64_t>(inflight_now));
    if (auto refusal = admission_check(request, arrival, inflight_now)) {
      response = std::move(*refusal);
    } else {
      try {
        response = handle_request(request, cache);
      } catch (const std::exception& e) {
        errors.add();
        response = error_payload(
            request.id, epoch_.load(std::memory_order_relaxed), e.what());
      }
      // Accepted-only tail: bounded by the request deadline plus
      // service time, which makes it the gateable half of the story.
      accepted_tail_.record(us_since(arrival));
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    // Arrival-to-done sample for the p99 shedder — queue wait included,
    // shed requests included: while a backlog exists even cheap shed
    // answers carry its age, which is what holds the shedder open until
    // the queue actually drains (and lets it close after).
    tail_.record(us_since(arrival));
  }
  static obs::Histogram& latency_all =
      obs::Registry::instance().histogram("serve.latency_us.all");
  const KindMetrics metrics = kind_metrics(request.kind);
  const double handle_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  metrics.requests->add();
  metrics.latency->record(handle_us);
  // One combined histogram across kinds: the single latency source a
  // live monitor derives its p50/p99/p999 from.
  latency_all.record(handle_us);
  return response;
}

// Revalidate the connection's cached snapshot: one acquire load of the
// epoch gate per request; only an actual swap pays the mutex (held just
// for the pointer copy — reloads build outside it).
const std::shared_ptr<const Snapshot>& Server::current_snapshot(
    SnapCache& cache) {
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (cache.snap == nullptr || cache.epoch != epoch) {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    cache.snap = snapshot_;
    cache.epoch = cache.snap->epoch;
  }
  return cache.snap;
}

std::string Server::handle_request(const Request& request, SnapCache& cache) {
  // ONE snapshot revalidation; everything below answers from `snap`, so
  // the response is internally consistent even if a reload lands
  // mid-query.
  const std::shared_ptr<const Snapshot>& snap = current_snapshot(cache);

  const MarketEntry* market = snap->find_market(request.market);
  if (market == nullptr) {
    throw std::invalid_argument("unknown market \"" + request.market +
                                "\"; keys are \"dataset/demand/cost\"");
  }
  const auto strategy = strategy_from_name(request.strategy);
  if (!strategy) {
    throw std::invalid_argument("unknown strategy \"" + request.strategy +
                                "\"");
  }
  const auto slot = snap->strategy_slot(*strategy);
  if (!slot) {
    throw std::invalid_argument("strategy \"" + request.strategy +
                                "\" is not served by grid \"" +
                                snap->grid.name + "\"");
  }
  const std::size_t bundles =
      request.bundles == 0 ? snap->grid.max_bundles : request.bundles;
  if (bundles > snap->grid.max_bundles) {
    throw std::invalid_argument(
        "bundle count " + std::to_string(bundles) + " exceeds grid max " +
        std::to_string(snap->grid.max_bundles));
  }
  const Schedule& schedule = market->schedule(*slot, bundles);

  Response response;
  response.id = request.id;
  response.ok = true;
  response.epoch = snap->epoch;
  response.kind = request.kind;
  switch (request.kind) {
    case QueryKind::Price: {
      const Quote quote = price_flow(*market, schedule, request.q, request.d,
                                     request.cost_class);
      response.tier = quote.tier;
      response.price = quote.price;
      response.rel_cost = quote.rel_cost;
      break;
    }
    case QueryKind::Requote: {
      const Quote quote = requote_flow(*market, schedule, request.flow);
      response.tier = quote.tier;
      response.price = quote.price;
      response.rel_cost = quote.rel_cost;
      response.blended_price = market->market.blended_price();
      break;
    }
    case QueryKind::Schedule:
      response.capture = schedule.capture;
      response.tiers = schedule.tiers;
      break;
    case QueryKind::Reload:
    case QueryKind::Health:
    case QueryKind::Stats:
      throw std::logic_error("admin kind dispatched to handle_request");
  }
  return serialize_response(response);
}

std::string Server::handle_reload(const Request& request) {
  static obs::Counter& reloads =
      obs::Registry::instance().counter("serve.reloads");
  static obs::Counter& update_reloads =
      obs::Registry::instance().counter("serve.reloads_updates");
  // Serialize rebuilds: concurrent reloads would burn CPU calibrating
  // snapshots that immediately lose the swap. Readers are untouched —
  // they keep loading whatever pointer is current.
  const std::lock_guard<std::mutex> lock(reload_mutex_);

  std::shared_ptr<const Snapshot> next;
  std::size_t recalibrated = 0;
  const std::uint64_t next_epoch =
      epoch_.load(std::memory_order_relaxed) + 1;
  if (!request.updates.empty()) {
    // Incremental path: advance the dynamic network, derive the next
    // snapshot from the current one (dirty markets rebuilt, the rest
    // shared).
    if (request.seed || request.n_flows) {
      throw std::invalid_argument(
          "reload: updates cannot be combined with seed / n_flows "
          "overrides (the topology binding is tied to the served flows)");
    }
    if (!snapshot_from_base_) {
      throw std::invalid_argument(
          "reload: the serving snapshot was built with overridden base "
          "parameters; issue a plain reload first to return to the base "
          "flows, then apply updates");
    }
    const auto batch = netdyn::parse_updates(request.updates);
    if (dyn_ == nullptr) dyn_ = std::make_unique<DynamicState>(grid_);
    const obs::Span span("serve.reload");
    std::shared_ptr<const Snapshot> prev;
    {
      // Pointer copy only; the derive itself runs outside the mutex so
      // readers never block on a recalibration.
      const std::lock_guard<std::mutex> peek(snapshot_mutex_);
      prev = snapshot_;
    }
    DynamicState::Derived derived =
        dyn_->apply(*prev, batch, next_epoch, options_.threads);
    next = derived.snapshot;
    recalibrated = derived.recalibrated;
    update_reloads.add();
  } else {
    // Full rebuild: fresh flows make any dynamic topology state stale.
    dyn_.reset();
    snapshot_from_base_ = !request.seed && !request.n_flows;
    driver::ExperimentGrid grid = grid_;
    if (request.seed) grid.base.seed = *request.seed;
    if (request.n_flows) grid.base.n_flows = *request.n_flows;

    SnapshotBuildOptions build;
    build.threads = options_.threads;
    build.epoch = next_epoch;
    const obs::Span span("serve.reload");
    next = build_snapshot(grid, build);
    recalibrated = next->markets.size();
  }
  {
    const std::lock_guard<std::mutex> publish(snapshot_mutex_);
    snapshot_ = next;
  }
  // Pointer first, epoch second (release): a reader that sees the new
  // epoch is guaranteed to find the new pointer under the mutex.
  epoch_.store(next->epoch, std::memory_order_release);
  reloads.add();

  Response response;
  response.id = request.id;
  response.ok = true;
  response.epoch = next->epoch;
  response.kind = QueryKind::Reload;
  response.markets = next->markets.size();
  response.recalibrated = recalibrated;
  return serialize_response(response);
}

}  // namespace manytiers::serve
