// A deliberately misbehaving protocol client for the chaos harness.
//
// Where serve::Client is the well-behaved path (whole frames, blocking
// round-trips), FaultClient exposes the raw moves a hostile or broken
// peer makes: partial writes ("dribble" a frame byte by byte — the
// slow-loris), torn frames (send a prefix then vanish), half-open
// sockets (stop sending, never close), and hard RST aborts. The chaos
// test uses these to assert the server's read limits, drain, and
// admission paths from the outside, against the real binary.
//
// Nothing here retries or recovers — every method maps to one syscall
// sequence so a test can reason about exactly what hit the wire.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace manytiers::serve {

class FaultClient {
 public:
  // Throws std::system_error when the endpoint does not answer.
  static FaultClient connect_unix(const std::string& path);

  FaultClient(FaultClient&&) noexcept;
  FaultClient& operator=(FaultClient&&) noexcept;
  FaultClient(const FaultClient&) = delete;
  FaultClient& operator=(const FaultClient&) = delete;
  ~FaultClient();

  // Write exactly these bytes — any bytes, framed or not. Throws
  // std::system_error if the peer is gone.
  void send_raw(std::string_view bytes);
  // Frame `payload` properly, then write only the first `prefix_bytes`
  // of the frame (torn write). prefix_bytes past the frame end sends
  // the whole frame.
  void send_torn(std::string_view payload, std::size_t prefix_bytes);
  // Slow-loris: frame `payload`, then trickle it out `chunk` bytes
  // every `gap_ms`, never finishing faster than the server's
  // frame-timeout window if chunk*rate is set below it. Returns early
  // (false) if the server gives up and resets the connection first —
  // which is the outcome the chaos test asserts.
  bool dribble(std::string_view payload, std::size_t chunk, int gap_ms);

  // Read one response frame with a bounded wall-clock wait. nullopt on
  // timeout or EOF/reset — the caller branches on "did the server
  // answer at all". The reader persists across calls, so pipelined
  // responses sharing one recv burst all come back.
  std::optional<std::string> try_read_frame(int timeout_ms);

  // Stop sending but keep the socket open (half-open peer): the caller
  // just goes silent. Provided for readability at call sites.
  void go_silent() {}
  // Abort with RST (SO_LINGER 0 + close) instead of an orderly FIN —
  // the mid-frame-disconnect and flood-abort scenarios.
  void abort_rst();
  // Orderly close.
  void close();

  int fd() const { return fd_; }

 private:
  explicit FaultClient(int fd)
      : fd_(fd), reader_(std::make_unique<FrameReader>(fd)) {}
  int fd_;
  std::unique_ptr<FrameReader> reader_;
};

}  // namespace manytiers::serve
