// manytiers_quote — one-shot client for the manytiers_serve daemon.
//
//   manytiers_quote --socket /tmp/mt.sock price
//       --market "EU ISP/ced/linear" --strategy Optimal --q 120 --d 800
//   manytiers_quote --socket /tmp/mt.sock schedule
//       --market "CDN/logit/linear" --strategy Profit-weighted --bundles 3
//   manytiers_quote --socket /tmp/mt.sock requote --market ...
//       --strategy ... --flow 7
//   manytiers_quote --socket /tmp/mt.sock reload --seed 43
//   manytiers_quote --socket /tmp/mt.sock --raw '{"id":1,...}'
//
// Prints the raw response payload on stdout (one JSON object — pipe it
// anywhere). --retry-ms waits for the daemon to bind its socket, which
// is the start-then-query idiom scripts need. --timeout-ms bounds every
// send/recv (default 30000, so a hung daemon can't wedge the client);
// code=="overloaded" errors are retried with exponential backoff
// (--overload-retries, fresh connection each attempt) because the
// server's shed answer is an explicit "come back later". Exit 0 on an
// ok response, 1 on a structured error or transport fault, 2 on usage
// errors.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "serve/client.hpp"

namespace {

using namespace manytiers;

int usage(std::ostream& os, int code) {
  os << "usage: manytiers_quote --socket PATH [--retry-ms N] [--timeout-ms N]\n"
        "                       [--overload-retries N] KIND [args]\n"
        "       manytiers_quote --socket PATH --raw JSON\n"
        "kinds:\n"
        "  price     --market K --strategy S --q MBPS --d MILES\n"
        "            [--class N] [--bundles N]\n"
        "  schedule  --market K --strategy S [--bundles N]\n"
        "  requote   --market K --strategy S --flow N [--bundles N]\n"
        "  reload    [--seed N] [--n-flows N] [--updates OPS]\n"
        "  health    (no args — lifecycle state and live gauges)\n"
        "  stats     (no args — health plus the full metrics registry\n"
        "            with exact p50/p99/p999 per histogram; never shed)\n"
        "--timeout-ms bounds each send/recv syscall (default 30000; 0 =\n"
        "block forever); --overload-retries retries code=='overloaded'\n"
        "responses with exponential backoff (default 0 = report at once)\n"
        "--updates ships a topology batch (netdyn wire format, ops joined\n"
        "with ';'): \"w,A,B,LEN\" reweigh, \"down,A,B\" fail, \"up,A,B[,LEN\n"
        "[,CAP]]\" restore, \"add,NAME,LAT,LON\" / \"rm,NAME\" PoPs — the\n"
        "daemon applies it incrementally and rebuilds only dirty markets\n"
        "market keys are \"dataset/demand/cost\", e.g. \"EU ISP/ced/linear\";\n"
        "--bundles 0 (default) means the grid's maximum tier count\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string raw;
  int retry_ms = 0;
  int timeout_ms = 30000;
  int overload_retries = 0;
  serve::Request request;
  bool kind_given = false;

  try {
    const auto next = [&](int& i) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(argv[i]) +
                                    " requires an argument");
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--socket") {
        socket_path = next(i);
      } else if (arg == "--retry-ms") {
        retry_ms = std::stoi(next(i));
      } else if (arg == "--timeout-ms") {
        timeout_ms = std::stoi(next(i));
      } else if (arg == "--overload-retries") {
        overload_retries = std::stoi(next(i));
      } else if (arg == "--raw") {
        raw = next(i);
      } else if (arg == "--market") {
        request.market = next(i);
      } else if (arg == "--strategy") {
        request.strategy = next(i);
      } else if (arg == "--bundles") {
        request.bundles = std::stoul(next(i));
      } else if (arg == "--q") {
        request.q = std::stod(next(i));
      } else if (arg == "--d") {
        request.d = std::stod(next(i));
      } else if (arg == "--class") {
        request.cost_class = std::stoul(next(i));
      } else if (arg == "--flow") {
        request.flow = std::stoul(next(i));
      } else if (arg == "--seed") {
        request.seed = std::stoull(next(i));
      } else if (arg == "--n-flows") {
        request.n_flows = std::stoul(next(i));
      } else if (arg == "--updates") {
        request.updates = next(i);
      } else if (!arg.empty() && arg[0] != '-') {
        request.kind = serve::parse_query_kind(arg);
        kind_given = true;
      } else {
        std::cerr << "manytiers_quote: unknown flag " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (socket_path.empty()) {
      std::cerr << "manytiers_quote: --socket is required\n";
      return usage(std::cerr, 2);
    }
    if (raw.empty() && !kind_given) {
      std::cerr << "manytiers_quote: need a query kind or --raw\n";
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_quote: " << err.what() << "\n";
    return 2;
  }

  try {
    const std::string request_payload =
        raw.empty() ? serve::serialize_request(request) : raw;
    int backoff_ms = 50;
    for (int attempt = 0;; ++attempt) {
      // Fresh connection per attempt: an overloaded daemon may have
      // refused at the connection cap, so reusing the socket would just
      // replay the same refusal.
      serve::Client client =
          retry_ms > 0
              ? serve::Client::connect_unix_retry(socket_path, retry_ms)
              : serve::Client::connect_unix(socket_path);
      client.set_timeout_ms(timeout_ms);
      const std::string payload = client.call_raw(request_payload);
      const serve::Response response = serve::parse_response(payload);
      if (!response.ok && response.code == serve::kCodeOverloaded &&
          attempt < overload_retries) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min(backoff_ms * 2, 2000);
        continue;
      }
      std::cout << payload << "\n";
      // A structured error is still a valid exchange; report it in the
      // exit code so scripts don't have to parse the payload.
      return response.ok ? 0 : 1;
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_quote: " << err.what() << "\n";
    return 1;
  }
}
