// Wire protocol of the manytiers_serve query daemon.
//
// Framing: every message (both directions) is a length-prefixed frame —
// a 4-byte little-endian payload length followed by that many bytes of
// UTF-8 JSON, one object per frame. The prefix makes message boundaries
// explicit on a stream socket, so a reader never scans payload bytes
// for a terminator; the kMaxFrame cap turns a garbage prefix (random
// bytes, a length from a confused client) into a structured protocol
// error instead of an unbounded allocation.
//
// Requests are flat JSON objects; responses are flat except for the
// schedule query's tier array. Both are written and parsed by the same
// hand-rolled scanners the batch report format uses (no JSON library in
// this codebase), and every numeric response field is emitted with
// %.17g so responses round-trip exactly — the determinism test
// byte-compares serve responses against batch-driver output.
//
// Query kinds:
//   price    — quote a new (q, d, class) flow under a market/strategy/
//              bundle-count tier schedule
//   schedule — the full tier schedule of one grid cell (prices, relative
//              cost ranges, member counts, capture)
//   requote  — re-quote an existing customer flow's bundle assignment
//   reload   — admin: recalibrate (optionally with overridden base
//              parameters) and swap the serving snapshot; the response
//              carries the new epoch
//   health   — admin: the server's lifecycle state (ready / draining /
//              overloaded) plus live gauges (active connections,
//              in-flight requests, total shed). Never load-shed, so a
//              supervisor can always probe a saturated daemon.
//   stats    — admin (v1.2, additive): everything health reports PLUS
//              the full obs::Registry snapshot (counters, gauges,
//              histograms with exact bucket counts) and derived exact
//              percentiles (p50/p99/p999 at log-bucket resolution) per
//              histogram. Never load-shed and answered during drain,
//              like health — this is what manytiers_top polls. The
//              response carries a "version" tag ("1.2"); pre-v1.2
//              clients never issue stats, and every pre-existing kind's
//              wire shape is untouched, so old clients still parse.
//
// Every response carries the snapshot epoch it was answered from, so a
// client (and the snapshot-swap concurrency test) can pin any answer to
// exactly one calibration.
//
// Error frames (v1.1, additive): every error response carries a stable
// "code" token alongside the human-readable "error" message, so clients
// branch on the token instead of string-matching messages. The tokens
// are part of the protocol contract (round-trip-tested):
//   overloaded  — admission control shed the request (or refused the
//                 connection) because the server is past its budget;
//                 retry later with backoff
//   deadline    — the request sat queued past --request-deadline-ms
//                 before work started; it was never executed
//   draining    — the server is shutting down; reconnect elsewhere
//   bad_request — malformed or unanswerable request (parse failure,
//                 unknown market/strategy, ...); do not retry
// Frames from pre-v1.1 servers simply lack the field; parse_response
// leaves `code` empty.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manytiers::serve {

// Hard payload cap: larger prefixes are rejected as a protocol error
// before any allocation. Far above any real request or response.
inline constexpr std::uint32_t kMaxFrame = 1u << 20;

enum class QueryKind { Price, Schedule, Requote, Reload, Health, Stats };

// The version tag stats responses carry (the protocol's own version).
inline constexpr std::string_view kProtocolVersion = "1.2";

// The stable error-code tokens (see the protocol note above).
inline constexpr std::string_view kCodeOverloaded = "overloaded";
inline constexpr std::string_view kCodeDeadline = "deadline";
inline constexpr std::string_view kCodeDraining = "draining";
inline constexpr std::string_view kCodeBadRequest = "bad_request";

std::string_view to_string(QueryKind kind);
// Throws std::invalid_argument on an unknown kind name.
QueryKind parse_query_kind(std::string_view name);

struct Request {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::Schedule;
  // price / schedule / requote: which cell to answer from.
  std::string market;    // "dataset/demand/cost", e.g. "EU ISP/ced/linear"
  std::string strategy;  // strategy display name, e.g. "Optimal"
  std::size_t bundles = 0;  // tier count; 0 = the grid's max_bundles
  // price: the flow to quote.
  double q = 0.0;              // demand, Mbps
  double d = 0.0;              // distance, miles
  std::size_t cost_class = 0;  // cost-model class (region / on-off-net)
  // requote: index into the market's (expanded) flow set.
  std::size_t flow = 0;
  // reload: optional base-parameter overrides for the new snapshot.
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> n_flows;
  // reload: topology update batch in the netdyn wire format
  // ("down,A,B;w,C,D,500"). Non-empty switches the reload to the
  // incremental path: apply the batch to the daemon's dynamic network,
  // re-cost the bound flows, and rebuild only the dirty markets — the
  // clean ones are structurally shared with the previous snapshot.
  // Cannot be combined with seed / n_flows.
  std::string updates;
};

std::string serialize_request(const Request& request);
// Throws std::invalid_argument on malformed payloads (missing or
// ill-typed fields, unknown kind, trailing garbage in numbers).
Request parse_request(std::string_view payload);

// One pricing tier of a schedule response: the bundle price and the
// relative-cost range its member flows span.
struct TierInfo {
  double price = 0.0;
  double rel_cost_lo = 0.0;
  double rel_cost_hi = 0.0;
  std::size_t n_flows = 0;
  double demand_mbps = 0.0;
};

// One histogram of a stats response: the registry snapshot's sparse
// buckets plus the server-derived exact percentiles (computed with
// obs::histogram_percentile at log-bucket resolution, so every client
// sees the same numbers the server's own gates use).
struct StatsHist {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  // Sparse (bucket index, count) pairs, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::uint64_t epoch = 0;
  QueryKind kind = QueryKind::Schedule;
  std::string error;  // set when !ok
  std::string code;   // set when !ok: one of the kCode* tokens
  // price / requote:
  std::size_t tier = 0;      // assigned tier index (schedule order)
  double price = 0.0;        // the tier's price
  double rel_cost = 0.0;     // the flow's relative cost
  double blended_price = 0.0;  // requote: the market's P0 for comparison
  // schedule:
  double capture = 0.0;
  std::string capture_text;  // exact %.17g token (byte-compare hook)
  std::vector<TierInfo> tiers;
  // reload:
  std::size_t markets = 0;  // markets served by the new snapshot
  // reload: markets actually recalibrated. Equals `markets` on a full
  // rebuild; on an updates reload it counts only the dirty markets (0
  // when the batch left every served distance unchanged).
  std::size_t recalibrated = 0;
  // health (and stats, which is a superset):
  std::string state;  // "ready" | "draining" | "overloaded"
  std::uint64_t active_connections = 0;
  std::uint64_t inflight = 0;
  std::uint64_t shed = 0;  // total shed/refused since startup
  // stats:
  std::string version;        // protocol version tag ("1.2")
  std::uint64_t t_us = 0;     // server wall-clock capture time, µs
  std::int64_t stats_pid = 0;  // serving process pid (wire field "pid")
  std::vector<std::pair<std::string, std::uint64_t>> stats_counters;
  std::vector<std::pair<std::string, std::int64_t>> stats_gauges;
  std::vector<StatsHist> stats_hists;
};

std::string serialize_response(const Response& response);
// Throws std::invalid_argument on malformed payloads.
Response parse_response(std::string_view payload);

// Convenience: the structured error every fault path answers with.
// `code` is one of the kCode* tokens; the three-argument form defaults
// to kCodeBadRequest.
std::string error_payload(std::uint64_t id, std::uint64_t epoch,
                          std::string_view message);
std::string error_payload(std::uint64_t id, std::uint64_t epoch,
                          std::string_view code, std::string_view message);

// --- Framing over a stream socket ---

// What went wrong at the framing layer. TornPrefix/MidFrame mean the
// peer vanished mid-message (nothing sensible to answer); BadLength
// (zero or > kMaxFrame) is answerable with a structured error before
// closing. Idle and SlowPeer are the server-side read limits: Idle is a
// connection that produced no bytes for the idle window (a half-open or
// parked peer), SlowPeer is a peer mid-frame that failed to complete it
// within the frame window (a slow-loris writer) — both mean "reap this
// connection", neither is answerable.
class FrameError : public std::runtime_error {
 public:
  enum class Kind { TornPrefix, MidFrame, BadLength, Idle, SlowPeer };
  FrameError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

// Length-prefix + payload, ready to write.
std::string encode_frame(std::string_view payload);
// Same framing appended onto an existing buffer — the server's batched
// drain re-uses one output buffer across pipelined responses.
void append_frame(std::string& out, std::string_view payload);

// Write all of `data` to fd (send with MSG_NOSIGNAL on sockets, so a
// vanished peer surfaces as an error, not SIGPIPE). Throws
// std::system_error on failure.
void write_all(int fd, std::string_view data);

// Buffered frame reader. next() blocks until a full frame, clean EOF at
// a frame boundary, or a framing fault; buffered_frame() reports whether
// another complete frame is already in the buffer (no syscall needed) —
// the server drains those before flushing responses, which is what
// batches syscalls under pipelined load.
class FrameReader {
 public:
  // Read limits, both in wall-clock ms, both 0 = off. They only engage
  // when the fd has SO_RCVTIMEO set (recv must return EAGAIN
  // periodically for the reader to notice time passing); the server
  // arms both together. idle: max time next() waits with no undelivered
  // bytes at all before throwing FrameError{Idle}. frame: max time a
  // partially received frame may take to complete before
  // FrameError{SlowPeer} — the progress-based slow-loris cutoff (a
  // dribbling writer resets nothing: the clock runs from the first byte
  // of the incomplete frame).
  struct ReadLimits {
    int idle_timeout_ms = 0;
    int frame_timeout_ms = 0;
  };

  explicit FrameReader(int fd) : fd_(fd) {}

  enum class Status { Frame, Eof };

  void set_limits(ReadLimits limits) { limits_ = limits; }

  // Fill `payload` with the next frame. Throws FrameError on a torn
  // prefix, mid-frame EOF, a bad length, or a tripped read limit;
  // std::system_error on socket errors. With SO_RCVTIMEO set on the fd
  // but no limits armed, a recv timeout surfaces as std::system_error
  // (EAGAIN) — the client-side --timeout-ms contract.
  Status next(std::string& payload);
  bool buffered_frame() const;

  // When the bytes completing the most recent frame were received —
  // the arrival approximation the server's request deadline uses. Every
  // frame drained from one recv burst shares that burst's timestamp,
  // which is exactly right: they were all queued then.
  std::chrono::steady_clock::time_point last_fill() const {
    return fill_time_;
  }

 private:
  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;  // consumed prefix of buffer_
  ReadLimits limits_;
  std::chrono::steady_clock::time_point fill_time_{};
};

// One blocking request/response exchange on fd (client side).
// Throws FrameError / std::system_error on transport faults.
std::string roundtrip(int fd, std::string_view payload);

}  // namespace manytiers::serve
