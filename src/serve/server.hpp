// The manytiers_serve daemon core: listeners, per-connection handler
// threads, and the RCU-style snapshot swap.
//
// The swap is epoch-gated: every handler keeps a per-connection cached
// shared_ptr to the snapshot it last used, and revalidates it with one
// atomic epoch load per request. Only when the epoch moved does it take
// snapshot_mutex_ — held by anyone just long enough to copy the
// pointer, never across a rebuild — so steady-state reads are one
// relaxed branch and zero refcount traffic. `reload` requests
// recalibrate on the handler's thread — serialized by reload_mutex_ so
// two admins can't race a rebuild — then publish the new pointer under
// snapshot_mutex_ and bump the epoch; in-flight readers keep their old
// snapshot alive through the shared_ptr refcount and simply drain. No
// reader ever blocks on a recalibration.
//
// (An earlier version used std::atomic<std::shared_ptr> here. Besides
// paying a spinlock + two refcount RMWs per request, libstdc++'s
// _Sp_atomic unlocks its load() path with a relaxed fetch_sub — the
// write-after-read edge the memory model wants is missing, and TSan
// rightly flags the store against concurrent loads. The epoch gate is
// both faster and clean under TSan.)
//
// Connection handling is thread-per-connection (query work is pure
// in-memory lookup; the protocol drains every buffered request frame
// before flushing one batched write, which is what amortizes syscalls
// under pipelined load). Finished handlers park on a reap list the
// accept loop joins, so the thread table never grows past the live
// connection count.
//
// Overload hardening (all knobs default off, so the embedded-server
// tests keep PR 7 semantics):
//
//  * Admission control. max_connections caps live connections —
//    accept-then-refuse: the extra connection gets one protocol-level
//    error frame (code "overloaded") and a close, never a silent RST,
//    so clients can branch and back off. max_inflight bounds requests
//    being executed across all handlers; shed_p99_us sheds when the
//    measured arrival-to-done p99 (a sliding window that includes time
//    queued in the read buffer) crosses the threshold. Shed requests
//    answer with code "overloaded" at a fraction of the cost of real
//    work, which is what lets the accepted fraction keep its latency.
//
//  * Deadlines. request_deadline_ms sheds (code "deadline") any request
//    that sat queued past the deadline before work started — the
//    FrameReader's fill timestamp is the arrival. idle_timeout_ms /
//    frame_timeout_ms arm SO_RCVTIMEO-driven read limits so a half-open
//    peer or a slow-loris writer is reaped instead of pinning a handler
//    thread forever; write_timeout_ms arms SO_SNDTIMEO so a peer that
//    stops reading its responses errors the handler out instead of
//    blocking send() indefinitely.
//
//  * Graceful drain. drain() flips the server to draining: new
//    connections get one bounded read (a health probe answers with
//    state "draining", anything else gets code "draining") and a close;
//    live connections are half-closed (SHUT_RD) so their handlers
//    finish every frame the peer already sent — byte-identical answers,
//    flushed — and exit at EOF. If everything has not drained within
//    drain_timeout_ms the remaining connections are hard-closed. drain()
//    always returns within the timeout; stop() afterwards is immediate.
//
//  * health query kind: ready/draining/overloaded plus live gauges,
//    answered before any shed check so supervisors can always probe.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/dynamic.hpp"
#include "serve/snapshot.hpp"

namespace manytiers::serve {

struct ServerOptions {
  std::string unix_path;   // required: the UDS listener
  int tcp_port = -1;       // -1 = no TCP listener, 0 = kernel-assigned
  std::size_t threads = 0;  // snapshot calibration threads (0 = default)

  // Admission control (0 = unlimited / off).
  std::size_t max_connections = 0;  // live-connection cap, accept-then-refuse
  std::size_t max_inflight = 0;     // concurrent in-execution request budget
  double shed_p99_us = 0.0;  // shed while measured arrival-to-done p99 exceeds

  // Deadlines and socket timeouts (ms, 0 = off).
  int request_deadline_ms = 0;  // max queue wait before work starts
  int idle_timeout_ms = 0;      // reap connections with no bytes for this long
  int frame_timeout_ms = 0;     // slow-loris cutoff: max time to finish a frame
  int write_timeout_ms = 0;     // SO_SNDTIMEO: peer must drain its responses

  // Graceful drain: hard-close whatever is left after this long.
  int drain_timeout_ms = 5000;
};

// Sliding-window tail-latency estimator for the p99 shedder. record()
// is two relaxed atomic stores; the estimate is recomputed from the
// ring every kRecompute samples by whichever thread trips the counter
// (guarded, so one recompute at a time and nobody waits).
class TailTracker {
 public:
  static constexpr std::size_t kWindow = 1024;
  static constexpr std::uint64_t kRecompute = 128;

  void record(double latency_us);
  double p99_us() const { return p99_us_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<double>, kWindow> ring_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<bool> recomputing_{false};
  std::atomic<double> p99_us_{0.0};
};

class Server {
 public:
  Server(driver::ExperimentGrid grid, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Build the initial snapshot (epoch 1), bind the listeners, spawn the
  // accept threads. Throws on bind/calibration failure.
  void start();
  // Close listeners, shut down live connections, join every thread.
  // Idempotent; the destructor calls it.
  void stop();
  // Graceful drain: refuse new work with typed errors, half-close live
  // connections so in-flight frames finish byte-identically, wait until
  // every handler exits or options.drain_timeout_ms passes (hard-close
  // then). Always returns within the timeout; call stop() after.
  // Idempotent; concurrent callers all block until the drain resolves.
  void drain();
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  // The TCP port actually bound (after start); -1 when TCP is off.
  int tcp_port() const { return bound_tcp_port_; }
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  std::shared_ptr<const Snapshot> snapshot() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }
  // Live gauges (also served by the health query).
  std::size_t active_connections() const {
    return live_conns_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  // Measured arrival-to-done p99 over the last TailTracker::kWindow work
  // requests, shed included — the backlog signal the p99 shedder acts on.
  double tail_p99_us() const { return tail_.p99_us(); }
  // Same window, accepted requests only. This is the number the request
  // deadline bounds (a request that started work had waited at most the
  // deadline), and what the overload bench gates on. Shed requests are
  // excluded: their arrival-to-done is their full backlog wait, which no
  // server mechanism can cap.
  double accepted_p99_us() const { return accepted_tail_.p99_us(); }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // A connection's view of the serving snapshot: refreshed from
  // snapshot_ only when the epoch gate says it moved.
  struct SnapCache {
    std::shared_ptr<const Snapshot> snap;
    std::uint64_t epoch = 0;
  };

  void accept_loop(int listen_fd);
  void handle_connection(Conn* conn);
  // One request frame -> one response payload. Never throws: every
  // fault inside becomes a structured error response. `arrival` is when
  // the frame's bytes were received (the deadline clock).
  std::string handle_payload(std::string_view payload,
                             std::chrono::steady_clock::time_point arrival,
                             SnapCache& cache);
  std::string handle_request(const Request& request, SnapCache& cache);
  std::string handle_reload(const Request& request);
  std::string handle_health(const Request& request);
  // stats = health plus the full registry snapshot with derived
  // percentiles. Same never-shed discipline as health.
  std::string handle_stats(const Request& request);
  const std::shared_ptr<const Snapshot>& current_snapshot(SnapCache& cache);
  void reap_finished(bool join_all);
  // Accept-side refusal paths: one typed error frame (or a health
  // answer during drain), then close. Best-effort — a vanished peer is
  // already refused.
  void refuse_connection_overloaded(int fd);
  void refuse_connection_draining(int fd);
  // nullopt = admit; otherwise the typed-error payload to answer with.
  // `inflight_now` is the in-flight count including this request (the
  // caller counts it in before asking, so the budget check is exact).
  std::optional<std::string> admission_check(
      const Request& request,
      std::chrono::steady_clock::time_point arrival,
      std::size_t inflight_now);
  void apply_socket_timeouts(int fd) const;

  driver::ExperimentGrid grid_;
  ServerOptions options_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mutex_
  mutable std::mutex snapshot_mutex_;  // pointer copies only, never rebuilds
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex reload_mutex_;  // serializes rebuilds, not reads
  // Dynamic-network reload state, guarded by reload_mutex_. Created
  // lazily by the first updates reload; a plain reload discards it
  // (fresh flows invalidate the topology binding). Valid only while the
  // serving snapshot derives from the grid's base parameters —
  // snapshot_from_base_ tracks that, and goes false when a reload
  // overrides seed / n_flows.
  std::unique_ptr<DynamicState> dyn_;
  bool snapshot_from_base_ = true;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::mutex drain_mutex_;  // serializes drain(); idempotence flag inside
  bool drained_ = false;    // guarded by drain_mutex_
  bool started_ = false;

  // Overload bookkeeping. Plain atomics, not obs instruments: the
  // health query and the admission decisions must work with metrics
  // disabled (obs counters mirror them when enabled).
  std::atomic<std::size_t> live_conns_{0};
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  TailTracker tail_;
  TailTracker accepted_tail_;
};

}  // namespace manytiers::serve
