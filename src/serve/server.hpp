// The manytiers_serve daemon core: listeners, per-connection handler
// threads, and the RCU-style snapshot swap.
//
// The swap is epoch-gated: every handler keeps a per-connection cached
// shared_ptr to the snapshot it last used, and revalidates it with one
// atomic epoch load per request. Only when the epoch moved does it take
// snapshot_mutex_ — held by anyone just long enough to copy the
// pointer, never across a rebuild — so steady-state reads are one
// relaxed branch and zero refcount traffic. `reload` requests
// recalibrate on the handler's thread — serialized by reload_mutex_ so
// two admins can't race a rebuild — then publish the new pointer under
// snapshot_mutex_ and bump the epoch; in-flight readers keep their old
// snapshot alive through the shared_ptr refcount and simply drain. No
// reader ever blocks on a recalibration.
//
// (An earlier version used std::atomic<std::shared_ptr> here. Besides
// paying a spinlock + two refcount RMWs per request, libstdc++'s
// _Sp_atomic unlocks its load() path with a relaxed fetch_sub — the
// write-after-read edge the memory model wants is missing, and TSan
// rightly flags the store against concurrent loads. The epoch gate is
// both faster and clean under TSan.)
//
// Connection handling is thread-per-connection (query work is pure
// in-memory lookup; the protocol drains every buffered request frame
// before flushing one batched write, which is what amortizes syscalls
// under pipelined load). Finished handlers park on a reap list the
// accept loop joins, so the thread table never grows past the live
// connection count.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/dynamic.hpp"
#include "serve/snapshot.hpp"

namespace manytiers::serve {

struct ServerOptions {
  std::string unix_path;   // required: the UDS listener
  int tcp_port = -1;       // -1 = no TCP listener, 0 = kernel-assigned
  std::size_t threads = 0;  // snapshot calibration threads (0 = default)
};

class Server {
 public:
  Server(driver::ExperimentGrid grid, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Build the initial snapshot (epoch 1), bind the listeners, spawn the
  // accept threads. Throws on bind/calibration failure.
  void start();
  // Close listeners, shut down live connections, join every thread.
  // Idempotent; the destructor calls it.
  void stop();

  // The TCP port actually bound (after start); -1 when TCP is off.
  int tcp_port() const { return bound_tcp_port_; }
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }
  std::shared_ptr<const Snapshot> snapshot() const {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    return snapshot_;
  }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // A connection's view of the serving snapshot: refreshed from
  // snapshot_ only when the epoch gate says it moved.
  struct SnapCache {
    std::shared_ptr<const Snapshot> snap;
    std::uint64_t epoch = 0;
  };

  void accept_loop(int listen_fd);
  void handle_connection(Conn* conn);
  // One request frame -> one response payload. Never throws: every
  // fault inside becomes a structured error response.
  std::string handle_payload(std::string_view payload, SnapCache& cache);
  std::string handle_request(const Request& request, SnapCache& cache);
  std::string handle_reload(const Request& request);
  const std::shared_ptr<const Snapshot>& current_snapshot(SnapCache& cache);
  void reap_finished(bool join_all);

  driver::ExperimentGrid grid_;
  ServerOptions options_;
  std::shared_ptr<const Snapshot> snapshot_;  // guarded by snapshot_mutex_
  mutable std::mutex snapshot_mutex_;  // pointer copies only, never rebuilds
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex reload_mutex_;  // serializes rebuilds, not reads
  // Dynamic-network reload state, guarded by reload_mutex_. Created
  // lazily by the first updates reload; a plain reload discards it
  // (fresh flows invalidate the topology binding). Valid only while the
  // serving snapshot derives from the grid's base parameters —
  // snapshot_from_base_ tracks that, and goes false when a reload
  // overrides seed / n_flows.
  std::unique_ptr<DynamicState> dyn_;
  bool snapshot_from_base_ = true;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  std::vector<std::thread> accept_threads_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace manytiers::serve
