#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace manytiers::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

int dial_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument("serve client: unix socket path too long: " +
                                path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve client: socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve client: connect(" + path + ")");
  }
  return fd;
}

}  // namespace

Client::Client(int fd) : fd_(fd), reader_(std::make_unique<FrameReader>(fd)) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client Client::connect_unix(const std::string& path) {
  return Client(dial_unix(path));
}

Client Client::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("serve client: bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve client: socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve client: connect(" + host + ":" + std::to_string(port) +
                ")");
  }
  return Client(fd);
}

Client Client::connect_unix_retry(const std::string& path, int timeout_ms) {
  // Capped exponential backoff: 1, 2, 4, ... 64 ms between attempts. A
  // daemon that binds instantly costs one extra millisecond; one that
  // takes seconds to calibrate is probed ~16 times a second instead of
  // the 50/s a fixed tight loop would burn.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int backoff_ms = 1;
  for (;;) {
    int last_errno = 0;
    try {
      return connect_unix(path);
    } catch (const std::system_error& e) {
      last_errno = e.code().value();
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::system_error(
          last_errno, std::generic_category(),
          "serve client: connect(" + path + ") still failing after " +
              std::to_string(timeout_ms) + " ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 64);
  }
}

void Client::set_timeout_ms(int ms) {
  if (fd_ < 0 || ms < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  // Best-effort: a socket type without timeout support just blocks.
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Response Client::call(const Request& request) {
  return parse_response(call_raw(serialize_request(request)));
}

std::string Client::call_raw(std::string_view request_payload) {
  try {
    write_all(fd_, encode_frame(request_payload));
  } catch (const std::system_error& e) {
    // A refuse-and-close server (connection cap, drain) may have queued
    // its typed error frame and closed before our request even hit the
    // wire — the write side then reports EPIPE/ECONNRESET while the
    // refusal sits unread in our receive buffer. Drain it so the caller
    // sees *why* instead of a bare broken pipe.
    if (e.code().value() != EPIPE && e.code().value() != ECONNRESET) throw;
    try {
      return recv_raw();
    } catch (const std::exception&) {
      throw e;  // nothing queued: the original transport fault stands
    }
  }
  return recv_raw();
}

void Client::send(const Request& request) {
  write_all(fd_, encode_frame(serialize_request(request)));
}

std::string Client::recv_raw() {
  std::string payload;
  if (reader_->next(payload) != FrameReader::Status::Frame) {
    throw FrameError(FrameError::Kind::MidFrame,
                     "serve client: connection closed before response");
  }
  return payload;
}

}  // namespace manytiers::serve
