#include "serve/fault_client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace manytiers::serve {

FaultClient FaultClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::invalid_argument("fault client: unix socket path too long: " +
                                path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "fault client: socket(AF_UNIX)");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    throw std::system_error(saved, std::generic_category(),
                            "fault client: connect(" + path + ")");
  }
  return FaultClient(fd);
}

FaultClient::FaultClient(FaultClient&& other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)) {
  other.fd_ = -1;
}

FaultClient& FaultClient::operator=(FaultClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    reader_ = std::move(other.reader_);
    other.fd_ = -1;
  }
  return *this;
}

FaultClient::~FaultClient() { close(); }

void FaultClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FaultClient::abort_rst() {
  if (fd_ < 0) return;
  // SO_LINGER with zero timeout turns close() into an abortive reset —
  // on AF_UNIX the peer sees ECONNRESET on its next recv rather than a
  // clean EOF, which is the "client crashed" signature.
  linger lg{};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd_);
  fd_ = -1;
}

void FaultClient::send_raw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(),
                              "fault client: send");
    }
    off += static_cast<std::size_t>(n);
  }
}

void FaultClient::send_torn(std::string_view payload,
                            std::size_t prefix_bytes) {
  const std::string frame = encode_frame(payload);
  send_raw(std::string_view(frame).substr(
      0, std::min(prefix_bytes, frame.size())));
}

bool FaultClient::dribble(std::string_view payload, std::size_t chunk,
                          int gap_ms) {
  if (chunk == 0) chunk = 1;
  const std::string frame = encode_frame(payload);
  for (std::size_t off = 0; off < frame.size(); off += chunk) {
    try {
      send_raw(std::string_view(frame).substr(off, chunk));
    } catch (const std::system_error&) {
      return false;  // the server hung up on us mid-dribble
    }
    if (off + chunk < frame.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(gap_ms));
    }
  }
  return true;
}

std::optional<std::string> FaultClient::try_read_frame(int timeout_ms) {
  if (fd_ < 0 || reader_ == nullptr) return std::nullopt;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  std::string payload;
  try {
    if (reader_->next(payload) != FrameReader::Status::Frame) {
      return std::nullopt;
    }
  } catch (const std::exception&) {
    return std::nullopt;  // timeout, reset, or torn response
  }
  return payload;
}

}  // namespace manytiers::serve
