// Delta propagation, serve layer: the daemon-side dynamic network and
// the derived-snapshot reload path.
//
// A DynamicState pairs a netdyn::DynamicNetwork (seeded with the
// Internet2 backbone) with the grid's generated flow sets and, for each
// topology-bound dataset, the FlowRecoster that replays the frozen
// epoch-0 calibration on updated raw distances. An updates reload
// applies one batch, re-costs exactly the flows the DistanceDelta
// names, and derives the next Snapshot from the previous one: markets
// of clean datasets are shared (same shared_ptr, zero recalibration),
// markets of dirty datasets are rebuilt through the same
// build_market_entry path build_snapshot fans out over — so the derived
// snapshot is byte-identical to a full rebuild from the same re-costed
// flows, and a link failure turns into a republished snapshot in the
// time it takes to recalibrate the handful of markets it touched.
//
// State advances only when apply() succeeds; an invalid batch throws
// out of DynamicNetwork::apply before anything here mutates, so the
// daemon's dynamic view never desyncs from the serving snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "driver/grid.hpp"
#include "netdyn/dynamic_network.hpp"
#include "netdyn/flows.hpp"
#include "serve/snapshot.hpp"

namespace manytiers::serve {

class DynamicState {
 public:
  // Generates the grid's flow sets at its base parameters (the exact
  // flows the daemon's startup build_snapshot used — same generators,
  // same seed) and captures the topology binding of every
  // network-backed dataset. Throws on sweep grids, like build_snapshot.
  explicit DynamicState(const driver::ExperimentGrid& grid);

  struct Derived {
    std::shared_ptr<const Snapshot> snapshot;
    std::size_t recalibrated = 0;  // market entries rebuilt
  };

  // Apply one update batch to the live network and derive the successor
  // of `prev` at `epoch`: re-cost the bound flows the delta touches,
  // rebuild the dirty datasets' market entries (in parallel), share the
  // rest. Throws std::invalid_argument on an invalid batch, leaving the
  // network, the flows, and the served snapshot untouched.
  Derived apply(const Snapshot& prev,
                std::span<const netdyn::NetworkUpdate> batch,
                std::uint64_t epoch, std::size_t threads);

  // Reference path for tests: recompute distances from scratch, re-cost
  // every bound flow, rebuild the whole snapshot. Equals the snapshot
  // apply() derived (same epoch) byte-for-byte.
  std::shared_ptr<const Snapshot> scratch_snapshot(std::uint64_t epoch,
                                                   std::size_t threads) const;

  const netdyn::DynamicNetwork& network() const { return net_; }

 private:
  driver::ExperimentGrid grid_;
  netdyn::DynamicNetwork net_;
  std::vector<workload::FlowSet> flows_;  // one per grid dataset
  std::vector<std::optional<netdyn::FlowRecoster>> recosters_;
};

}  // namespace manytiers::serve
