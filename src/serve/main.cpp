// manytiers_serve — the pricing query daemon.
//
//   manytiers_serve --grid smoke --socket /tmp/mt.sock --metrics m.json
//   manytiers_serve --grid default --socket /tmp/mt.sock --tcp 0
//
// Loads and calibrates every market of a grid once at startup, then
// answers price / schedule / requote queries over the length-prefixed
// socket protocol until SIGTERM/SIGINT. A `reload` request recalibrates
// in the background and swaps the serving snapshot atomically; readers
// never block on it.
//
// SIGTERM drains gracefully: in-flight frames finish and flush, new
// connections get a typed "draining" refusal, and whatever has not
// finished within --drain-timeout-ms is hard-closed — the process
// always exits. SIGINT (interactive ^C) skips the drain and stops
// immediately. The admission/deadline knobs below all default off, so
// an unconfigured daemon behaves exactly as before.
//
// Lifecycle lines on stdout (SERVE_JSON, one object per line) mark
// readiness and shutdown so supervisors and tests can wait on them
// instead of polling the socket. Exit codes follow the repo contract:
// 0 success, 1 runtime failure, 2 usage error.
#include <signal.h>

#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "driver/grid.hpp"
#include "obs/registry.hpp"
#include "obs/snapshotter.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "util/file.hpp"

namespace {

using namespace manytiers;

int usage(std::ostream& os, int code) {
  os << "usage: manytiers_serve [options]\n"
        "  --grid NAME          grid to serve (default \"smoke\")\n"
        "  --list-grids         print known grid names and exit\n"
        "  --socket PATH        unix socket to listen on (required)\n"
        "  --tcp PORT           also listen on 127.0.0.1:PORT (0 = "
        "kernel-assigned)\n"
        "  --threads N          calibration threads (default: all cores)\n"
        "  --seed N             override the grid's dataset seed\n"
        "  --n-flows N          override the grid's flows per dataset\n"
        "  --max-bundles N      override the grid's maximum tier count\n"
        "  --metrics PATH       write an obs-registry metrics sidecar on "
        "shutdown\n"
        "  --metrics-interval-ms N  also stream delta snapshots every N ms\n"
        "                       to PATH-derived .series.json (needs "
        "--metrics)\n"
        "  --trace PATH         write a Chrome-trace-event JSON timeline\n"
        "  --max-connections N  live-connection cap; extras get a typed\n"
        "                       'overloaded' error frame (0 = unlimited)\n"
        "  --max-inflight N     concurrent request budget; excess requests\n"
        "                       are shed with code 'overloaded' (0 = off)\n"
        "  --shed-p99-us X      shed while measured arrival-to-done p99\n"
        "                       exceeds X microseconds (0 = off)\n"
        "  --request-deadline-ms N  shed (code 'deadline') requests that\n"
        "                       waited longer than N ms before work (0 = off)\n"
        "  --idle-timeout-ms N  reap connections silent for N ms (0 = off)\n"
        "  --frame-timeout-ms N slow-loris cutoff: a started frame must\n"
        "                       complete within N ms (0 = off)\n"
        "  --write-timeout-ms N give up on peers not reading responses\n"
        "                       after N ms (0 = off)\n"
        "  --drain-timeout-ms N SIGTERM drain budget before hard-close\n"
        "                       (default 5000)\n"
        "  --help               this text\n"
        "\n"
        "exit codes: 0 clean shutdown, 1 runtime failure, 2 usage error\n";
  return code;
}

std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::size_t pos = 0;
  const unsigned long long v = std::stoull(text, &pos);
  if (pos != text.size()) {
    throw std::invalid_argument(std::string(flag) + ": not an integer: " +
                                text);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_name = "smoke";
  std::string socket_path;
  std::string metrics_path;
  double metrics_interval_ms = 0.0;
  std::string trace_path;
  int tcp_port = -1;
  std::size_t threads = 0;
  bool seed_given = false;
  std::uint64_t seed = 0;
  std::size_t n_flows = 0;
  std::size_t max_bundles = 0;
  serve::ServerOptions options;

  driver::ExperimentGrid grid;
  try {
    const auto next = [&](int& i) -> std::string {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(argv[i]) +
                                    " requires an argument");
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--list-grids") {
        for (const auto name : driver::grid_names()) {
          std::cout << name << "\n";
        }
        return 0;
      } else if (arg == "--grid") {
        grid_name = next(i);
      } else if (arg == "--socket") {
        socket_path = next(i);
      } else if (arg == "--tcp") {
        tcp_port = static_cast<int>(parse_u64(next(i), "--tcp"));
      } else if (arg == "--threads") {
        threads = parse_u64(next(i), "--threads");
      } else if (arg == "--seed") {
        seed = parse_u64(next(i), "--seed");
        seed_given = true;
      } else if (arg == "--n-flows") {
        n_flows = parse_u64(next(i), "--n-flows");
      } else if (arg == "--max-bundles") {
        max_bundles = parse_u64(next(i), "--max-bundles");
      } else if (arg == "--metrics") {
        metrics_path = next(i);
      } else if (arg == "--metrics-interval-ms") {
        metrics_interval_ms = std::stod(next(i));
      } else if (arg == "--trace") {
        trace_path = next(i);
      } else if (arg == "--max-connections") {
        options.max_connections = parse_u64(next(i), "--max-connections");
      } else if (arg == "--max-inflight") {
        options.max_inflight = parse_u64(next(i), "--max-inflight");
      } else if (arg == "--shed-p99-us") {
        options.shed_p99_us = std::stod(next(i));
      } else if (arg == "--request-deadline-ms") {
        options.request_deadline_ms =
            static_cast<int>(parse_u64(next(i), "--request-deadline-ms"));
      } else if (arg == "--idle-timeout-ms") {
        options.idle_timeout_ms =
            static_cast<int>(parse_u64(next(i), "--idle-timeout-ms"));
      } else if (arg == "--frame-timeout-ms") {
        options.frame_timeout_ms =
            static_cast<int>(parse_u64(next(i), "--frame-timeout-ms"));
      } else if (arg == "--write-timeout-ms") {
        options.write_timeout_ms =
            static_cast<int>(parse_u64(next(i), "--write-timeout-ms"));
      } else if (arg == "--drain-timeout-ms") {
        options.drain_timeout_ms =
            static_cast<int>(parse_u64(next(i), "--drain-timeout-ms"));
      } else {
        std::cerr << "manytiers_serve: unknown flag " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (socket_path.empty()) {
      std::cerr << "manytiers_serve: --socket is required\n";
      return usage(std::cerr, 2);
    }
    grid = driver::named_grid(grid_name);
    if (seed_given) grid.base.seed = seed;
    if (n_flows != 0) grid.base.n_flows = n_flows;
    if (max_bundles != 0) grid.max_bundles = max_bundles;
    if (metrics_interval_ms > 0.0 && metrics_path.empty()) {
      std::cerr << "manytiers_serve: --metrics-interval-ms requires "
                   "--metrics\n";
      return usage(std::cerr, 2);
    }
  } catch (const std::exception& err) {
    std::cerr << "manytiers_serve: " << err.what() << "\n";
    return 2;
  }

  if (!trace_path.empty()) {
    obs::Tracer::instance().start(trace_path);
  } else {
    obs::maybe_start_trace_from_env();
  }
  if (obs::Tracer::instance().active()) {
    obs::Tracer::instance().set_process_name("manytiers_serve " + grid_name);
  }
  if (!metrics_path.empty()) obs::set_enabled(true);

  // Block the shutdown signals in every thread (handlers and accept
  // loops inherit this mask), then take them synchronously via sigwait
  // below — no async-signal-safety dance, no self-pipe.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (pthread_sigmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::cerr << "manytiers_serve: pthread_sigmask failed\n";
    return 1;
  }

  try {
    options.unix_path = socket_path;
    options.tcp_port = tcp_port;
    options.threads = threads;
    serve::Server server(grid, options);
    server.start();

    // Time-series stream: started after the server so the baseline tick
    // includes calibration-time metrics, stopped before the final
    // sidecar write so the last tick covers the drain.
    std::optional<obs::PeriodicSnapshotter> snapshotter;
    if (metrics_interval_ms > 0.0) {
      snapshotter.emplace(obs::PeriodicSnapshotter::Options{
          obs::series_path_for(metrics_path), metrics_interval_ms});
      snapshotter->start();
    }

    std::cout << "SERVE_JSON {\"event\":\"ready\",\"grid\":\"" << grid_name
              << "\",\"socket\":\"" << socket_path
              << "\",\"markets\":" << server.snapshot()->markets.size()
              << ",\"epoch\":" << server.epoch();
    if (server.tcp_port() >= 0) {
      std::cout << ",\"tcp_port\":" << server.tcp_port();
    }
    std::cout << "}" << std::endl;  // endl: supervisors wait on this line

    int sig = 0;
    while (sigwait(&mask, &sig) != 0) {
    }
    if (sig == SIGTERM) {
      std::cout << "SERVE_JSON {\"event\":\"draining\",\"signal\":" << sig
                << ",\"active_connections\":" << server.active_connections()
                << ",\"drain_timeout_ms\":" << options.drain_timeout_ms << "}"
                << std::endl;
      server.drain();
      std::cout << "SERVE_JSON {\"event\":\"drained\",\"shed\":"
                << server.shed_total() << "}" << std::endl;
    }
    std::cout << "SERVE_JSON {\"event\":\"shutdown\",\"signal\":" << sig
              << ",\"epoch\":" << server.epoch() << "}" << std::endl;
    server.stop();

    if (snapshotter) snapshotter->stop();
    if (!metrics_path.empty()) {
      util::write_file_durable(
          metrics_path,
          obs::snapshot_to_json(obs::Registry::instance().snapshot()));
    }
    obs::Tracer::instance().flush();
  } catch (const std::exception& err) {
    std::cerr << "manytiers_serve: " << err.what() << "\n";
    return 1;
  }
  return 0;
}
