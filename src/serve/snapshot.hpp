// The serving snapshot: every answer the daemon can give, precomputed.
//
// A Snapshot is the immutable output of one calibration pass over a
// grid spec: per (dataset, demand, cost) market it holds the calibrated
// Market plus a priced tier schedule for every (strategy, bundle count)
// combination the grid names — built by the exact run_strategy_series /
// price_bundles path the batch driver evaluates, so the daemon and
// `manytiers_batch` answer from one pricing truth (the determinism test
// byte-compares the two).
//
// Snapshots are published to reader threads through one atomic
// shared_ptr swap (RCU-style): queries load the pointer once, answer
// entirely from that object, and tag the response with its epoch, so a
// concurrent `reload` can recalibrate and swap without a reader ever
// observing a half-updated schedule. Nothing in this header mutates
// after build_snapshot returns.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "driver/grid.hpp"
#include "pricing/counterfactual.hpp"
#include "serve/protocol.hpp"

namespace manytiers::serve {

// One pricing tier schedule: the strategy's bundling at one tier count,
// reduced to what queries need — per-tier price + relative-cost span
// (tiers sorted ascending by cost range), the flow -> tier map, and the
// capture the batch driver would report for this cell.
struct Schedule {
  double capture = 0.0;
  std::vector<TierInfo> tiers;
  std::vector<std::size_t> tier_of_flow;  // expanded flow index -> tier
};

// One calibrated market: a (dataset, demand, cost) grid cell at the
// grid's base parameters, plus the cost context needed to price flows
// that were never in the calibration set.
struct MarketEntry {
  std::string key;  // "dataset/demand/cost"
  workload::DatasetKind dataset{};
  demand::DemandKind demand{};
  driver::CostKind cost{};
  pricing::Market market;
  std::unique_ptr<cost::CostModel> cost_model;
  // The calibration set's maximum-distance raw flow. Pricing a new
  // (q, d, class) flow evaluates the cost model on {proxy, query}, so
  // distance-normalized models (linear, concave) see the market's own
  // d_max and the query's relative cost lands on the same scale as the
  // calibrated flows'.
  workload::Flow proxy;
  // schedules[strategy_slot][b - 1], strategy_slot in grid order.
  std::vector<std::vector<Schedule>> schedules;

  explicit MarketEntry(pricing::Market calibrated)
      : market(std::move(calibrated)) {}

  const Schedule& schedule(std::size_t strategy_slot,
                           std::size_t bundles) const {
    return schedules[strategy_slot][bundles - 1];
  }
};

struct Snapshot {
  std::uint64_t epoch = 0;
  driver::ExperimentGrid grid;
  // Enumeration order (dataset-major, then demand, then cost). Entries
  // are shared_ptr so a derived snapshot (updates reload) can share the
  // clean markets of its predecessor and rebuild only the dirty ones.
  std::vector<std::shared_ptr<const MarketEntry>> markets;
  std::unordered_map<std::string, std::size_t> by_key;

  const MarketEntry* find_market(std::string_view key) const;
  // Slot of `strategy` within grid.strategies; nullopt when the grid
  // does not serve it.
  std::optional<std::size_t> strategy_slot(pricing::Strategy strategy) const;
};

// "EU ISP/ced/linear" — cell_key without the strategy part.
std::string market_key(workload::DatasetKind dataset,
                       demand::DemandKind demand, driver::CostKind cost);

// Resolve a strategy display name ("Optimal", "Profit-weighted", ...).
std::optional<pricing::Strategy> strategy_from_name(std::string_view name);

struct SnapshotBuildOptions {
  std::size_t threads = 0;  // markets calibrate via util::parallel_for
  std::uint64_t epoch = 1;
  // When set, calibrate from these flow sets (one per grid dataset, in
  // grid.datasets order; must outlive the call) instead of generating
  // them — the dynamic-network path builds reference snapshots from its
  // own re-costed flows.
  const std::vector<workload::FlowSet>* flows_override = nullptr;
};

// Calibrate every market of the grid and price every strategy x bundle
// count. Throws std::invalid_argument on invalid grids and on sweep
// grids (the daemon serves base-parameter markets; a sweep axis has no
// single answer per cell).
std::shared_ptr<const Snapshot> build_snapshot(
    const driver::ExperimentGrid& grid, const SnapshotBuildOptions& options = {});

// Calibrate and price one (dataset, demand, cost) market of the grid
// from the given dataset flows — the unit build_snapshot fans out over
// and the dynamic reload path rebuilds dirty markets with.
std::shared_ptr<const MarketEntry> build_market_entry(
    const driver::ExperimentGrid& grid, const workload::FlowSet& flows,
    std::size_t ds_i, std::size_t dem_i, std::size_t cost_i);

// --- Query evaluators (socket-free, unit-testable) ---

struct Quote {
  std::size_t tier = 0;
  double price = 0.0;
  double rel_cost = 0.0;
};

// Relative cost of a new (q, d, class) flow in this market's cost
// context. `cls` addresses the cost model's classes (regional: 0 metro,
// 1 national, 2 international; dest-type: 0 on-net, 1 off-net;
// continuous models: must be 0). Throws std::invalid_argument on a bad
// class or non-positive demand / negative distance.
double query_relative_cost(const MarketEntry& entry, double q, double d,
                           std::size_t cls);

// Quote a new flow against a tier schedule: the first tier whose
// relative-cost span contains the flow's relative cost, or the nearest
// span when none does (ties resolve to the lower tier).
Quote price_flow(const MarketEntry& entry, const Schedule& schedule, double q,
                 double d, std::size_t cls);

// Re-quote an existing customer flow (index into the market's expanded
// flow set). Throws std::invalid_argument when out of range.
Quote requote_flow(const MarketEntry& entry, const Schedule& schedule,
                   std::size_t flow);

}  // namespace manytiers::serve
