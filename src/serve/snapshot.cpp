#include "serve/snapshot.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "bundling/bundle.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "workload/generators.hpp"

namespace manytiers::serve {

namespace {

constexpr pricing::Strategy kAllStrategies[] = {
    pricing::Strategy::Optimal,        pricing::Strategy::DemandWeighted,
    pricing::Strategy::CostWeighted,   pricing::Strategy::ProfitWeighted,
    pricing::Strategy::CostDivision,   pricing::Strategy::IndexDivision,
    pricing::Strategy::ClassAwareProfitWeighted};

// Reduce one priced bundling to the tier schedule queries consume.
// Tiers sort ascending by relative-cost span (then price, then the
// original bundle index), which both presents the schedule the way the
// paper draws tiers and makes the order deterministic.
Schedule make_schedule(const pricing::Market& market,
                       const pricing::StrategyResult& result) {
  const auto& bundling = result.pricing.bundles;
  const auto& rel = market.relative_costs();
  const auto& flows = market.flows();

  struct Raw {
    TierInfo info;
    std::size_t bundle = 0;
  };
  std::vector<Raw> raw(bundling.size());
  for (std::size_t b = 0; b < bundling.size(); ++b) {
    Raw& tier = raw[b];
    tier.bundle = b;
    tier.info.price = result.pricing.bundle_prices[b];
    tier.info.n_flows = bundling[b].size();
    tier.info.rel_cost_lo = std::numeric_limits<double>::infinity();
    tier.info.rel_cost_hi = -std::numeric_limits<double>::infinity();
    for (const std::size_t i : bundling[b]) {
      tier.info.rel_cost_lo = std::min(tier.info.rel_cost_lo, rel[i]);
      tier.info.rel_cost_hi = std::max(tier.info.rel_cost_hi, rel[i]);
      tier.info.demand_mbps += flows[i].demand_mbps;
    }
  }
  std::sort(raw.begin(), raw.end(), [](const Raw& a, const Raw& b) {
    if (a.info.rel_cost_lo != b.info.rel_cost_lo) {
      return a.info.rel_cost_lo < b.info.rel_cost_lo;
    }
    if (a.info.rel_cost_hi != b.info.rel_cost_hi) {
      return a.info.rel_cost_hi < b.info.rel_cost_hi;
    }
    if (a.info.price != b.info.price) return a.info.price < b.info.price;
    return a.bundle < b.bundle;
  });

  Schedule schedule;
  schedule.capture = result.capture;
  schedule.tiers.reserve(raw.size());
  std::vector<std::size_t> tier_of_bundle(raw.size());
  for (std::size_t t = 0; t < raw.size(); ++t) {
    schedule.tiers.push_back(raw[t].info);
    tier_of_bundle[raw[t].bundle] = t;
  }
  const auto bundle_of =
      bundling::bundle_of_flow(bundling, market.size());
  schedule.tier_of_flow.resize(market.size());
  for (std::size_t i = 0; i < market.size(); ++i) {
    schedule.tier_of_flow[i] = tier_of_bundle[bundle_of[i]];
  }
  return schedule;
}

}  // namespace

const MarketEntry* Snapshot::find_market(std::string_view key) const {
  const auto it = by_key.find(std::string(key));
  if (it == by_key.end()) return nullptr;
  return markets[it->second].get();
}

std::optional<std::size_t> Snapshot::strategy_slot(
    pricing::Strategy strategy) const {
  for (std::size_t s = 0; s < grid.strategies.size(); ++s) {
    if (grid.strategies[s] == strategy) return s;
  }
  return std::nullopt;
}

std::string market_key(workload::DatasetKind dataset,
                       demand::DemandKind demand, driver::CostKind cost) {
  std::string key;
  key += workload::to_string(dataset);
  key += '/';
  key += driver::to_string(demand);
  key += '/';
  key += driver::to_string(cost);
  return key;
}

std::optional<pricing::Strategy> strategy_from_name(std::string_view name) {
  for (const auto strategy : kAllStrategies) {
    if (pricing::to_string(strategy) == name) return strategy;
  }
  return std::nullopt;
}

std::shared_ptr<const MarketEntry> build_market_entry(
    const driver::ExperimentGrid& grid, const workload::FlowSet& flows,
    std::size_t ds_i, std::size_t dem_i, std::size_t cost_i) {
  pricing::DemandSpec spec;
  spec.kind = grid.demand_kinds[dem_i];
  spec.alpha = grid.base.alpha;
  spec.no_purchase_share = grid.base.s0;
  auto cost_model =
      driver::make_cost_model(grid.cost_kinds[cost_i], grid.base.theta);
  auto entry = std::make_shared<MarketEntry>(pricing::Market::calibrate(
      flows, spec, *cost_model, grid.base.blended_price));
  entry->dataset = grid.datasets[ds_i];
  entry->demand = grid.demand_kinds[dem_i];
  entry->cost = grid.cost_kinds[cost_i];
  entry->key = market_key(entry->dataset, entry->demand, entry->cost);
  entry->cost_model = std::move(cost_model);
  // The raw (pre-expansion) maximum-distance flow anchors the cost
  // context for new-flow queries.
  std::size_t far = 0;
  for (std::size_t i = 1; i < flows.size(); ++i) {
    if (flows[i].distance_miles > flows[far].distance_miles) far = i;
  }
  entry->proxy = flows[far];

  entry->schedules.resize(grid.strategies.size());
  for (std::size_t s = 0; s < grid.strategies.size(); ++s) {
    const auto series = pricing::run_strategy_series(
        entry->market, grid.strategies[s], grid.max_bundles);
    entry->schedules[s].reserve(series.size());
    for (const auto& result : series) {
      entry->schedules[s].push_back(make_schedule(entry->market, result));
    }
  }
  return entry;
}

std::shared_ptr<const Snapshot> build_snapshot(
    const driver::ExperimentGrid& grid, const SnapshotBuildOptions& options) {
  driver::validate_grid(grid);
  if (grid.sweep.kind != driver::SweepAxis::Kind::None) {
    throw std::invalid_argument(
        "serve snapshot: grid \"" + grid.name +
        "\" has a sweep axis; the daemon serves base-parameter markets "
        "only");
  }

  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = options.epoch;
  snapshot->grid = grid;

  // Datasets generate once, shared across demand/cost combinations —
  // same sharing run_grid does.
  std::vector<workload::FlowSet> generated;
  if (options.flows_override != nullptr) {
    if (options.flows_override->size() != grid.datasets.size()) {
      throw std::invalid_argument(
          "serve snapshot: flows_override needs one flow set per grid "
          "dataset");
    }
  } else {
    generated.reserve(grid.datasets.size());
    for (const auto kind : grid.datasets) {
      generated.push_back(workload::generate_dataset(
          kind, {.seed = grid.base.seed, .n_flows = grid.base.n_flows}));
    }
  }
  const std::vector<workload::FlowSet>& flows =
      options.flows_override != nullptr ? *options.flows_override : generated;

  const std::size_t n_markets =
      grid.datasets.size() * grid.demand_kinds.size() * grid.cost_kinds.size();
  snapshot->markets.resize(n_markets);

  obs::Registry& registry = obs::Registry::instance();
  static obs::Counter& built_counter =
      registry.counter("serve.snapshot_markets");
  const bool tracing = obs::Tracer::instance().active();
  const obs::Span span(
      "serve.build_snapshot",
      tracing ? "{\"markets\":" + std::to_string(n_markets) +
                    ",\"epoch\":" + std::to_string(options.epoch) + "}"
              : std::string());

  util::parallel_for(
      n_markets,
      [&](std::size_t m) {
        const std::size_t n_cost = grid.cost_kinds.size();
        const std::size_t n_dem = grid.demand_kinds.size();
        const std::size_t cost_i = m % n_cost;
        const std::size_t dem_i = (m / n_cost) % n_dem;
        const std::size_t ds_i = m / n_cost / n_dem;
        snapshot->markets[m] =
            build_market_entry(grid, flows[ds_i], ds_i, dem_i, cost_i);
      },
      options.threads);

  for (std::size_t m = 0; m < n_markets; ++m) {
    snapshot->by_key.emplace(snapshot->markets[m]->key, m);
  }
  built_counter.add(n_markets);
  return snapshot;
}

double query_relative_cost(const MarketEntry& entry, double q, double d,
                           std::size_t cls) {
  if (!(q > 0.0)) {
    throw std::invalid_argument("price query: demand q must be > 0");
  }
  if (!(d >= 0.0)) {
    throw std::invalid_argument("price query: distance d must be >= 0");
  }
  workload::Flow query;
  query.demand_mbps = q;
  query.distance_miles = d;
  switch (entry.cost) {
    case driver::CostKind::Linear:
    case driver::CostKind::Concave:
      if (cls != 0) {
        throw std::invalid_argument(
            "price query: cost model \"" +
            std::string(driver::to_string(entry.cost)) +
            "\" has no discrete classes; class must be 0");
      }
      break;
    case driver::CostKind::Regional:
      if (cls > 2) {
        throw std::invalid_argument(
            "price query: regional class must be 0 (metro), 1 (national) "
            "or 2 (international)");
      }
      query.region = static_cast<geo::Region>(cls);
      break;
    case driver::CostKind::DestType:
      if (cls > 1) {
        throw std::invalid_argument(
            "price query: dest-type class must be 0 (on-net) or 1 "
            "(off-net)");
      }
      query.dest_type = static_cast<workload::DestType>(cls);
      break;
  }
  // Evaluate the model on {proxy, query}: the proxy pins the market's
  // maximum raw distance, so distance-normalized relative costs land on
  // the calibrated scale (a query farther than every calibrated flow
  // raises its own normalizer, exactly as appending it to the full set
  // would).
  workload::FlowSet context("query context");
  context.add(entry.proxy);
  context.add(query);
  const auto expanded = entry.cost_model->expand(context);
  const auto rel = entry.cost_model->relative_costs(expanded);
  // Identity-expanding models keep the query at index 1; dest-type
  // splits each flow in two (on, off), putting the query's sub-flows at
  // 2 and 3 with the class selecting which one.
  const std::size_t at =
      entry.cost == driver::CostKind::DestType ? 2 + cls : 1;
  return rel[at];
}

Quote price_flow(const MarketEntry& entry, const Schedule& schedule, double q,
                 double d, std::size_t cls) {
  const double f = query_relative_cost(entry, q, d, cls);
  std::size_t best = 0;
  double best_gap = std::numeric_limits<double>::infinity();
  for (std::size_t t = 0; t < schedule.tiers.size(); ++t) {
    const TierInfo& tier = schedule.tiers[t];
    const double gap =
        std::max({tier.rel_cost_lo - f, f - tier.rel_cost_hi, 0.0});
    if (gap < best_gap) {
      best_gap = gap;
      best = t;
      if (gap == 0.0) break;  // first containing tier wins
    }
  }
  return {best, schedule.tiers[best].price, f};
}

Quote requote_flow(const MarketEntry& entry, const Schedule& schedule,
                   std::size_t flow) {
  if (flow >= schedule.tier_of_flow.size()) {
    throw std::invalid_argument(
        "requote: flow index " + std::to_string(flow) +
        " out of range for market of " +
        std::to_string(schedule.tier_of_flow.size()) + " flows");
  }
  const std::size_t tier = schedule.tier_of_flow[flow];
  return {tier, schedule.tiers[tier].price, entry.market.relative_costs()[flow]};
}

}  // namespace manytiers::serve
