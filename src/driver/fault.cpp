#include "driver/fault.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace manytiers::driver {

namespace {

std::size_t parse_count(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("fault spec: empty ") + what);
  }
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(std::string("fault spec: bad ") + what +
                                  " \"" + std::string(text) + "\"");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

FaultSpec parse_spec(std::string_view item) {
  // Split on every ':' — a trailing colon yields an (invalid) empty
  // field, so "crash:1:" is rejected rather than silently defaulted.
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = item.find(':', start);
    fields.push_back(item.substr(start, colon == std::string_view::npos
                                            ? std::string_view::npos
                                            : colon - start));
    if (colon == std::string_view::npos) break;
    start = colon + 1;
  }
  if (fields.size() < 2) {
    throw std::invalid_argument("fault spec: expected kind:shard[:times], "
                                "got \"" + std::string(item) + "\"");
  }
  FaultSpec spec;
  const std::string_view kind = fields[0];
  if (kind == "crash") {
    spec.kind = FaultKind::Crash;
  } else if (kind == "stall") {
    spec.kind = FaultKind::Stall;
  } else if (kind == "slow") {
    spec.kind = FaultKind::Slow;
  } else if (kind == "corrupt") {
    spec.kind = FaultKind::Corrupt;
  } else if (kind == "partial") {
    spec.kind = FaultKind::Partial;
  } else {
    throw std::invalid_argument("fault spec: unknown kind \"" +
                                std::string(kind) + "\"");
  }
  spec.shard = parse_count(fields[1], "shard index");
  std::size_t next = 2;
  if (spec.kind == FaultKind::Slow) {
    // slow:shard:ms[:times] — the straggle duration is mandatory.
    if (fields.size() < 3) {
      throw std::invalid_argument(
          "fault spec: slow requires a duration, expected "
          "slow:shard:ms[:times]");
    }
    spec.delay_ms = parse_count(fields[2], "slow duration (ms)");
    if (spec.delay_ms == 0) {
      throw std::invalid_argument("fault spec: slow duration must be >= 1 ms");
    }
    next = 3;
  }
  if (fields.size() > next) {
    spec.times = parse_count(fields[next], "times count");
    if (spec.times == 0) {
      throw std::invalid_argument("fault spec: times must be >= 1");
    }
    ++next;
  }
  if (fields.size() > next) {
    throw std::invalid_argument("fault spec: trailing fields in \"" +
                                std::string(item) + "\"");
  }
  return spec;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Stall: return "stall";
    case FaultKind::Slow: return "slow";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Partial: return "partial";
  }
  throw std::invalid_argument("unknown fault kind");
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size() && !spec.empty()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view item =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    if (item.empty()) {
      throw std::invalid_argument("fault spec: empty entry in \"" +
                                  std::string(spec) + "\"");
    }
    plan.faults.push_back(parse_spec(item));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return plan;
}

std::optional<FaultSpec> fault_for(const FaultPlan& plan, std::size_t shard,
                                   std::size_t attempt) {
  for (const auto& spec : plan.faults) {
    if (spec.shard == shard && attempt < spec.times) return spec;
  }
  return std::nullopt;
}

FaultPlan fault_plan_from_env() {
  const char* spec = std::getenv("MANYTIERS_FAULT");
  if (spec == nullptr) return {};
  return parse_fault_plan(spec);
}

std::size_t fault_attempt_from_env() {
  const char* text = std::getenv("MANYTIERS_FAULT_ATTEMPT");
  if (text == nullptr) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<std::size_t>(value);
}

}  // namespace manytiers::driver
