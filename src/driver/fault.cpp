#include "driver/fault.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace manytiers::driver {

namespace {

std::size_t parse_count(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("fault spec: empty ") + what);
  }
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument(std::string("fault spec: bad ") + what +
                                  " \"" + std::string(text) + "\"");
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

FaultSpec parse_spec(std::string_view item) {
  FaultSpec spec;
  const std::size_t first = item.find(':');
  if (first == std::string_view::npos) {
    throw std::invalid_argument("fault spec: expected kind:shard[:times], "
                                "got \"" + std::string(item) + "\"");
  }
  const std::string_view kind = item.substr(0, first);
  if (kind == "crash") {
    spec.kind = FaultKind::Crash;
  } else if (kind == "stall") {
    spec.kind = FaultKind::Stall;
  } else if (kind == "corrupt") {
    spec.kind = FaultKind::Corrupt;
  } else {
    throw std::invalid_argument("fault spec: unknown kind \"" +
                                std::string(kind) + "\"");
  }
  std::string_view rest = item.substr(first + 1);
  const std::size_t second = rest.find(':');
  if (second == std::string_view::npos) {
    spec.shard = parse_count(rest, "shard index");
  } else {
    spec.shard = parse_count(rest.substr(0, second), "shard index");
    spec.times = parse_count(rest.substr(second + 1), "times count");
    if (spec.times == 0) {
      throw std::invalid_argument("fault spec: times must be >= 1");
    }
  }
  return spec;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::Stall: return "stall";
    case FaultKind::Corrupt: return "corrupt";
  }
  throw std::invalid_argument("unknown fault kind");
}

FaultPlan parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size() && !spec.empty()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view item =
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start);
    if (item.empty()) {
      throw std::invalid_argument("fault spec: empty entry in \"" +
                                  std::string(spec) + "\"");
    }
    plan.faults.push_back(parse_spec(item));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return plan;
}

std::optional<FaultKind> fault_for(const FaultPlan& plan, std::size_t shard,
                                   std::size_t attempt) {
  for (const auto& spec : plan.faults) {
    if (spec.shard == shard && attempt < spec.times) return spec.kind;
  }
  return std::nullopt;
}

FaultPlan fault_plan_from_env() {
  const char* spec = std::getenv("MANYTIERS_FAULT");
  if (spec == nullptr) return {};
  return parse_fault_plan(spec);
}

std::size_t fault_attempt_from_env() {
  const char* text = std::getenv("MANYTIERS_FAULT_ATTEMPT");
  if (text == nullptr) return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  return static_cast<std::size_t>(value);
}

}  // namespace manytiers::driver
