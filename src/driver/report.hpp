// Consolidated batch reports: the machine-diffable output of run_grid.
//
// A report is a sequence of "BATCH_JSON {...}" lines (one JSON object per
// line, same convention as the benches' BENCH_JSON) holding the grid
// signature, one record per cell with its capture envelope, and an
// optional timing record. Capture values round-trip exactly (%.17g), so
// two reports of the same grid can be compared bit-for-bit — that is
// what the golden regression test and tools/bench_diff.py rely on.
//
// Sharding: a shard's report carries partial envelopes (each cell covers
// only the parameter points the shard owned). merge_shards folds a
// complete shard set back into the unsharded report; min/max are exactly
// associative and commutative, so the merge is bit-identical to a
// single-process run regardless of the shard count.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/grid.hpp"
#include "pricing/sensitivity.hpp"
#include "util/table.hpp"

namespace manytiers::driver {

// Schema v2 (optional, --per-point): one record per evaluated parameter
// point, keyed by the point's global index within its cell, so a diff
// can name *which* parameter point regressed instead of only the
// envelope. Points are stored in ascending index order.
struct PointCapture {
  std::size_t point = 0;        // parameter point index, 0..points_per_cell-1
  std::vector<double> capture;  // the capture series, length max_bundles
};

struct CellResult {
  GridCell cell;
  // Envelope over the parameter points this run owned; points == 0 (an
  // untouched cell of a shard) keeps +/-inf sentinels in min/max.
  pricing::SweepResult sweep;
  double wall_ms = 0.0;  // summed task wall time; never compared bitwise
  std::vector<PointCapture> detail;  // per-point capture, schema v2 only
};

struct BatchReport {
  std::string grid_name;
  std::string signature;
  std::size_t max_bundles = 0;
  std::size_t points_per_cell = 0;  // of the FULL grid, not this shard
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t threads = 0;
  bool per_point = false;  // schema v2: cells carry per-point detail
  double wall_ms = 0.0;
  std::vector<CellResult> cells;  // every grid cell, enumeration order
};

// A zero-point envelope: +/-inf sentinels that min/max folds replace on
// the first real point. The neutral element of merge_shards.
pricing::SweepResult empty_envelope(std::size_t max_bundles);

// Render / parse the BATCH_JSON line format. `include_timing` off drops
// the per-cell and total wall-clock fields, producing a byte-stable
// artifact (the golden report is written this way). Reports with
// per_point set additionally emit one "point" record per evaluated
// parameter point after each cell record.
void write_report(std::ostream& os, const BatchReport& report,
                  bool include_timing = true);
std::string report_to_string(const BatchReport& report,
                             bool include_timing = true);
BatchReport read_report(std::istream& is);

// Fold a complete shard set (every shard_index 0..K-1 exactly once, all
// with matching signatures) into the unsharded report. Throws on
// mismatched signatures, duplicate or missing shards, or per-cell point
// counts that do not add up to the full grid.
BatchReport merge_shards(const std::vector<BatchReport>& shards);

// Integrity check for one shard's partial report — the orchestrator's
// corrupt-part detector, run on every worker output before it is
// accepted. Verifies the part claims the expected grid (signature,
// max_bundles, points_per_cell), carries the expected shard
// coordinates, lists every grid cell in enumeration order, and covers
// exactly the parameter points shard `index` of `count` owns under the
// round-robin task split. Throws std::invalid_argument with the reason.
void validate_part(const BatchReport& part, const ExperimentGrid& grid,
                   std::size_t shard_index, std::size_t shard_count);

// Capture-vs-bundles table of one dataset's cells (rows follow the
// grid's strategy order) — the shape of the paper's Figs. 8 and 9. Only
// meaningful for fully-evaluated reports; sweep cells show the envelope
// minimum, matching the paper's worst-case robustness plots.
util::TextTable capture_table(const BatchReport& report,
                              workload::DatasetKind dataset);

}  // namespace manytiers::driver
