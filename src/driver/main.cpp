// manytiers_batch: the batch experiment CLI.
//
// Runs a named ExperimentGrid (optionally one shard of it, or all shards
// in-process with an explicit merge) and writes the consolidated
// BATCH_JSON report. Partial shard reports written with --shard-index can
// later be folded together with --merge, reproducing the unsharded
// report bit-for-bit.
//
//   manytiers_batch --grid smoke --out report.batch
//   manytiers_batch --grid default --shard-index 1 --shard-count 4
//       --out part1.batch
//   manytiers_batch --merge part0.batch part1.batch ... --out full.batch
//   manytiers_batch --grid smoke --shards 2 --no-timing --out merged.batch
//
// Exit codes (the orchestrator's contract): 0 success, 1 runtime
// failure, 2 usage error. `--out` files are written atomically and
// durably (temp file + fsync + rename), so a supervisor never reads a
// torn report after a clean exit.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "driver/fault.hpp"
#include "driver/grid.hpp"
#include "driver/report.hpp"
#include "driver/runner.hpp"
#include "obs/registry.hpp"
#include "obs/snapshotter.hpp"
#include "obs/trace.hpp"
#include "util/file.hpp"

namespace {

using namespace manytiers;

int usage(std::ostream& os, int code) {
  os << "usage: manytiers_batch [options]\n"
        "  --grid NAME          grid to run (default \"default\")\n"
        "  --list-grids         print known grid names and exit\n"
        "  --threads N          worker threads (0 = MANYTIERS_THREADS / "
        "hardware)\n"
        "  --shard-index I      run only shard I (requires --shard-count)\n"
        "  --shard-count K      total number of shards (default 1)\n"
        "  --shards K           run all K shards in-process, then merge\n"
        "  --merge F1 F2 ...    merge partial shard reports instead of "
        "running\n"
        "  --out PATH           write the report to PATH (default stdout); "
        "the\n"
        "                       file appears atomically (fsync + rename)\n"
        "  --no-timing          omit wall-clock fields (byte-stable output)\n"
        "  --per-point          schema v2: store per-point capture vectors\n"
        "                       (one \"point\" record per parameter point)\n"
        "  --heartbeat PATH     touch PATH periodically while computing, so "
        "a\n"
        "                       supervisor can tell slow from hung\n"
        "  --heartbeat-interval-ms N   beat period (default 100)\n"
        "  --trace PATH         write a Chrome-trace-event JSON timeline to\n"
        "                       PATH (Perfetto-loadable; MANYTIERS_TRACE is\n"
        "                       the flagless equivalent). Never changes the\n"
        "                       report bytes.\n"
        "  --metrics PATH       write an obs-registry metrics sidecar\n"
        "                       (counters/gauges/histograms, one JSON record\n"
        "                       per line) to PATH after the report\n"
        "  --metrics-interval-ms N  also stream delta snapshots every N ms\n"
        "                       to the PATH-derived .series.json (requires\n"
        "                       --metrics); flushed heartbeat-style during\n"
        "                       the run, never changes the report bytes\n"
        "  --trace-sample N     keep 1/N of per-task sweep spans (hash-based\n"
        "                       and deterministic across shard processes);\n"
        "                       lifecycle spans are always kept (0/1 = all)\n"
        "  --seed S             dataset seed override\n"
        "  --n-flows N          flows per dataset override\n"
        "  --max-bundles B      bundle-count ceiling override\n"
        "exit codes:\n"
        "  0  success\n"
        "  1  runtime failure (grid evaluation, merge, or report IO)\n"
        "  2  usage error (bad flags, unknown grid, malformed "
        "MANYTIERS_FAULT)\n"
        "test hooks: MANYTIERS_FAULT=kind:shard[:times],... with kind in\n"
        "  {crash, stall, slow, corrupt, partial} injects deterministic\n"
        "  worker faults (slow takes a duration: slow:shard:ms[:times]);\n"
        "  MANYTIERS_FAULT_ATTEMPT gates specs to retry attempts < times.\n";
  return code;
}

std::uint64_t parse_u64(const std::string& text, const char* flag) {
  std::size_t used = 0;
  const std::uint64_t value = std::stoull(text, &used);
  if (used != text.size()) {
    throw std::invalid_argument(std::string(flag) + ": not a number: " + text);
  }
  return value;
}

double parse_double(const std::string& text, const char* flag) {
  std::size_t used = 0;
  const double value = std::stod(text, &used);
  if (used != text.size()) {
    throw std::invalid_argument(std::string(flag) + ": not a number: " + text);
  }
  return value;
}

// Liveness beacon: touches the heartbeat file on an interval from a
// background thread for as long as the object lives. The supervisor
// reads the file's mtime; a worker that stops being scheduled (hung,
// swapped out, SIGSTOPped) stops beating, while a merely slow one keeps
// beating through the whole computation.
class Heartbeat {
 public:
  Heartbeat(std::string path, double interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    manytiers::util::touch_file(path_);  // first beat before any work
    thread_ = std::thread([this] { run(); });
  }

  ~Heartbeat() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                             interval_ms_));
      if (stop_) break;
      lock.unlock();
      manytiers::util::touch_file(path_);
      lock.lock();
    }
  }

  std::string path_;
  double interval_ms_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string grid_name = "default";
  std::string out_path;
  std::vector<std::string> merge_inputs;
  bool merge_mode = false;
  bool include_timing = true;
  std::size_t threads = 0;
  std::size_t shards_in_process = 0;
  driver::ShardPlan shard;
  bool shard_index_given = false;
  bool per_point = false;
  std::string heartbeat_path;
  double heartbeat_interval_ms = 100.0;
  std::string trace_path;
  std::uint64_t trace_sample = 0;
  std::string metrics_path;
  double metrics_interval_ms = 0.0;
  std::uint64_t seed = 0;
  bool seed_given = false;
  std::size_t n_flows = 0;
  std::size_t max_bundles = 0;

  // Phase 1 — argument parsing, grid resolution, and the fault-plan
  // environment. Any failure here is a usage error: exit 2.
  driver::ExperimentGrid grid;
  driver::FaultPlan fault_plan;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(arg + " requires a value");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        return usage(std::cout, 0);
      } else if (arg == "--list-grids") {
        for (const auto name : driver::grid_names()) {
          std::cout << name << '\n';
        }
        return 0;
      } else if (arg == "--grid") {
        grid_name = next();
      } else if (arg == "--threads") {
        threads = parse_u64(next(), "--threads");
      } else if (arg == "--shard-index") {
        shard.index = parse_u64(next(), "--shard-index");
        shard_index_given = true;
      } else if (arg == "--shard-count") {
        shard.count = parse_u64(next(), "--shard-count");
      } else if (arg == "--shards") {
        shards_in_process = parse_u64(next(), "--shards");
      } else if (arg == "--merge") {
        merge_mode = true;
      } else if (arg == "--out") {
        out_path = next();
      } else if (arg == "--no-timing") {
        include_timing = false;
      } else if (arg == "--per-point") {
        per_point = true;
      } else if (arg == "--heartbeat") {
        heartbeat_path = next();
      } else if (arg == "--heartbeat-interval-ms") {
        heartbeat_interval_ms =
            static_cast<double>(parse_u64(next(), "--heartbeat-interval-ms"));
        if (heartbeat_interval_ms <= 0.0) {
          throw std::invalid_argument("--heartbeat-interval-ms must be >= 1");
        }
      } else if (arg == "--trace") {
        trace_path = next();
      } else if (arg == "--trace-sample") {
        trace_sample = parse_u64(next(), "--trace-sample");
      } else if (arg == "--metrics") {
        metrics_path = next();
      } else if (arg == "--metrics-interval-ms") {
        metrics_interval_ms = parse_double(next(), "--metrics-interval-ms");
      } else if (arg == "--seed") {
        seed = parse_u64(next(), "--seed");
        seed_given = true;
      } else if (arg == "--n-flows") {
        n_flows = parse_u64(next(), "--n-flows");
      } else if (arg == "--max-bundles") {
        max_bundles = parse_u64(next(), "--max-bundles");
      } else if (merge_mode && !arg.empty() && arg.front() != '-') {
        merge_inputs.push_back(arg);
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(std::cerr, 2);
      }
    }
    if (merge_mode && (shards_in_process != 0 || shard_index_given)) {
      throw std::invalid_argument("--merge cannot be combined with --shards "
                                  "or --shard-index");
    }
    if (shards_in_process != 0 && shard_index_given) {
      throw std::invalid_argument(
          "--shards (in-process) and --shard-index (single shard) conflict");
    }
    if (merge_mode && merge_inputs.size() < 2) {
      throw std::invalid_argument("--merge needs at least two report files");
    }
    if (!merge_mode) {
      grid = driver::named_grid(grid_name);
      if (seed_given) grid.base.seed = seed;
      if (n_flows != 0) grid.base.n_flows = n_flows;
      if (max_bundles != 0) grid.max_bundles = max_bundles;
    }
    if (metrics_interval_ms > 0.0 && metrics_path.empty()) {
      throw std::invalid_argument(
          "--metrics-interval-ms requires --metrics");
    }
    fault_plan = driver::fault_plan_from_env();
  } catch (const std::exception& err) {
    std::cerr << "manytiers_batch: " << err.what() << "\n";
    return 2;
  }

  // Observability is opt-in and must never change what the run computes
  // or reports (the byte-identity ctest pins this): tracing and the
  // metrics registry only add relaxed atomic work on the side.
  if (!trace_path.empty()) {
    obs::Tracer::instance().start(trace_path);
  } else {
    obs::maybe_start_trace_from_env();
  }
  if (obs::Tracer::instance().active()) {
    std::string process_name = "manytiers_batch " + grid_name;
    if (shard_index_given) {
      process_name += " shard " + std::to_string(shard.index) + "/" +
                      std::to_string(shard.count);
    }
    obs::Tracer::instance().set_process_name(process_name);
  }
  if (trace_sample != 0) obs::Tracer::instance().set_sample_every(trace_sample);
  if (!metrics_path.empty()) obs::set_enabled(true);

  // The fault hook (see driver/fault.hpp): hermetic crash / stall /
  // slow / corrupt / partial injection for orchestrator tests, keyed on
  // this worker's shard index and the supervisor's retry counter. The
  // stall fault hangs BEFORE the heartbeat starts (a wedged process
  // never beats), while slow straggles with the heartbeat running — the
  // two sides of the liveness distinction the supervisor must make.
  bool corrupt_output = false;
  bool partial_output = false;
  std::size_t slow_ms = 0;
  if (const auto fault = driver::fault_for(
          fault_plan, shard_index_given ? shard.index : 0,
          driver::fault_attempt_from_env())) {
    switch (fault->kind) {
      case driver::FaultKind::Crash:
        std::cerr << "manytiers_batch: injected crash\n";
        std::_Exit(70);
      case driver::FaultKind::Stall:
        std::cerr << "manytiers_batch: injected stall\n";
        std::this_thread::sleep_for(std::chrono::minutes(10));
        return 1;  // a supervisor timeout should have fired long ago
      case driver::FaultKind::Slow:
        slow_ms = fault->delay_ms;
        break;
      case driver::FaultKind::Corrupt:
        corrupt_output = true;
        break;
      case driver::FaultKind::Partial:
        partial_output = true;
        break;
    }
  }

  // Phase 2 — evaluation, merge, and report IO. Failures exit 1.
  try {
    std::optional<Heartbeat> heartbeat;
    if (!heartbeat_path.empty()) {
      heartbeat.emplace(heartbeat_path, heartbeat_interval_ms);
    }
    // Heartbeat-style metrics stream: ticks while the grid evaluates,
    // final tick taken before the end-of-run sidecar is written.
    std::optional<obs::PeriodicSnapshotter> snapshotter;
    if (metrics_interval_ms > 0.0) {
      snapshotter.emplace(obs::PeriodicSnapshotter::Options{
          obs::series_path_for(metrics_path), metrics_interval_ms});
      snapshotter->start();
    }
    if (slow_ms != 0) {
      // Deterministic straggler: alive (beating) but slow.
      std::cerr << "manytiers_batch: injected slow (" << slow_ms << " ms)\n";
      std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
    }
    driver::BatchReport report;
    if (merge_mode) {
      std::vector<driver::BatchReport> parts;
      parts.reserve(merge_inputs.size());
      for (const auto& path : merge_inputs) {
        std::ifstream in(path);
        if (!in) {
          throw std::invalid_argument("cannot open report file: " + path);
        }
        parts.push_back(driver::read_report(in));
      }
      report = driver::merge_shards(parts);
    } else if (shards_in_process > 1) {
      std::vector<driver::BatchReport> parts;
      parts.reserve(shards_in_process);
      for (std::size_t k = 0; k < shards_in_process; ++k) {
        parts.push_back(driver::run_grid(
            grid, {threads, {k, shards_in_process}, per_point}));
      }
      report = driver::merge_shards(parts);
    } else {
      report = driver::run_grid(grid, {threads, shard, per_point});
    }

    const std::string payload =
        driver::report_to_string(report, include_timing);
    if (out_path.empty()) {
      std::cout << payload;
    } else if (corrupt_output) {
      // Injected corruption: leave a torn file (over half, so the grid
      // header parses but the cell list is truncated) and exit clean —
      // exactly what a worker killed mid-write would leave behind
      // without the durable write path.
      std::ofstream out(out_path, std::ios::binary);
      out << payload.substr(0, payload.size() / 2 + payload.size() / 4);
      std::cerr << "manytiers_batch: injected corrupt output\n";
    } else if (partial_output) {
      // Injected mid-write death: a torn prefix lands at the
      // destination (bypassing the durable temp+rename path) and the
      // process dies as if SIGKILLed while writing. A resuming
      // supervisor must detect this part as invalid and re-run it.
      std::ofstream out(out_path, std::ios::binary);
      out << payload.substr(0, payload.size() / 4);
      out.flush();
      std::cerr << "manytiers_batch: injected partial write + crash\n";
      std::_Exit(70);
    } else {
      util::write_file_durable(out_path, payload);
    }
    if (snapshotter) snapshotter->stop();
    if (!metrics_path.empty()) {
      // Sidecar after the report: a supervisor that sees a valid part
      // file may still find the sidecar missing (worker died between the
      // two writes) and must tolerate that.
      util::write_file_durable(
          metrics_path,
          obs::snapshot_to_json(obs::Registry::instance().snapshot()));
    }
    obs::Tracer::instance().flush();
    // Perf-trajectory breadcrumb, same shape as the bench binaries'.
    const std::size_t n_tasks = report.cells.size() * report.points_per_cell;
    std::cerr << "BENCH_JSON {\"bench\":\"manytiers_batch:" << report.grid_name
              << "\",\"n\":" << n_tasks << ",\"wall_ms\":" << report.wall_ms
              << ",\"threads\":" << report.threads << "}\n";
  } catch (const std::exception& err) {
    std::cerr << "manytiers_batch: " << err.what() << "\n";
    return 1;
  }
  return 0;
}
