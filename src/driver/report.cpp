#include "driver/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace manytiers::driver {

namespace {

constexpr std::string_view kLinePrefix = "BATCH_JSON ";

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += fmt_double(values[i]);
  }
  out += ']';
}

// --- Minimal field extraction for the writer's own line format. The
// writer never emits escaped quotes or nested objects, so plain scanning
// is exact (and keeps the reader dependency-free).

std::string_view field_token(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) {
    throw std::invalid_argument("batch report: missing field \"" +
                                std::string(key) + "\" in line: " +
                                std::string(line.substr(0, 80)));
  }
  return line.substr(at + needle.size());
}

std::string parse_string(std::string_view line, std::string_view key) {
  std::string_view rest = field_token(line, key);
  if (rest.empty() || rest.front() != '"') {
    throw std::invalid_argument("batch report: field \"" + std::string(key) +
                                "\" is not a string");
  }
  rest.remove_prefix(1);
  const std::size_t end = rest.find('"');
  if (end == std::string_view::npos) {
    throw std::invalid_argument("batch report: unterminated string field");
  }
  return std::string(rest.substr(0, end));
}

double parse_double(std::string_view line, std::string_view key) {
  const std::string token(field_token(line, key));
  return std::strtod(token.c_str(), nullptr);
}

std::size_t parse_size(std::string_view line, std::string_view key) {
  const std::string token(field_token(line, key));
  return static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10));
}

std::vector<double> parse_array(std::string_view line, std::string_view key) {
  std::string_view rest = field_token(line, key);
  if (rest.empty() || rest.front() != '[') {
    throw std::invalid_argument("batch report: field \"" + std::string(key) +
                                "\" is not an array");
  }
  rest.remove_prefix(1);
  const std::size_t end = rest.find(']');
  if (end == std::string_view::npos) {
    throw std::invalid_argument("batch report: unterminated array field");
  }
  std::vector<double> out;
  std::string body(rest.substr(0, end));
  const char* cursor = body.c_str();
  while (*cursor != '\0') {
    char* next = nullptr;
    out.push_back(std::strtod(cursor, &next));
    if (next == cursor) {
      throw std::invalid_argument("batch report: malformed number in array");
    }
    cursor = next;
    while (*cursor == ',' || *cursor == ' ') ++cursor;
  }
  return out;
}

}  // namespace

pricing::SweepResult empty_envelope(std::size_t max_bundles) {
  pricing::SweepResult sweep;
  sweep.min_capture.assign(max_bundles,
                           std::numeric_limits<double>::infinity());
  sweep.max_capture.assign(max_bundles,
                           -std::numeric_limits<double>::infinity());
  sweep.points = 0;
  return sweep;
}

void write_report(std::ostream& os, const BatchReport& report,
                  bool include_timing) {
  std::string line;
  line += kLinePrefix;
  line += "{\"type\":\"grid\",\"name\":\"" + report.grid_name +
          "\",\"signature\":\"" + report.signature +
          "\",\"max_bundles\":" + std::to_string(report.max_bundles) +
          ",\"points_per_cell\":" + std::to_string(report.points_per_cell) +
          ",\"shard_index\":" + std::to_string(report.shard_index) +
          ",\"shard_count\":" + std::to_string(report.shard_count) +
          // Schema v2 marker only when enabled, so v1 output stays
          // byte-identical (the golden reports predate the field).
          (report.per_point ? std::string(",\"per_point\":1") : std::string()) +
          ",\"cells\":" + std::to_string(report.cells.size()) + "}";
  os << line << '\n';
  for (const auto& cell : report.cells) {
    line.clear();
    line += kLinePrefix;
    line += "{\"type\":\"cell\",\"key\":\"" + cell_key(cell.cell) +
            "\",\"points\":" + std::to_string(cell.sweep.points) + ",\"min\":";
    // Untouched shard cells hold +/-inf sentinels; serialize them as
    // empty arrays so the file stays strict JSON.
    if (cell.sweep.points == 0) {
      line += "[],\"max\":[]";
    } else {
      append_array(line, cell.sweep.min_capture);
      line += ",\"max\":";
      append_array(line, cell.sweep.max_capture);
    }
    if (include_timing) {
      line += ",\"wall_ms\":" + fmt_double(cell.wall_ms);
    }
    line += '}';
    os << line << '\n';
    // Schema v2: per-point records directly after their cell, ascending
    // point index — the order the unsharded fold produces, and the order
    // merge_shards restores, keeping merged output byte-identical.
    for (const auto& point : cell.detail) {
      line.clear();
      line += kLinePrefix;
      line += "{\"type\":\"point\",\"cell\":\"" + cell_key(cell.cell) +
              "\",\"point\":" + std::to_string(point.point) + ",\"capture\":";
      append_array(line, point.capture);
      line += '}';
      os << line << '\n';
    }
  }
  if (include_timing) {
    os << kLinePrefix << "{\"type\":\"timing\",\"wall_ms\":"
       << fmt_double(report.wall_ms) << ",\"threads\":" << report.threads
       << "}\n";
  }
}

std::string report_to_string(const BatchReport& report, bool include_timing) {
  std::ostringstream os;
  write_report(os, report, include_timing);
  return os.str();
}

BatchReport read_report(std::istream& is) {
  BatchReport report;
  bool saw_grid = false;
  std::size_t declared_cells = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(kLinePrefix, 0) != 0) continue;  // tolerate other output
    const std::string_view body =
        std::string_view(line).substr(kLinePrefix.size());
    const std::string type = parse_string(body, "type");
    if (type == "grid") {
      if (saw_grid) {
        throw std::invalid_argument("batch report: duplicate grid record");
      }
      saw_grid = true;
      report.grid_name = parse_string(body, "name");
      report.signature = parse_string(body, "signature");
      report.max_bundles = parse_size(body, "max_bundles");
      report.points_per_cell = parse_size(body, "points_per_cell");
      report.shard_index = parse_size(body, "shard_index");
      report.shard_count = parse_size(body, "shard_count");
      report.per_point =
          body.find("\"per_point\":") != std::string_view::npos &&
          parse_size(body, "per_point") != 0;
      declared_cells = parse_size(body, "cells");
    } else if (type == "cell") {
      if (!saw_grid) {
        throw std::invalid_argument(
            "batch report: cell record before grid record");
      }
      CellResult cell;
      cell.cell = parse_cell_key(parse_string(body, "key"));
      cell.sweep.points = parse_size(body, "points");
      if (cell.sweep.points == 0) {
        cell.sweep = empty_envelope(report.max_bundles);
      } else {
        cell.sweep.min_capture = parse_array(body, "min");
        cell.sweep.max_capture = parse_array(body, "max");
        if (cell.sweep.min_capture.size() != report.max_bundles ||
            cell.sweep.max_capture.size() != report.max_bundles) {
          throw std::invalid_argument(
              "batch report: cell envelope length does not match max_bundles");
        }
      }
      if (body.find("\"wall_ms\":") != std::string_view::npos) {
        cell.wall_ms = parse_double(body, "wall_ms");
      }
      report.cells.push_back(std::move(cell));
    } else if (type == "point") {
      if (report.cells.empty()) {
        throw std::invalid_argument(
            "batch report: point record before any cell record");
      }
      CellResult& cell = report.cells.back();
      if (parse_string(body, "cell") != cell_key(cell.cell)) {
        throw std::invalid_argument(
            "batch report: point record names a different cell than the "
            "one preceding it");
      }
      PointCapture point;
      point.point = parse_size(body, "point");
      point.capture = parse_array(body, "capture");
      if (point.capture.size() != report.max_bundles) {
        throw std::invalid_argument(
            "batch report: point capture length does not match max_bundles");
      }
      if (!cell.detail.empty() && cell.detail.back().point >= point.point) {
        throw std::invalid_argument(
            "batch report: point records out of order in cell \"" +
            cell_key(cell.cell) + "\"");
      }
      cell.detail.push_back(std::move(point));
    } else if (type == "timing") {
      report.wall_ms = parse_double(body, "wall_ms");
      report.threads = parse_size(body, "threads");
    } else {
      throw std::invalid_argument("batch report: unknown record type \"" +
                                  type + "\"");
    }
  }
  if (!saw_grid) {
    throw std::invalid_argument("batch report: no grid record found");
  }
  if (report.cells.size() != declared_cells) {
    throw std::invalid_argument("batch report: expected " +
                                std::to_string(declared_cells) +
                                " cell records, found " +
                                std::to_string(report.cells.size()));
  }
  for (const auto& cell : report.cells) {
    // A v2 report must carry exactly one point record per evaluated
    // point (a torn write loses trailing points silently otherwise);
    // a v1 report must carry none.
    const std::size_t expected = report.per_point ? cell.sweep.points : 0;
    if (cell.detail.size() != expected) {
      throw std::invalid_argument(
          "batch report: cell \"" + cell_key(cell.cell) + "\" has " +
          std::to_string(cell.detail.size()) + " point records, expected " +
          std::to_string(expected));
    }
  }
  return report;
}

BatchReport merge_shards(const std::vector<BatchReport>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shards: no shard reports");
  }
  const BatchReport& first = shards.front();
  std::vector<bool> seen(shards.size(), false);
  for (const auto& shard : shards) {
    if (shard.signature != first.signature) {
      throw std::invalid_argument(
          "merge_shards: shard signatures differ (mixed grids?)");
    }
    if (shard.shard_count != shards.size()) {
      throw std::invalid_argument(
          "merge_shards: shard_count " + std::to_string(shard.shard_count) +
          " does not match the " + std::to_string(shards.size()) +
          " reports provided");
    }
    if (shard.shard_index >= shards.size() || seen[shard.shard_index]) {
      throw std::invalid_argument("merge_shards: duplicate or out-of-range "
                                  "shard index " +
                                  std::to_string(shard.shard_index));
    }
    seen[shard.shard_index] = true;
    if (shard.per_point != first.per_point) {
      throw std::invalid_argument(
          "merge_shards: mixed schema versions (some shards carry "
          "per-point detail, some do not)");
    }
    if (shard.cells.size() != first.cells.size()) {
      throw std::invalid_argument("merge_shards: shard cell counts differ");
    }
    for (std::size_t c = 0; c < shard.cells.size(); ++c) {
      if (!(shard.cells[c].cell == first.cells[c].cell)) {
        throw std::invalid_argument("merge_shards: shard cell order differs");
      }
    }
  }
  BatchReport merged;
  merged.grid_name = first.grid_name;
  merged.signature = first.signature;
  merged.max_bundles = first.max_bundles;
  merged.points_per_cell = first.points_per_cell;
  merged.shard_index = 0;
  merged.shard_count = 1;
  merged.per_point = first.per_point;
  merged.cells.reserve(first.cells.size());
  for (std::size_t c = 0; c < first.cells.size(); ++c) {
    CellResult cell;
    cell.cell = first.cells[c].cell;
    cell.sweep = empty_envelope(merged.max_bundles);
    for (const auto& shard : shards) {
      const auto& part = shard.cells[c].sweep;
      cell.wall_ms += shard.cells[c].wall_ms;
      cell.detail.insert(cell.detail.end(), shard.cells[c].detail.begin(),
                         shard.cells[c].detail.end());
      if (part.points == 0) continue;
      for (std::size_t b = 0; b < merged.max_bundles; ++b) {
        cell.sweep.min_capture[b] =
            std::min(cell.sweep.min_capture[b], part.min_capture[b]);
        cell.sweep.max_capture[b] =
            std::max(cell.sweep.max_capture[b], part.max_capture[b]);
      }
      cell.sweep.points += part.points;
    }
    // Restore ascending point order across the shard interleave; a
    // duplicate index means two shards both claimed the same point.
    std::sort(cell.detail.begin(), cell.detail.end(),
              [](const PointCapture& a, const PointCapture& b) {
                return a.point < b.point;
              });
    for (std::size_t i = 1; i < cell.detail.size(); ++i) {
      if (cell.detail[i].point == cell.detail[i - 1].point) {
        throw std::invalid_argument(
            "merge_shards: duplicate point " +
            std::to_string(cell.detail[i].point) + " in cell \"" +
            cell_key(cell.cell) + "\"");
      }
    }
    if (cell.sweep.points != merged.points_per_cell) {
      throw std::invalid_argument(
          "merge_shards: cell \"" + cell_key(cell.cell) + "\" covers " +
          std::to_string(cell.sweep.points) + " of " +
          std::to_string(merged.points_per_cell) +
          " points (incomplete shard set)");
    }
    merged.cells.push_back(std::move(cell));
  }
  // Wall clock of a distributed run is the slowest shard; threads vary
  // per host, so keep the first shard's count as representative.
  for (const auto& shard : shards) {
    merged.wall_ms = std::max(merged.wall_ms, shard.wall_ms);
  }
  merged.threads = first.threads;
  return merged;
}

void validate_part(const BatchReport& part, const ExperimentGrid& grid,
                   std::size_t shard_index, std::size_t shard_count) {
  const auto cells = enumerate_cells(grid);
  const std::size_t n_points = points_per_cell(grid);
  if (part.signature != grid_signature(grid)) {
    throw std::invalid_argument("part: signature mismatch (expected grid \"" +
                                grid.name + "\")");
  }
  if (part.shard_index != shard_index || part.shard_count != shard_count) {
    throw std::invalid_argument(
        "part: claims shard " + std::to_string(part.shard_index) + "/" +
        std::to_string(part.shard_count) + ", expected " +
        std::to_string(shard_index) + "/" + std::to_string(shard_count));
  }
  if (part.max_bundles != grid.max_bundles ||
      part.points_per_cell != n_points) {
    throw std::invalid_argument("part: grid dimensions mismatch");
  }
  if (part.cells.size() != cells.size()) {
    throw std::invalid_argument("part: expected " +
                                std::to_string(cells.size()) +
                                " cells, found " +
                                std::to_string(part.cells.size()));
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (!(part.cells[c].cell == cells[c])) {
      throw std::invalid_argument("part: cell order differs at \"" +
                                  cell_key(part.cells[c].cell) + "\"");
    }
    // Exact ownership under the round-robin split: shard k of K owns
    // global task g iff g mod K == k.
    std::size_t owned = 0;
    for (std::size_t p = 0; p < n_points; ++p) {
      if ((c * n_points + p) % shard_count == shard_index) ++owned;
    }
    const auto& sweep = part.cells[c].sweep;
    if (sweep.points != owned) {
      throw std::invalid_argument(
          "part: cell \"" + cell_key(cells[c]) + "\" covers " +
          std::to_string(sweep.points) + " points, shard owns " +
          std::to_string(owned));
    }
    if (sweep.min_capture.size() != grid.max_bundles ||
        sweep.max_capture.size() != grid.max_bundles) {
      throw std::invalid_argument("part: envelope length mismatch in \"" +
                                  cell_key(cells[c]) + "\"");
    }
    for (std::size_t b = 0; owned > 0 && b < grid.max_bundles; ++b) {
      if (!(sweep.min_capture[b] <= sweep.max_capture[b])) {
        throw std::invalid_argument("part: inverted envelope in \"" +
                                    cell_key(cells[c]) + "\"");
      }
    }
    if (part.per_point) {
      // Schema v2 integrity: the detail must list exactly the owned
      // points and fold back to the envelope the part claims.
      if (part.cells[c].detail.size() != owned) {
        throw std::invalid_argument(
            "part: cell \"" + cell_key(cells[c]) + "\" carries " +
            std::to_string(part.cells[c].detail.size()) +
            " point records, shard owns " + std::to_string(owned));
      }
      auto folded = empty_envelope(grid.max_bundles);
      for (const auto& point : part.cells[c].detail) {
        if (point.point >= n_points ||
            (c * n_points + point.point) % shard_count != shard_index) {
          throw std::invalid_argument(
              "part: cell \"" + cell_key(cells[c]) + "\" lists point " +
              std::to_string(point.point) + " the shard does not own");
        }
        if (point.capture.size() != grid.max_bundles) {
          throw std::invalid_argument(
              "part: point capture length mismatch in \"" +
              cell_key(cells[c]) + "\"");
        }
        for (std::size_t b = 0; b < grid.max_bundles; ++b) {
          const double capture = point.capture[b] + 0.0;  // -0.0 canon
          folded.min_capture[b] = std::min(folded.min_capture[b], capture);
          folded.max_capture[b] = std::max(folded.max_capture[b], capture);
        }
      }
      for (std::size_t b = 0; owned > 0 && b < grid.max_bundles; ++b) {
        if (folded.min_capture[b] != sweep.min_capture[b] ||
            folded.max_capture[b] != sweep.max_capture[b]) {
          throw std::invalid_argument(
              "part: per-point detail does not fold to the claimed "
              "envelope in \"" + cell_key(cells[c]) + "\"");
        }
      }
    }
  }
}

util::TextTable capture_table(const BatchReport& report,
                              workload::DatasetKind dataset) {
  std::vector<std::string> headers{"Strategy"};
  for (std::size_t b = 1; b <= report.max_bundles; ++b) {
    headers.push_back("B=" + std::to_string(b));
  }
  util::TextTable table(std::move(headers));
  for (const auto& cell : report.cells) {
    if (cell.cell.dataset != dataset) continue;
    table.add_row(std::string(pricing::to_string(cell.cell.strategy)),
                  cell.sweep.min_capture, 3);
  }
  return table;
}

}  // namespace manytiers::driver
