// Batch experiment grids (ROADMAP: "multi-dataset batch runner").
//
// An ExperimentGrid is the declarative spec of one evaluation campaign:
// the cross product of datasets x demand models x cost models x bundling
// strategies, each cell evaluated either once at the paper's §4.2.2
// defaults or across one sensitivity axis (alpha, P0, s0 — Figs. 14-16).
// Cells enumerate in a fixed lexicographic order (dataset-major,
// strategy-minor), which is what makes sharded runs mergeable and golden
// reports reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cost/cost.hpp"
#include "demand/demand.hpp"
#include "pricing/counterfactual.hpp"
#include "workload/generators.hpp"

namespace manytiers::driver {

// Cost model families a grid can request; theta comes from BaseParams.
enum class CostKind { Linear, Concave, Regional, DestType };

std::string_view to_string(CostKind kind);
std::string_view to_string(demand::DemandKind kind);  // "ced" / "logit"
std::unique_ptr<cost::CostModel> make_cost_model(CostKind kind, double theta);

// Sensitivity axis swept inside every cell. None means each cell is a
// single evaluation at the base parameters (min == max in the result).
struct SweepAxis {
  enum class Kind { None, Alpha, BlendedPrice, NoPurchaseShare };
  Kind kind = Kind::None;
  std::vector<double> values;
};

std::string_view to_string(SweepAxis::Kind kind);

// The paper's §4.2.2 defaults; every cell starts from these, and the
// sweep axis (if any) overrides exactly one of them per point.
struct BaseParams {
  std::uint64_t seed = 42;
  std::size_t n_flows = 400;
  double alpha = 1.1;
  double blended_price = 20.0;
  double theta = 0.2;
  double s0 = 0.2;
};

struct ExperimentGrid {
  std::string name = "custom";
  std::vector<workload::DatasetKind> datasets;
  std::vector<demand::DemandKind> demand_kinds;
  std::vector<CostKind> cost_kinds;
  std::vector<pricing::Strategy> strategies;
  std::size_t max_bundles = 6;
  SweepAxis sweep;
  BaseParams base;
};

// One cell: a (dataset, demand, cost, strategy) combination. The sweep
// axis runs inside the cell; a cell's result is a capture envelope.
struct GridCell {
  workload::DatasetKind dataset{};
  demand::DemandKind demand{};
  CostKind cost{};
  pricing::Strategy strategy{};

  bool operator==(const GridCell&) const = default;
};

// "EU ISP/ced/linear/Optimal" — the stable id used in reports and diffs.
std::string cell_key(const GridCell& cell);
GridCell parse_cell_key(std::string_view key);  // throws on unknown parts

// Reject empty axes, duplicate axis entries, max_bundles == 0,
// inconsistent sweep specs (values with None, no values otherwise,
// duplicate values, an s0 sweep over non-logit demand), and degenerate
// base parameters.
void validate_grid(const ExperimentGrid& grid);

// The grid's cells in evaluation order: dataset-major, then demand kind,
// then cost kind, then strategy. Deterministic and complete — the size
// is the product of the four axis sizes. Validates first.
std::vector<GridCell> enumerate_cells(const ExperimentGrid& grid);

// Number of parameter points each cell evaluates (1 for SweepAxis::None).
std::size_t points_per_cell(const ExperimentGrid& grid);

// Canonical encoding of every axis and base parameter. Two runs are
// comparable iff their signatures match; merge_shards and bench_diff
// refuse mismatches.
std::string grid_signature(const ExperimentGrid& grid);

// Named grids for the CLI, the smoke target, and the golden test.
ExperimentGrid smoke_grid();       // 3 datasets x 2 demand x linear, n=50
ExperimentGrid default_grid();     // the full Fig. 8/9 strategy lineup
ExperimentGrid alpha_sweep_grid(); // Fig. 14-shaped robustness envelope
ExperimentGrid costmodels_grid();  // all four cost models (Figs. 10-13)
ExperimentGrid named_grid(std::string_view name);  // throws on unknown
std::vector<std::string_view> grid_names();

}  // namespace manytiers::driver
