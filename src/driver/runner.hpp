// The batch engine: evaluate (a shard of) an ExperimentGrid.
//
// The unit of work is a task — one (cell, parameter point) pair. Tasks
// enumerate in a fixed global order (cell-major, point-minor); a shard
// owns every K-th task, so the expensive large-dataset cells spread
// evenly across shards. Within a run, every distinct
// (dataset, demand, cost, point) combination calibrates exactly one
// Market, shared by all strategy cells that need it — the Market's lazy
// blended/max-profit cache then makes the per-strategy capture
// evaluations cheap.
//
// Determinism: tasks write into pre-sized slots and the min/max envelope
// reduction runs serially in global task order, so a run is bit-identical
// at any thread count, and merge_shards over any complete shard set
// reproduces the unsharded report exactly.
#pragma once

#include "driver/grid.hpp"
#include "driver/report.hpp"

namespace manytiers::driver {

// Which slice of the grid's task list this process evaluates: shard
// `index` of `count` owns tasks {g : g mod count == index}.
struct ShardPlan {
  std::size_t index = 0;
  std::size_t count = 1;
};

struct RunOptions {
  std::size_t threads = 0;  // 0 = MANYTIERS_THREADS / hardware concurrency
  ShardPlan shard;
  bool per_point = false;  // schema v2: keep per-point capture vectors
  // When set, evaluate against these pre-built flow sets (one per grid
  // dataset, in grid.datasets order) instead of generating from the
  // grid's base seed — the dynamic-network session's hook for feeding
  // re-costed flows through the unchanged evaluation path. Must outlive
  // the run_grid call.
  const std::vector<workload::FlowSet>* flows_override = nullptr;
};

// Run (this shard of) the grid and return the consolidated report.
// Throws std::invalid_argument on malformed grids or shard plans.
BatchReport run_grid(const ExperimentGrid& grid,
                     const RunOptions& options = {});

}  // namespace manytiers::driver
