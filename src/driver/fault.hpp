// Deterministic fault injection for batch workers.
//
// The shard orchestrator needs hermetic tests of its crash / timeout /
// corrupt-output paths, so the worker binary (manytiers_batch) compiles
// in a fault hook driven by two environment variables:
//
//   MANYTIERS_FAULT          comma-separated specs `kind:shard[:times]`
//                            with kind in {crash, stall, corrupt}
//   MANYTIERS_FAULT_ATTEMPT  the supervisor's retry counter (default 0)
//
// A spec fires when the worker's shard index matches `shard` AND the
// attempt counter is below `times` (default 1) — so `crash:2` makes
// shard 2 crash exactly once and succeed on its retry, while
// `crash:2:99` makes it crash until the retry budget is exhausted.
// Everything is pure string/integer matching: no clocks, no randomness.
//
//   crash    exit immediately with code 70, producing no output file
//   stall    sleep (nominally forever) so a wall-clock timeout fires
//   corrupt  run normally but truncate the written report mid-line
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace manytiers::driver {

enum class FaultKind { Crash, Stall, Corrupt };

std::string_view to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind{};
  std::size_t shard = 0;
  std::size_t times = 1;  // fire on attempts 0 .. times-1
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
};

// Parse "crash:2,stall:5,corrupt:0:3". Empty input yields an empty plan.
// Throws std::invalid_argument on unknown kinds or malformed numbers.
FaultPlan parse_fault_plan(std::string_view spec);

// The fault (if any) that fires for this (shard, attempt): the first
// spec whose shard matches and whose `times` exceeds `attempt`.
std::optional<FaultKind> fault_for(const FaultPlan& plan, std::size_t shard,
                                   std::size_t attempt);

// Read MANYTIERS_FAULT (empty plan when unset) and
// MANYTIERS_FAULT_ATTEMPT (0 when unset or unparsable).
FaultPlan fault_plan_from_env();
std::size_t fault_attempt_from_env();

}  // namespace manytiers::driver
