// Deterministic fault injection for batch workers.
//
// The shard orchestrator needs hermetic tests of its crash / timeout /
// straggler / corrupt-output paths, so the worker binary
// (manytiers_batch) compiles in a fault hook driven by two environment
// variables:
//
//   MANYTIERS_FAULT          comma-separated specs, one of
//                              crash:shard[:times]
//                              stall:shard[:times]
//                              corrupt:shard[:times]
//                              partial:shard[:times]
//                              slow:shard:ms[:times]
//   MANYTIERS_FAULT_ATTEMPT  the supervisor's retry counter (default 0)
//
// A spec fires when the worker's shard index matches `shard` AND the
// attempt counter is below `times` (default 1) — so `crash:2` makes
// shard 2 crash exactly once and succeed on its retry, while
// `crash:2:99` makes it crash until the retry budget is exhausted.
// Everything is pure string/integer matching: no clocks, no randomness.
//
//   crash    exit immediately with code 70, producing no output file
//   stall    hang without ever heartbeating, so a liveness (or wall
//            clock) timeout fires — models a truly wedged process
//   slow     sleep `ms` milliseconds while heartbeating normally, then
//            finish — a deterministic straggler for the hedging path
//   corrupt  run normally but truncate the written report mid-line
//   partial  run normally, write a torn prefix of the report bypassing
//            the durable rename, then die (exit 70) — a worker killed
//            mid-write
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace manytiers::driver {

enum class FaultKind { Crash, Stall, Slow, Corrupt, Partial };

std::string_view to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind{};
  std::size_t shard = 0;
  std::size_t times = 1;     // fire on attempts 0 .. times-1
  std::size_t delay_ms = 0;  // Slow only: straggle duration
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
};

// Parse "crash:2,stall:5,corrupt:0:3,slow:1:2000". Empty input yields an
// empty plan. Throws std::invalid_argument on unknown kinds or malformed
// numbers (slow requires the ms field; times stays optional).
FaultPlan parse_fault_plan(std::string_view spec);

// The fault (if any) that fires for this (shard, attempt): the first
// spec whose shard matches and whose `times` exceeds `attempt`.
std::optional<FaultSpec> fault_for(const FaultPlan& plan, std::size_t shard,
                                   std::size_t attempt);

// Read MANYTIERS_FAULT (empty plan when unset) and
// MANYTIERS_FAULT_ATTEMPT (0 when unset or unparsable).
FaultPlan fault_plan_from_env();
std::size_t fault_attempt_from_env();

}  // namespace manytiers::driver
