#include "driver/runner.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pricing/scenario.hpp"
#include "util/parallel.hpp"

namespace manytiers::driver {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One (cell, parameter point) pair owned by this shard, plus the slot of
// the calibrated market it evaluates against.
struct Task {
  std::size_t cell = 0;
  std::size_t point = 0;
  std::size_t market = 0;
};

}  // namespace

BatchReport run_grid(const ExperimentGrid& grid, const RunOptions& options) {
  const auto cells = enumerate_cells(grid);  // validates the grid
  if (options.shard.count == 0) {
    throw std::invalid_argument("run_grid: shard count must be >= 1");
  }
  if (options.shard.index >= options.shard.count) {
    throw std::invalid_argument(
        "run_grid: shard index " + std::to_string(options.shard.index) +
        " out of range for " + std::to_string(options.shard.count) +
        " shards");
  }
  const auto t_start = Clock::now();
  const std::size_t n_points = points_per_cell(grid);
  const std::size_t n_dem = grid.demand_kinds.size();
  const std::size_t n_cost = grid.cost_kinds.size();
  const std::size_t n_strat = grid.strategies.size();

  // Shared per-run inputs: each dataset generates once (unless the caller
  // supplied re-costed flow sets), each cost model builds once; both are
  // read-only during the parallel phases.
  std::vector<workload::FlowSet> generated;
  if (options.flows_override) {
    if (options.flows_override->size() != grid.datasets.size()) {
      throw std::invalid_argument(
          "run_grid: flows_override needs one flow set per grid dataset");
    }
  } else {
    generated.reserve(grid.datasets.size());
    for (const auto kind : grid.datasets) {
      generated.push_back(workload::generate_dataset(
          kind, {.seed = grid.base.seed, .n_flows = grid.base.n_flows}));
    }
  }
  const std::vector<workload::FlowSet>& flows =
      options.flows_override ? *options.flows_override : generated;
  std::vector<std::unique_ptr<cost::CostModel>> cost_models;
  cost_models.reserve(grid.cost_kinds.size());
  for (const auto kind : grid.cost_kinds) {
    cost_models.push_back(make_cost_model(kind, grid.base.theta));
  }

  // Enumerate this shard's tasks (ascending global order) and the unique
  // markets they touch. A market is one (dataset, demand, cost, point)
  // calibration, shared across the strategy axis.
  const std::size_t total_tasks = cells.size() * n_points;
  std::vector<Task> tasks;
  tasks.reserve(total_tasks / options.shard.count + 1);
  std::unordered_map<std::size_t, std::size_t> market_slot;
  std::vector<std::size_t> market_keys;  // slot -> packed market key
  for (std::size_t g = options.shard.index; g < total_tasks;
       g += options.shard.count) {
    const std::size_t c = g / n_points;
    const std::size_t p = g % n_points;
    const std::size_t cost_i = (c / n_strat) % n_cost;
    const std::size_t dem_i = (c / n_strat / n_cost) % n_dem;
    const std::size_t ds_i = c / n_strat / n_cost / n_dem;
    const std::size_t key =
        ((ds_i * n_dem + dem_i) * n_cost + cost_i) * n_points + p;
    const auto [it, inserted] = market_slot.try_emplace(key, market_keys.size());
    if (inserted) market_keys.push_back(key);
    tasks.push_back({c, p, it->second});
  }

  // The dedupe ratio is the whole point of the market_slot map — surface
  // it: tasks / markets_calibrated is the sharing factor across the
  // strategy axis.
  obs::Registry& registry = obs::Registry::instance();
  static obs::Counter& tasks_counter = registry.counter("driver.tasks");
  static obs::Counter& markets_counter =
      registry.counter("driver.markets_calibrated");
  static obs::Counter& dedup_counter =
      registry.counter("driver.calib_dedup_hits");
  static obs::Histogram& task_us_hist = registry.histogram("driver.task_us");
  tasks_counter.add(tasks.size());
  markets_counter.add(market_keys.size());
  dedup_counter.add(tasks.size() - market_keys.size());

  // Phase 1: calibrate every needed market, one task per market.
  // Calibration is a pure function of the grid, so recalibrating the same
  // market in another shard yields bit-identical state.
  std::vector<std::optional<pricing::Market>> markets(market_keys.size());
  const bool tracing = obs::Tracer::instance().active();
  {
    const obs::Span phase(
        "run_grid.calibrate",
        tracing ? "{\"markets\":" + std::to_string(market_keys.size()) + "}"
                : std::string());
    util::parallel_for(
        market_keys.size(),
        [&](std::size_t m) {
          const std::size_t key = market_keys[m];
          const std::size_t p = key % n_points;
          const std::size_t cost_i = (key / n_points) % n_cost;
          const std::size_t dem_i = (key / n_points / n_cost) % n_dem;
          const std::size_t ds_i = key / n_points / n_cost / n_dem;
          pricing::DemandSpec spec;
          spec.kind = grid.demand_kinds[dem_i];
          spec.alpha = grid.base.alpha;
          spec.no_purchase_share = grid.base.s0;
          double blended_price = grid.base.blended_price;
          switch (grid.sweep.kind) {
            case SweepAxis::Kind::None:
              break;
            case SweepAxis::Kind::Alpha:
              spec.alpha = grid.sweep.values[p];
              break;
            case SweepAxis::Kind::BlendedPrice:
              blended_price = grid.sweep.values[p];
              break;
            case SweepAxis::Kind::NoPurchaseShare:
              spec.no_purchase_share = grid.sweep.values[p];
              break;
          }
          markets[m].emplace(pricing::Market::calibrate(
              flows[ds_i], spec, *cost_models[cost_i], blended_price));
        },
        options.threads);
  }

  // Phase 2: one fan-out over all tasks. Each task writes its capture
  // series into its own slot; the Market's internal profit cache makes
  // the shared blended/max baselines compute once per market, whichever
  // strategy task gets there first.
  std::vector<std::vector<double>> series(tasks.size());
  std::vector<double> task_ms(tasks.size(), 0.0);
  {
    const obs::Span phase(
        "run_grid.sweep",
        tracing ? "{\"tasks\":" + std::to_string(tasks.size()) + "}"
                : std::string());
    util::parallel_for(
        tasks.size(),
        [&](std::size_t t) {
          // Per-task span, gated by the deterministic sampler. The key
          // is the GLOBAL task index (cell * n_points + point), which
          // every shard derives identically — so a sampled sharded run
          // stitches into the same task set an unsharded run keeps.
          const std::uint64_t task_key = static_cast<std::uint64_t>(
              tasks[t].cell * n_points + tasks[t].point);
          std::optional<obs::Span> span;
          if (tracing && obs::Tracer::instance().sample_keep(task_key)) {
            span.emplace("run_grid.task",
                         "{\"cell\":" + std::to_string(tasks[t].cell) +
                             ",\"point\":" + std::to_string(tasks[t].point) +
                             "}");
          }
          const auto start = Clock::now();
          series[t] = pricing::capture_series(*markets[tasks[t].market],
                                              cells[tasks[t].cell].strategy,
                                              grid.max_bundles);
          task_ms[t] = ms_since(start);
          task_us_hist.record(task_ms[t] * 1000.0);
        },
        options.threads);
  }

  // Serial envelope reduction in global task order: thread-count
  // independent, and shard partials fold back losslessly (min/max are
  // exactly associative and commutative).
  BatchReport report;
  report.grid_name = grid.name;
  report.signature = grid_signature(grid);
  report.max_bundles = grid.max_bundles;
  report.points_per_cell = n_points;
  report.shard_index = options.shard.index;
  report.shard_count = options.shard.count;
  report.threads =
      options.threads != 0 ? options.threads : util::default_thread_count();
  report.per_point = options.per_point;
  report.cells.reserve(cells.size());
  for (const auto& cell : cells) {
    CellResult result;
    result.cell = cell;
    result.sweep = empty_envelope(grid.max_bundles);
    report.cells.push_back(std::move(result));
  }
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    auto& cell = report.cells[tasks[t].cell];
    for (std::size_t b = 0; b < grid.max_bundles; ++b) {
      // + 0.0 canonicalizes -0.0 (logit B=1 captures produce it): min/max
      // ties between -0.0 and +0.0 keep the first-seen operand, and the
      // first-seen point differs between sharded and unsharded folds.
      const double capture = series[t][b] + 0.0;
      cell.sweep.min_capture[b] = std::min(cell.sweep.min_capture[b], capture);
      cell.sweep.max_capture[b] = std::max(cell.sweep.max_capture[b], capture);
    }
    ++cell.sweep.points;
    cell.wall_ms += task_ms[t];
    if (options.per_point) {
      // Tasks fold in ascending global order, so within a cell the
      // point indices arrive ascending — the order the writer expects.
      cell.detail.push_back({tasks[t].point, std::move(series[t])});
    }
  }
  report.wall_ms = ms_since(t_start);
  return report;
}

}  // namespace manytiers::driver
