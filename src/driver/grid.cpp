#include "driver/grid.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <stdexcept>

namespace manytiers::driver {

namespace {

std::string fmt_param(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <typename Enum, typename ToString>
Enum enum_from_string(std::string_view text, std::span<const Enum> candidates,
                      const ToString& to_str, const char* what) {
  for (const Enum e : candidates) {
    if (to_str(e) == text) return e;
  }
  throw std::invalid_argument(std::string("unknown ") + what + ": \"" +
                              std::string(text) + "\"");
}

constexpr workload::DatasetKind kDatasetKinds[] = {
    workload::DatasetKind::EuIsp, workload::DatasetKind::Cdn,
    workload::DatasetKind::Internet2};
constexpr demand::DemandKind kDemandKinds[] = {
    demand::DemandKind::ConstantElasticity, demand::DemandKind::Logit};
constexpr CostKind kCostKinds[] = {CostKind::Linear, CostKind::Concave,
                                   CostKind::Regional, CostKind::DestType};
constexpr pricing::Strategy kStrategies[] = {
    pricing::Strategy::Optimal,        pricing::Strategy::DemandWeighted,
    pricing::Strategy::CostWeighted,   pricing::Strategy::ProfitWeighted,
    pricing::Strategy::CostDivision,   pricing::Strategy::IndexDivision,
    pricing::Strategy::ClassAwareProfitWeighted};

template <typename T>
void require_axis(const std::vector<T>& axis, const char* name) {
  if (axis.empty()) {
    throw std::invalid_argument(std::string("grid: empty axis \"") + name +
                                "\"");
  }
  for (std::size_t i = 0; i < axis.size(); ++i) {
    for (std::size_t j = i + 1; j < axis.size(); ++j) {
      if (axis[i] == axis[j]) {
        throw std::invalid_argument(std::string("grid: duplicate entry in "
                                                "axis \"") +
                                    name + "\" (duplicate cells)");
      }
    }
  }
}

}  // namespace

std::string_view to_string(CostKind kind) {
  switch (kind) {
    case CostKind::Linear: return "linear";
    case CostKind::Concave: return "concave";
    case CostKind::Regional: return "regional";
    case CostKind::DestType: return "dest-type";
  }
  throw std::invalid_argument("unknown cost kind");
}

std::string_view to_string(demand::DemandKind kind) {
  switch (kind) {
    case demand::DemandKind::ConstantElasticity: return "ced";
    case demand::DemandKind::Logit: return "logit";
  }
  throw std::invalid_argument("unknown demand kind");
}

std::string_view to_string(SweepAxis::Kind kind) {
  switch (kind) {
    case SweepAxis::Kind::None: return "none";
    case SweepAxis::Kind::Alpha: return "alpha";
    case SweepAxis::Kind::BlendedPrice: return "blended-price";
    case SweepAxis::Kind::NoPurchaseShare: return "s0";
  }
  throw std::invalid_argument("unknown sweep axis");
}

std::unique_ptr<cost::CostModel> make_cost_model(CostKind kind, double theta) {
  switch (kind) {
    case CostKind::Linear: return cost::make_linear_cost(theta);
    case CostKind::Concave: return cost::make_concave_cost(theta);
    case CostKind::Regional: return cost::make_regional_cost(theta);
    case CostKind::DestType: return cost::make_dest_type_cost(theta);
  }
  throw std::invalid_argument("unknown cost kind");
}

std::string cell_key(const GridCell& cell) {
  std::string key;
  key += to_string(cell.dataset);
  key += '/';
  key += to_string(cell.demand);
  key += '/';
  key += to_string(cell.cost);
  key += '/';
  key += to_string(cell.strategy);
  return key;
}

GridCell parse_cell_key(std::string_view key) {
  std::string_view parts[4];
  std::size_t start = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    const std::size_t slash = key.find('/', start);
    const bool last = p == 3;
    if (last != (slash == std::string_view::npos)) {
      throw std::invalid_argument("cell key must have four '/'-separated "
                                  "parts: \"" + std::string(key) + "\"");
    }
    parts[p] = key.substr(start, last ? std::string_view::npos : slash - start);
    start = slash + 1;
  }
  GridCell cell;
  cell.dataset = enum_from_string<workload::DatasetKind>(
      parts[0], kDatasetKinds, [](auto e) { return workload::to_string(e); },
      "dataset");
  cell.demand = enum_from_string<demand::DemandKind>(
      parts[1], kDemandKinds,
      [](auto e) { return to_string(e); }, "demand kind");
  cell.cost = enum_from_string<CostKind>(
      parts[2], kCostKinds, [](auto e) { return to_string(e); }, "cost kind");
  cell.strategy = enum_from_string<pricing::Strategy>(
      parts[3], kStrategies, [](auto e) { return pricing::to_string(e); },
      "strategy");
  return cell;
}

void validate_grid(const ExperimentGrid& grid) {
  require_axis(grid.datasets, "datasets");
  require_axis(grid.demand_kinds, "demand_kinds");
  require_axis(grid.cost_kinds, "cost_kinds");
  require_axis(grid.strategies, "strategies");
  if (grid.max_bundles == 0) {
    throw std::invalid_argument("grid: max_bundles must be >= 1");
  }
  if (grid.base.n_flows < 2) {
    throw std::invalid_argument("grid: need at least two flows per dataset");
  }
  if (!(grid.base.alpha > 1.0)) {
    throw std::invalid_argument("grid: base alpha must exceed 1 (CED profit "
                                "is unbounded otherwise)");
  }
  if (!(grid.base.blended_price > 0.0)) {
    throw std::invalid_argument("grid: blended price must be positive");
  }
  if (grid.sweep.kind == SweepAxis::Kind::None) {
    if (!grid.sweep.values.empty()) {
      throw std::invalid_argument(
          "grid: sweep values given but sweep kind is none");
    }
  } else {
    require_axis(grid.sweep.values, "sweep.values");
    if (grid.sweep.kind == SweepAxis::Kind::NoPurchaseShare) {
      for (const auto kind : grid.demand_kinds) {
        if (kind != demand::DemandKind::Logit) {
          throw std::invalid_argument(
              "grid: an s0 sweep only exists in the logit model; drop CED "
              "from demand_kinds");
        }
      }
    }
    if (grid.sweep.kind == SweepAxis::Kind::Alpha) {
      for (const double a : grid.sweep.values) {
        if (!(a > 1.0)) {
          throw std::invalid_argument("grid: swept alpha values must exceed 1");
        }
      }
    }
  }
}

std::vector<GridCell> enumerate_cells(const ExperimentGrid& grid) {
  validate_grid(grid);
  std::vector<GridCell> cells;
  cells.reserve(grid.datasets.size() * grid.demand_kinds.size() *
                grid.cost_kinds.size() * grid.strategies.size());
  for (const auto dataset : grid.datasets) {
    for (const auto demand_kind : grid.demand_kinds) {
      for (const auto cost_kind : grid.cost_kinds) {
        for (const auto strategy : grid.strategies) {
          cells.push_back({dataset, demand_kind, cost_kind, strategy});
        }
      }
    }
  }
  return cells;
}

std::size_t points_per_cell(const ExperimentGrid& grid) {
  return grid.sweep.kind == SweepAxis::Kind::None ? 1
                                                  : grid.sweep.values.size();
}

std::string grid_signature(const ExperimentGrid& grid) {
  std::string sig = "v1|" + grid.name + "|ds=";
  for (const auto d : grid.datasets) {
    sig += to_string(d);
    sig += ';';
  }
  sig += "|dem=";
  for (const auto d : grid.demand_kinds) {
    sig += to_string(d);
    sig += ';';
  }
  sig += "|cost=";
  for (const auto c : grid.cost_kinds) {
    sig += to_string(c);
    sig += ';';
  }
  sig += "|strat=";
  for (const auto s : grid.strategies) {
    sig += pricing::to_string(s);
    sig += ';';
  }
  sig += "|B=" + std::to_string(grid.max_bundles);
  sig += "|sweep=" + std::string(to_string(grid.sweep.kind)) + ":";
  for (const double v : grid.sweep.values) {
    sig += fmt_param(v);
    sig += ';';
  }
  sig += "|base=seed:" + std::to_string(grid.base.seed) +
         ",n:" + std::to_string(grid.base.n_flows) +
         ",alpha:" + fmt_param(grid.base.alpha) +
         ",P0:" + fmt_param(grid.base.blended_price) +
         ",theta:" + fmt_param(grid.base.theta) +
         ",s0:" + fmt_param(grid.base.s0);
  return sig;
}

ExperimentGrid smoke_grid() {
  ExperimentGrid grid;
  grid.name = "smoke";
  grid.datasets = {workload::DatasetKind::EuIsp,
                   workload::DatasetKind::Internet2,
                   workload::DatasetKind::Cdn};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear};
  grid.strategies = {pricing::Strategy::Optimal,
                     pricing::Strategy::ProfitWeighted};
  grid.max_bundles = 4;
  grid.base.n_flows = 50;
  return grid;
}

ExperimentGrid default_grid() {
  ExperimentGrid grid;
  grid.name = "default";
  grid.datasets = {workload::DatasetKind::EuIsp,
                   workload::DatasetKind::Internet2,
                   workload::DatasetKind::Cdn};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear};
  grid.strategies = pricing::figure8_strategies();
  grid.max_bundles = 6;
  return grid;
}

ExperimentGrid alpha_sweep_grid() {
  ExperimentGrid grid;
  grid.name = "alpha-sweep";
  grid.datasets = {workload::DatasetKind::EuIsp,
                   workload::DatasetKind::Internet2,
                   workload::DatasetKind::Cdn};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear};
  grid.strategies = {pricing::Strategy::ProfitWeighted};
  grid.max_bundles = 6;
  grid.sweep.kind = SweepAxis::Kind::Alpha;
  grid.sweep.values = {1.05, 1.1, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0};
  return grid;
}

ExperimentGrid costmodels_grid() {
  // The Fig. 10-13 family in one batch: every cost model against the
  // cost-only industry practice and the paper's demand-and-cost
  // recommendation, with Optimal as the upper bound.
  ExperimentGrid grid;
  grid.name = "costmodels";
  grid.datasets = {workload::DatasetKind::EuIsp,
                   workload::DatasetKind::Internet2,
                   workload::DatasetKind::Cdn};
  grid.demand_kinds = {demand::DemandKind::ConstantElasticity,
                       demand::DemandKind::Logit};
  grid.cost_kinds = {CostKind::Linear, CostKind::Concave, CostKind::Regional,
                     CostKind::DestType};
  grid.strategies = {pricing::Strategy::Optimal,
                     pricing::Strategy::CostWeighted,
                     pricing::Strategy::ProfitWeighted};
  grid.max_bundles = 6;
  return grid;
}

ExperimentGrid named_grid(std::string_view name) {
  if (name == "smoke") return smoke_grid();
  if (name == "default") return default_grid();
  if (name == "alpha-sweep") return alpha_sweep_grid();
  if (name == "costmodels") return costmodels_grid();
  throw std::invalid_argument("unknown grid \"" + std::string(name) +
                              "\"; known grids: smoke, default, alpha-sweep, "
                              "costmodels");
}

std::vector<std::string_view> grid_names() {
  return {"smoke", "default", "alpha-sweep", "costmodels"};
}

}  // namespace manytiers::driver
