#include "obs/snapshotter.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace manytiers::obs {

std::string series_path_for(const std::string& metrics_path) {
  static constexpr std::string_view kJson = ".json";
  std::string stem = metrics_path;
  if (stem.size() >= kJson.size() &&
      stem.compare(stem.size() - kJson.size(), kJson.size(), kJson) == 0) {
    stem.resize(stem.size() - kJson.size());
  }
  return stem + ".series.json";
}

namespace {

// Diff two registry folds into one tick. seq 0 (the baseline) emits
// every metric — even zero-valued ones — so the stream's total carries
// the same key set as a final snapshot; later ticks only emit change.
DeltaTick delta_between(const Snapshot& prev, const Snapshot& snap,
                        std::uint64_t seq) {
  DeltaTick tick;
  tick.pid = snap.pid;
  tick.seq = seq;
  tick.t_us = snap.t_us;
  const bool baseline = (seq == 0);
  for (const auto& [name, value] : snap.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t before = it == prev.counters.end() ? 0 : it->second;
    // A registry reset() shrinks a counter; restart the delta stream
    // from the new level instead of underflowing.
    const std::uint64_t delta = value >= before ? value - before : value;
    if (baseline || it == prev.counters.end() || delta != 0) {
      tick.counters[name] = delta;
    }
  }
  for (const auto& [name, level] : snap.gauges) {
    const auto it = prev.gauges.find(name);
    if (baseline || it == prev.gauges.end() || it->second != level) {
      tick.gauges[name] = level;
    }
  }
  for (const auto& [name, h] : snap.histograms) {
    const auto it = prev.histograms.find(name);
    if (it == prev.histograms.end() || h.count < it->second.count) {
      // New histogram (or reset): the delta is the whole thing.
      if (baseline || it != prev.histograms.end() || h.count != 0 ||
          h.sum != 0.0) {
        tick.histograms[name] = h;
      }
      continue;
    }
    const HistogramSnapshot& before = it->second;
    if (!baseline && h.count == before.count && h.sum == before.sum) continue;
    HistogramSnapshot delta;
    delta.count = h.count - before.count;
    delta.sum = h.sum - before.sum;
    std::map<std::size_t, std::uint64_t> merged(h.buckets.begin(),
                                                h.buckets.end());
    for (const auto& [b, n] : before.buckets) {
      auto found = merged.find(b);
      if (found == merged.end() || found->second < n) {
        merged[b] = 0;  // reset mid-stream; clamp instead of underflow
      } else {
        found->second -= n;
      }
    }
    for (auto found = merged.begin(); found != merged.end();) {
      found = found->second == 0 ? merged.erase(found) : std::next(found);
    }
    delta.buckets.assign(merged.begin(), merged.end());
    tick.histograms[name] = std::move(delta);
  }
  return tick;
}

// Atomic whole-file replace, same discipline as the trace writer: a
// reader polling the sidecar either sees the previous complete stream
// or the new one, never a torn write. obs sits below util in the link
// order, so this is its own minimal writer.
void replace_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;  // observability never takes the process down
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (wrote && closed) {
    std::rename(tmp.c_str(), path.c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

}  // namespace

PeriodicSnapshotter::PeriodicSnapshotter(Options options)
    : options_(std::move(options)) {}

PeriodicSnapshotter::~PeriodicSnapshotter() { stop(); }

void PeriodicSnapshotter::start() {
  {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  // Baseline tick before the thread exists: callers observe seq 0 (and
  // a flushed sidecar) as soon as start() returns.
  take_tick();
  thread_ = std::thread([this] { run(); });
}

void PeriodicSnapshotter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final tick: whatever happened after the last interval still lands
  // in the stream before the process moves on.
  take_tick();
  std::lock_guard lock(mutex_);
  running_ = false;
}

std::vector<DeltaTick> PeriodicSnapshotter::series() const {
  std::lock_guard lock(mutex_);
  return ticks_;
}

void PeriodicSnapshotter::run() {
  const auto interval = std::chrono::duration<double, std::milli>(
      std::max(1.0, options_.interval_ms));
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;  // the final tick belongs to stop()
    }
    lock.unlock();
    take_tick();
    lock.lock();
  }
}

void PeriodicSnapshotter::take_tick() {
  // Fold the registry outside mutex_: the registry has its own lock and
  // the fold is the expensive part.
  Snapshot snap = Registry::instance().snapshot();
  std::lock_guard lock(mutex_);
  ticks_.push_back(delta_between(prev_, snap, next_seq_++));
  prev_ = std::move(snap);
  flush_locked();
}

void PeriodicSnapshotter::flush_locked() const {
  if (options_.path.empty()) return;
  replace_file(options_.path, time_series_to_json(ticks_));
}

}  // namespace manytiers::obs
