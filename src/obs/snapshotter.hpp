// Background time-series emitter: turns the process-global Registry
// into a stream of DeltaTicks on a fixed wall-clock cadence.
//
// Every interval the snapshotter folds the registry (Registry::
// snapshot()), diffs it against the previous fold, appends one
// DeltaTick — counter deltas, histogram bucket deltas, gauge levels —
// and rewrites the series sidecar atomically (temp + rename), so an
// external reader always sees a complete, parseable file no matter
// when it looks. The first tick (seq 0) is the baseline: a delta from
// the empty registry, which is what makes time_series_total() of a
// complete stream reproduce the process's final snapshot.
//
// stop() is idempotent, takes one final tick (so the stream never
// under-reports work done between the last interval and shutdown),
// and flushes. The destructor stops. The tick path takes the registry
// fold mutex but never any application lock — instrumented code cannot
// block on the snapshotter, only the reverse.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace manytiers::obs {

// Canonical series sidecar path for a metrics sidecar path: strips one
// trailing ".json" and appends ".series.json", so `part0.metrics.json`
// streams to `part0.metrics.series.json`. This derivation is the whole
// flag surface: tools take --metrics-interval-ms, never a second path.
std::string series_path_for(const std::string& metrics_path);

class PeriodicSnapshotter {
 public:
  struct Options {
    std::string path;           // series sidecar destination (required)
    double interval_ms = 1000;  // tick cadence; clamped to >= 1ms
  };

  explicit PeriodicSnapshotter(Options options);
  ~PeriodicSnapshotter();  // stops if still running

  PeriodicSnapshotter(const PeriodicSnapshotter&) = delete;
  PeriodicSnapshotter& operator=(const PeriodicSnapshotter&) = delete;

  // Takes the baseline tick (seq 0) immediately, then ticks every
  // interval on a background thread.
  void start();
  // Idempotent. Takes a final tick, flushes the sidecar, joins.
  void stop();

  // Copy of the stream so far (tests; also the final series after
  // stop()).
  std::vector<DeltaTick> series() const;

 private:
  void run();
  void take_tick();   // caller must NOT hold mutex_
  void flush_locked() const;

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  Snapshot prev_;  // previous fold; empty before the baseline tick
  std::vector<DeltaTick> ticks_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace manytiers::obs
