// Chrome-trace-event tracing: RAII spans that render as a flame view in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// The trace file is a valid JSON array of trace events, one event per
// line — the line discipline is what lets the orchestrator stitch
// several workers' files into one merged timeline without a JSON
// library (read_trace_events / write_trace_file below). Timestamps are
// microseconds on a shared wall-clock epoch (system_clock anchor +
// steady_clock deltas), so events from different processes land on one
// coherent timeline, and every event carries the emitting process's
// real pid: a sharded run renders as one flame view with a track per
// worker process and a row per thread.
//
// Cost model mirrors the registry: a Span constructed while tracing is
// inactive is one relaxed load of a global flag and nothing else.
// Tracing is enabled with Tracer::start(path) (wired to `--trace` /
// MANYTIERS_TRACE) and the buffer is written out by flush(), which also
// runs automatically at process exit — a worker that returns from
// main() always leaves a complete, parseable trace behind.
//
// Span pairs are emitted as "B"/"E" duration events (begin at
// construction, end at destruction, same pid/tid), which is what keeps
// nested spans readable as a stack; supervisor-side lifecycle spans use
// "X" complete events with explicit track coordinates (the supervisor
// knows both endpoints when it emits). Enabling tracing never changes
// what any binary computes or reports — the byte-identity ctest holds
// a traced and an untraced batch run to identical BATCH_JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace manytiers::obs {

class Tracer {
 public:
  static Tracer& instance();

  // Enable tracing and remember the output path. Registers an atexit
  // flush on first use; calling start again just switches the path.
  void start(std::string path);
  bool active() const;

  // Microseconds on the shared cross-process timeline (wall-clock
  // anchored, steady-clock advanced). Valid whether or not tracing is
  // active, so callers can record timestamps they may only emit later.
  std::uint64_t now_us() const;

  // Small integer id of the calling thread (0 = first caller, usually
  // main). Threads spawned by parallel_for override this with their
  // chunk ordinal so repeated fan-outs reuse the same trace rows.
  static long current_tid();

  // Explicit event API (the RAII Span uses begin/end). All of these
  // drop the event when tracing is inactive. `args_json` must be a
  // complete JSON object ("{...}") or empty.
  void begin(std::string_view name, long tid, std::string_view args_json = {});
  void end(long tid);
  void instant(std::string_view name, long tid,
               std::string_view args_json = {});
  void complete(std::string_view name, std::uint64_t ts_us,
                std::uint64_t dur_us, long pid, long tid,
                std::string_view args_json = {});
  // Metadata: names the current process in the Perfetto track list.
  void set_process_name(std::string_view name);

  // --- Deterministic span sampling (`--trace-sample N`) ---
  //
  // Keeps roughly 1/N of per-task spans: a span keyed by a stable task
  // id is kept iff splitmix64(key) % N == 0. The decision is a pure
  // function of (key, N), so every worker process of a sharded run
  // makes the SAME keep/drop choice for the same global task — stitched
  // traces stay consistent instead of sampling different tasks per
  // worker. n == 0 or 1 disables sampling (keep everything).
  //
  // Only bulk per-task spans consult sample_keep(); lifecycle and
  // supervisor spans (worker attempts, phases, reloads) are always
  // emitted — sampling thins the 10^6-task floodplain, not the
  // structure above it.
  void set_sample_every(std::uint64_t n);
  std::uint64_t sample_every() const;
  // True when tracing is active AND this key survives the sampler.
  bool sample_keep(std::uint64_t key) const;

  // Write the buffered events to the path as a JSON array (temp file +
  // rename, so a reader never sees a torn array). Idempotent; keeps
  // the buffer so a later flush rewrites the complete file.
  void flush();

 private:
  Tracer() = default;
  void push(std::string line);

  struct Impl;
  static Impl* impl();  // lazily constructed, leaked on purpose (atexit-safe)
};

// RAII span on the current thread's track of the current process.
// `tid_override >= 0` pins the event to a specific trace row (used by
// parallel_for worker chunks).
class Span {
 public:
  explicit Span(std::string_view name, std::string_view args_json = {},
                long tid_override = -1);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool emitted_ = false;
  long tid_ = 0;
};

// Enable tracing from MANYTIERS_TRACE when set and not already active —
// the hook for flagless binaries (the bench suite calls this once).
void maybe_start_trace_from_env();

// --- Trace file stitching (the orchestrator's merge) ---

// Read one trace file written by Tracer::flush (or any one-event-per-
// line JSON array) and return the raw event object strings. Throws
// std::invalid_argument when the file is not a line-formatted array.
std::vector<std::string> read_trace_events(const std::string& path);

// Write raw event object strings as a valid JSON trace array.
void write_trace_file(const std::string& path,
                      const std::vector<std::string>& events);

}  // namespace manytiers::obs
