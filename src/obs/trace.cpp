#include "obs/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace manytiers::obs {

namespace {

std::atomic<bool> g_trace_active{false};

// Writer-controlled strings (span names, file paths); escape the JSON
// breakers so a hostile path cannot corrupt the trace.
std::string quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

long next_tid() {
  static std::atomic<long> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Sampling divisor; relaxed for the same reason as the active flag.
std::atomic<std::uint64_t> g_sample_every{0};

// splitmix64 finalizer: a cheap, well-mixed hash so sampling by
// `hash(key) % N` keeps an unbiased 1/N of tasks even when keys are
// sequential integers (key % N would keep every N-th cell column).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

struct Tracer::Impl {
  std::mutex mutex;
  std::string path;
  std::vector<std::string> events;
  // Cross-process timeline anchor: wall-clock epoch captured once,
  // advanced by the steady clock (immune to NTP steps mid-run).
  std::chrono::system_clock::time_point wall_anchor =
      std::chrono::system_clock::now();
  std::chrono::steady_clock::time_point steady_anchor =
      std::chrono::steady_clock::now();
  long pid = static_cast<long>(::getpid());
};

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Impl* Tracer::impl() {
  // Leaked on purpose: the atexit flush may run after static
  // destructors, so the buffer must never be destroyed.
  static Impl* impl = new Impl;
  return impl;
}

void Tracer::start(std::string path) {
  Impl* i = impl();
  {
    std::lock_guard<std::mutex> lock(i->mutex);
    i->path = std::move(path);
  }
  static std::once_flag exit_hook;
  std::call_once(exit_hook, [] {
    std::atexit([] { Tracer::instance().flush(); });
  });
  g_trace_active.store(true, std::memory_order_relaxed);
}

bool Tracer::active() const {
  return g_trace_active.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::now_us() const {
  Impl* i = impl();
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           i->wall_anchor.time_since_epoch())
                           .count();
  const auto steady_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - i->steady_anchor)
          .count();
  return static_cast<std::uint64_t>(wall_us + steady_us);
}

long Tracer::current_tid() {
  thread_local const long tid = next_tid();
  return tid;
}

void Tracer::push(std::string line) {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mutex);
  i->events.push_back(std::move(line));
}

void Tracer::begin(std::string_view name, long tid,
                   std::string_view args_json) {
  if (!active()) return;
  std::ostringstream os;
  os << "{\"name\":" << quote(name) << ",\"ph\":\"B\",\"ts\":" << now_us()
     << ",\"pid\":" << impl()->pid << ",\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":" << args_json;
  os << "}";
  push(os.str());
}

void Tracer::end(long tid) {
  if (!active()) return;
  std::ostringstream os;
  os << "{\"ph\":\"E\",\"ts\":" << now_us() << ",\"pid\":" << impl()->pid
     << ",\"tid\":" << tid << "}";
  push(os.str());
}

void Tracer::instant(std::string_view name, long tid,
                     std::string_view args_json) {
  if (!active()) return;
  std::ostringstream os;
  os << "{\"name\":" << quote(name)
     << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << now_us()
     << ",\"pid\":" << impl()->pid << ",\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":" << args_json;
  os << "}";
  push(os.str());
}

void Tracer::complete(std::string_view name, std::uint64_t ts_us,
                      std::uint64_t dur_us, long pid, long tid,
                      std::string_view args_json) {
  if (!active()) return;
  std::ostringstream os;
  os << "{\"name\":" << quote(name) << ",\"ph\":\"X\",\"ts\":" << ts_us
     << ",\"dur\":" << dur_us << ",\"pid\":" << pid << ",\"tid\":" << tid;
  if (!args_json.empty()) os << ",\"args\":" << args_json;
  os << "}";
  push(os.str());
}

void Tracer::set_process_name(std::string_view name) {
  if (!active()) return;
  std::ostringstream os;
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << impl()->pid
     << ",\"tid\":0,\"args\":{\"name\":" << quote(name) << "}}";
  push(os.str());
}

void Tracer::set_sample_every(std::uint64_t n) {
  g_sample_every.store(n, std::memory_order_relaxed);
}

std::uint64_t Tracer::sample_every() const {
  return g_sample_every.load(std::memory_order_relaxed);
}

bool Tracer::sample_keep(std::uint64_t key) const {
  if (!active()) return false;
  const std::uint64_t n = g_sample_every.load(std::memory_order_relaxed);
  if (n <= 1) return true;
  return splitmix64(key) % n == 0;
}

void Tracer::flush() {
  if (!active()) return;
  Impl* i = impl();
  std::string path;
  std::vector<std::string> events;
  {
    std::lock_guard<std::mutex> lock(i->mutex);
    path = i->path;
    events = i->events;  // copy: later spans keep accumulating
  }
  if (path.empty()) return;
  write_trace_file(path, events);
}

Span::Span(std::string_view name, std::string_view args_json,
           long tid_override) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.active()) return;
  tid_ = tid_override >= 0 ? tid_override : Tracer::current_tid();
  tracer.begin(name, tid_, args_json);
  emitted_ = true;
}

Span::~Span() {
  if (emitted_) Tracer::instance().end(tid_);
}

void maybe_start_trace_from_env() {
  if (Tracer::instance().active()) return;
  if (const char* path = std::getenv("MANYTIERS_TRACE")) {
    if (path[0] != '\0') Tracer::instance().start(path);
  }
}

std::vector<std::string> read_trace_events(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::invalid_argument("read_trace_events: cannot open " + path);
  }
  std::vector<std::string> events;
  std::string line;
  bool saw_open = false, saw_close = false;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == ','))
      line.pop_back();
    while (!line.empty() && line.front() == ' ') line.erase(line.begin());
    if (line.empty()) continue;
    if (line == "[") {
      saw_open = true;
      continue;
    }
    if (line == "]") {
      saw_close = true;
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      throw std::invalid_argument(
          "read_trace_events: " + path +
          " is not a one-event-per-line trace array (bad line: " + line + ")");
    }
    events.push_back(std::move(line));
  }
  if (!saw_open || !saw_close) {
    throw std::invalid_argument("read_trace_events: " + path +
                                " is missing the enclosing [ ] array");
  }
  return events;
}

void write_trace_file(const std::string& path,
                      const std::vector<std::string>& events) {
  // Temp-file + rename: a reader (the orchestrator stitching worker
  // traces) never observes a torn array. No fsync — a trace is
  // diagnostics, not data; the durability discipline stays reserved
  // for the report files.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_trace_file: cannot open " + tmp);
    }
    out << "[\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
      out << events[i];
      if (i + 1 < events.size()) out << ',';
      out << '\n';
    }
    out << "]\n";
    if (!out.good()) {
      throw std::runtime_error("write_trace_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("write_trace_file: rename to " + path +
                             " failed");
  }
}

}  // namespace manytiers::obs
