#include "obs/registry.hpp"

#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace manytiers::obs {

namespace detail {

std::atomic<bool> g_enabled{false};

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  // Round-robin assignment spreads concurrent threads across shards;
  // two threads only share a line after kShards distinct threads exist.
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable(bool on) : previous_(enabled()) { set_enabled(on); }
ScopedEnable::~ScopedEnable() { set_enabled(previous_); }

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

std::size_t histogram_bucket(double value) {
  if (!(value >= 2.0)) return 0;  // [0, 2), negatives, and NaN
  const double capped =
      std::min(value, static_cast<double>(std::uint64_t{1} << 62));
  const auto u = static_cast<std::uint64_t>(capped);
  return std::min<std::size_t>(std::bit_width(u) - 1, kHistogramBuckets - 1);
}

double histogram_bucket_floor(std::size_t b) {
  if (b == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(b));
}

double histogram_percentile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile recording, 1-based; q = 0 still asks for the
  // first recording so an all-zero histogram answers 0, not garbage.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(h.count))));
  std::uint64_t seen = 0;
  for (const auto& [bucket, n] : h.buckets) {
    seen += n;
    if (seen >= rank) return histogram_bucket_floor(bucket);
  }
  // count disagrees with the bucket sum (clipped input): answer from
  // the last non-empty bucket rather than inventing a value.
  return h.buckets.empty() ? 0.0
                           : histogram_bucket_floor(h.buckets.back().first);
}

std::uint64_t wall_clock_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void Histogram::record(double value) {
  if (!enabled()) return;
  Shard& shard = shards_[detail::this_thread_shard()];
  shard.buckets[histogram_bucket(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::uint64_t> Histogram::buckets() const {
  std::vector<std::uint64_t> out(kHistogramBuckets, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.pid = static_cast<long>(::getpid());
  out.t_us = wall_clock_us();
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    const auto buckets = histogram->buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] != 0) h.buckets.emplace_back(b, buckets[b]);
    }
    out.histograms[name] = std::move(h);
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

namespace {

// Escape for the (writer-controlled) metric names; same minimal set as
// the orchestrator's event writer.
std::string quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string format_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

// --- Minimal line-record reader for the sidecar format ---
// Each record line is one flat JSON object written by snapshot_to_json;
// the reader only has to invert that writer, not parse arbitrary JSON.

[[noreturn]] void bad(const std::string& why) {
  throw std::invalid_argument("parse_snapshot: " + why);
}

// Extracts the raw text of `"key":<value>` from a record line, where
// <value> runs to the next top-level ',' or the closing '}'.
std::string raw_field(std::string_view line, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) {
    bad("missing field \"" + std::string(key) + "\" in: " + std::string(line));
  }
  std::size_t i = pos + needle.size();
  std::size_t depth = 0;
  bool in_string = false;
  const std::size_t start = i;
  for (; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[' || c == '{') ++depth;
    else if (c == ']' || c == '}') {
      if (depth == 0) break;
      --depth;
    } else if (c == ',' && depth == 0) {
      break;
    }
  }
  return std::string(line.substr(start, i - start));
}

std::string parse_string(const std::string& raw) {
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    bad("expected string, got: " + raw);
  }
  std::string out;
  for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 2 < raw.size()) {
      ++i;
      switch (raw[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        default: bad("unsupported escape in: " + raw);
      }
    } else {
      out += raw[i];
    }
  }
  return out;
}

std::uint64_t parse_u64(const std::string& raw) {
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(raw, &used);
  } catch (const std::exception&) {
    bad("not an unsigned integer: " + raw);
  }
  if (used != raw.size()) bad("not an unsigned integer: " + raw);
  return value;
}

std::int64_t parse_i64(const std::string& raw) {
  std::size_t used = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(raw, &used);
  } catch (const std::exception&) {
    bad("not an integer: " + raw);
  }
  if (used != raw.size()) bad("not an integer: " + raw);
  return value;
}

double parse_number(const std::string& raw) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &used);
  } catch (const std::exception&) {
    bad("not a number: " + raw);
  }
  if (used != raw.size()) bad("not a number: " + raw);
  return value;
}

// "[[5,2],[6,1]]" -> sparse bucket list.
std::vector<std::pair<std::size_t, std::uint64_t>> parse_buckets(
    const std::string& raw) {
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  if (raw.size() < 2 || raw.front() != '[' || raw.back() != ']') {
    bad("expected bucket array, got: " + raw);
  }
  std::size_t i = 1;
  while (i < raw.size() - 1) {
    if (raw[i] == ',') { ++i; continue; }
    if (raw[i] != '[') bad("expected bucket pair in: " + raw);
    const auto comma = raw.find(',', i);
    const auto close = raw.find(']', i);
    if (comma == std::string::npos || close == std::string::npos ||
        comma > close) {
      bad("malformed bucket pair in: " + raw);
    }
    out.emplace_back(parse_u64(raw.substr(i + 1, comma - i - 1)),
                     parse_u64(raw.substr(comma + 1, close - comma - 1)));
    i = close + 1;
  }
  return out;
}

}  // namespace

namespace {

// Shared array wrapper: records joined one-per-line inside [ ].
std::string records_to_array(const std::vector<std::string>& records) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out += records[i];
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

std::string bucket_array(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets) {
  std::string out = "[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i != 0) out += ',';
    out += '[' + std::to_string(buckets[i].first) + ',' +
           std::to_string(buckets[i].second) + ']';
  }
  out += ']';
  return out;
}

}  // namespace

std::string snapshot_to_json(const Snapshot& snapshot) {
  std::vector<std::string> records;
  if (snapshot.pid != 0 || snapshot.t_us != 0) {
    // Provenance stamps lead the sidecar; hand-built (unstamped)
    // snapshots serialize exactly as before the stamps existed.
    records.push_back("{\"kind\":\"meta\",\"pid\":" +
                      std::to_string(snapshot.pid) +
                      ",\"t_us\":" + std::to_string(snapshot.t_us) + "}");
  }
  for (const auto& [name, value] : snapshot.counters) {
    records.push_back("{\"kind\":\"counter\",\"name\":" + quote(name) +
                      ",\"value\":" + std::to_string(value) + "}");
  }
  for (const auto& [name, value] : snapshot.gauges) {
    records.push_back("{\"kind\":\"gauge\",\"name\":" + quote(name) +
                      ",\"value\":" + std::to_string(value) + "}");
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string buckets = "[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i != 0) buckets += ',';
      buckets += '[' + std::to_string(h.buckets[i].first) + ',' +
                 std::to_string(h.buckets[i].second) + ']';
    }
    buckets += ']';
    records.push_back("{\"kind\":\"hist\",\"name\":" + quote(name) +
                      ",\"count\":" + std::to_string(h.count) +
                      ",\"sum\":" + format_double(h.sum) +
                      ",\"buckets\":" + buckets + "}");
  }
  return records_to_array(records);
}

Snapshot parse_snapshot(std::string_view text) {
  Snapshot out;
  std::size_t pos = 0;
  bool saw_open = false, saw_close = false;
  while (pos < text.size()) {
    auto eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // Trim whitespace and the inter-record comma.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == ','))
      line.remove_suffix(1);
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;
    if (line == "[") {
      saw_open = true;
      continue;
    }
    if (line == "]") {
      saw_close = true;
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      bad("expected one JSON object per line, got: " + std::string(line));
    }
    const std::string kind = parse_string(raw_field(line, "kind"));
    if (kind == "meta") {
      out.pid = parse_i64(raw_field(line, "pid"));
      out.t_us = parse_u64(raw_field(line, "t_us"));
      continue;
    }
    const std::string name = parse_string(raw_field(line, "name"));
    if (kind == "counter") {
      out.counters[name] += parse_u64(raw_field(line, "value"));
    } else if (kind == "gauge") {
      out.gauges[name] += parse_i64(raw_field(line, "value"));
    } else if (kind == "hist") {
      HistogramSnapshot h;
      h.count = parse_u64(raw_field(line, "count"));
      h.sum = parse_number(raw_field(line, "sum"));
      h.buckets = parse_buckets(raw_field(line, "buckets"));
      out.histograms[name] = std::move(h);
    } else {
      bad("unknown record kind \"" + kind + "\"");
    }
  }
  if (!saw_open || !saw_close) bad("missing enclosing [ ] array markers");
  return out;
}

Snapshot merge_snapshots(const std::vector<Snapshot>& parts) {
  Snapshot out;
  for (const auto& part : parts) {
    // pid stays 0: the merge spans processes. The merged capture time is
    // the latest part's, i.e. when the last contributor was observed.
    out.t_us = std::max(out.t_us, part.t_us);
    for (const auto& [name, value] : part.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : part.gauges) {
      out.gauges[name] += value;
    }
    for (const auto& [name, h] : part.histograms) {
      HistogramSnapshot& dst = out.histograms[name];
      dst.count += h.count;
      dst.sum += h.sum;
      // Merge the sparse bucket lists, keeping ascending order.
      std::map<std::size_t, std::uint64_t> merged(dst.buckets.begin(),
                                                  dst.buckets.end());
      for (const auto& [b, n] : h.buckets) merged[b] += n;
      dst.buckets.assign(merged.begin(), merged.end());
    }
  }
  return out;
}

// --- Streaming time-series ---

namespace {

std::string tick_stamp(const DeltaTick& tick) {
  return ",\"pid\":" + std::to_string(tick.pid) +
         ",\"seq\":" + std::to_string(tick.seq) +
         ",\"t_us\":" + std::to_string(tick.t_us);
}

}  // namespace

std::string time_series_to_json(const std::vector<DeltaTick>& ticks) {
  std::vector<std::string> records;
  for (const auto& tick : ticks) {
    const std::string stamp = tick_stamp(tick);
    records.push_back("{\"kind\":\"tick\"" + stamp + "}");
    for (const auto& [name, delta] : tick.counters) {
      records.push_back("{\"kind\":\"cdelta\",\"name\":" + quote(name) +
                        ",\"delta\":" + std::to_string(delta) + stamp + "}");
    }
    for (const auto& [name, value] : tick.gauges) {
      records.push_back("{\"kind\":\"glevel\",\"name\":" + quote(name) +
                        ",\"value\":" + std::to_string(value) + stamp + "}");
    }
    for (const auto& [name, h] : tick.histograms) {
      records.push_back("{\"kind\":\"hdelta\",\"name\":" + quote(name) +
                        ",\"count\":" + std::to_string(h.count) +
                        ",\"sum\":" + format_double(h.sum) +
                        ",\"buckets\":" + bucket_array(h.buckets) + stamp +
                        "}");
    }
  }
  return records_to_array(records);
}

std::vector<DeltaTick> parse_time_series(std::string_view text) {
  std::vector<DeltaTick> out;
  std::size_t pos = 0;
  bool saw_open = false, saw_close = false;
  while (pos < text.size()) {
    auto eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ' ||
                             line.back() == ','))
      line.remove_suffix(1);
    while (!line.empty() && line.front() == ' ') line.remove_prefix(1);
    if (line.empty()) continue;
    if (line == "[") {
      saw_open = true;
      continue;
    }
    if (line == "]") {
      saw_close = true;
      continue;
    }
    if (line.front() != '{' || line.back() != '}') {
      bad("expected one JSON object per line, got: " + std::string(line));
    }
    const std::string kind = parse_string(raw_field(line, "kind"));
    const long pid = parse_i64(raw_field(line, "pid"));
    const std::uint64_t seq = parse_u64(raw_field(line, "seq"));
    const std::uint64_t t_us = parse_u64(raw_field(line, "t_us"));
    if (kind == "tick") {
      DeltaTick tick;
      tick.pid = pid;
      tick.seq = seq;
      tick.t_us = t_us;
      out.push_back(std::move(tick));
      continue;
    }
    // Every per-metric record belongs to the "tick" record that opened
    // its tick; the writer keeps them contiguous, so a mismatch means a
    // corrupted or hand-spliced stream.
    if (out.empty() || out.back().pid != pid || out.back().seq != seq) {
      bad("record outside its tick: " + std::string(line));
    }
    DeltaTick& tick = out.back();
    const std::string name = parse_string(raw_field(line, "name"));
    if (kind == "cdelta") {
      tick.counters[name] += parse_u64(raw_field(line, "delta"));
    } else if (kind == "glevel") {
      tick.gauges[name] = parse_i64(raw_field(line, "value"));
    } else if (kind == "hdelta") {
      HistogramSnapshot h;
      h.count = parse_u64(raw_field(line, "count"));
      h.sum = parse_number(raw_field(line, "sum"));
      h.buckets = parse_buckets(raw_field(line, "buckets"));
      tick.histograms[name] = std::move(h);
    } else {
      bad("unknown record kind \"" + kind + "\"");
    }
  }
  if (!saw_open || !saw_close) bad("missing enclosing [ ] array markers");
  return out;
}

std::vector<DeltaTick> merge_time_series(
    const std::vector<std::vector<DeltaTick>>& streams) {
  std::vector<DeltaTick> out;
  for (const auto& stream : streams) {
    out.insert(out.end(), stream.begin(), stream.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const DeltaTick& a, const DeltaTick& b) {
                     if (a.t_us != b.t_us) return a.t_us < b.t_us;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.seq < b.seq;
                   });
  return out;
}

Snapshot time_series_total(const std::vector<DeltaTick>& ticks) {
  Snapshot out;
  // Latest gauge level per (pid, name); "latest" is timeline position,
  // which within one process is also seq order.
  std::map<std::pair<long, std::string>, std::int64_t> gauge_levels;
  for (const auto& tick : ticks) {
    // Single-stream totals keep their pid; a merged timeline reads 0
    // like merge_snapshots output.
    out.pid = (&tick == &ticks.front() || out.pid == tick.pid) ? tick.pid : 0;
    out.t_us = std::max(out.t_us, tick.t_us);
    for (const auto& [name, delta] : tick.counters) {
      out.counters[name] += delta;
    }
    for (const auto& [name, value] : tick.gauges) {
      gauge_levels[{tick.pid, name}] = value;
    }
    for (const auto& [name, h] : tick.histograms) {
      HistogramSnapshot& dst = out.histograms[name];
      dst.count += h.count;
      dst.sum += h.sum;
      std::map<std::size_t, std::uint64_t> merged(dst.buckets.begin(),
                                                  dst.buckets.end());
      for (const auto& [b, n] : h.buckets) merged[b] += n;
      dst.buckets.assign(merged.begin(), merged.end());
    }
  }
  for (const auto& [key, value] : gauge_levels) {
    out.gauges[key.second] += value;
  }
  return out;
}

}  // namespace manytiers::obs
