// Process-global metrics registry: named counters, gauges, and
// log-scale latency histograms shared by every binary.
//
// Hot-path cost model: an increment is ONE relaxed atomic add on a
// cache-line-padded per-thread shard — workers in a `parallel_for` never
// contend on the same line, so instrumenting the DP fill loop or the
// sweep tasks does not serialize them. When the registry is disabled
// (the default), every mutation is a single branch on one global flag
// and nothing else: a binary that never passes --metrics pays one
// predictable-not-taken branch per instrumented site.
//
// Handles returned by Registry::counter()/gauge()/histogram() are
// stable for the process lifetime, so call sites cache them in a
// function-local static and skip the name lookup on every hit:
//
//   static obs::Counter& fills =
//       obs::Registry::instance().counter("bundling.dp_fills");
//   fills.add();
//
// Reading folds the shards (sum); Registry::snapshot() folds every
// metric into a plain Snapshot that serializes to the metrics sidecar
// (see snapshot_to_json / parse_snapshot / merge_snapshots), which is
// how per-worker metrics cross process boundaries and get summed into
// one run-level view by the orchestrator.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace manytiers::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
// Per-thread shard slot, assigned round-robin on first use per thread.
std::size_t this_thread_shard();
}  // namespace detail

// The single global flag every mutation branches on. Relaxed is enough:
// enabling observability must never synchronize application code.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// RAII enable for tests: flips the flag on construction and restores
// the previous state on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool previous_;
};

inline constexpr std::size_t kShards = 64;

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> value{0};
};

// Monotone event count. add() is wait-free: one relaxed fetch_add on
// this thread's shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const;  // sum over shards
  void reset();

 private:
  std::array<PaddedCount, kShards> shards_{};
};

// Last-written level (thread/worker counts, sizes). Gauges are not
// hot-path: a single atomic slot suffices.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) {
    if (!enabled()) return;
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-scale (power-of-two) histogram for latencies. Bucket b holds
// values v with histogram_bucket(v) == b: bucket 0 is [0, 2) and bucket
// b >= 1 is [2^b, 2^(b+1)) — so every boundary 2^b opens bucket b.
// Values are unitless; the convention in this codebase is microseconds.
inline constexpr std::size_t kHistogramBuckets = 64;

std::size_t histogram_bucket(double value);
// Inclusive lower bound of bucket b (0 for b == 0, else 2^b).
double histogram_bucket_floor(std::size_t b);

class Histogram {
 public:
  void record(double value);
  std::uint64_t count() const;               // total recordings
  double sum() const;                        // sum of recorded values
  std::vector<std::uint64_t> buckets() const;  // folded, kHistogramBuckets
  void reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, kShards> shards_{};
};

// One folded, process-local view of every registered metric — and the
// unit of cross-process exchange: a worker serializes its snapshot to
// the metrics sidecar, the orchestrator parses the winners' sidecars
// and sums them with merge_snapshots.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  // Sparse: only non-empty buckets, as (bucket index, count), ascending.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

// Exact q-quantile (q in [0, 1]) of the recorded distribution at bucket
// resolution: the inclusive lower bound of the bucket holding the
// ceil(q * count)-th recording. Deterministic — two processes with the
// same buckets derive the same percentile. 0 when the histogram is
// empty.
double histogram_percentile(const HistogramSnapshot& h, double q);

struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  // Provenance stamps (0 = unstamped, for hand-built snapshots): the
  // emitting process and the wall-clock capture time, so merged
  // multi-process sidecars are self-describing instead of relying on
  // file naming. Registry::snapshot() always stamps.
  long pid = 0;
  std::uint64_t t_us = 0;
};

// Microseconds since the wall-clock epoch — the shared timeline every
// snapshot stamp and time-series tick lives on (same epoch the tracer
// anchors to, so metrics ticks line up under trace spans).
std::uint64_t wall_clock_us();

class Registry {
 public:
  static Registry& instance();

  // Get-or-create by name; the returned reference is process-stable.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;
  // Zero every registered metric (handles stay valid). Test hygiene.
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Metrics sidecar format: a valid JSON array, one record per line —
//   [
//   {"kind":"meta","pid":4242,"t_us":1700000000000000},
//   {"kind":"counter","name":"bundling.dp_fills","value":42},
//   {"kind":"hist","name":"driver.task_us","count":3,"sum":128.0,
//    "buckets":[[5,2],[6,1]]}
//   ]
// so the same file loads in any JSON tool AND parses line-by-line with
// the hand-rolled reader below (no JSON library in this codebase). The
// "meta" record carries the snapshot stamps and is omitted for
// unstamped snapshots, which keeps pre-stamp sidecars byte-identical.
std::string snapshot_to_json(const Snapshot& snapshot);
// Throws std::invalid_argument on malformed input.
Snapshot parse_snapshot(std::string_view text);
// Element-wise sum: counters and gauges add, histograms add bucket-wise.
// The merged stamps are pid 0 (multi-process) and the max part t_us.
Snapshot merge_snapshots(const std::vector<Snapshot>& parts);

// --- Streaming time-series (the PeriodicSnapshotter's record unit) ---
//
// One interval tick of one process: counter DELTAS and histogram bucket
// DELTAS since the previous tick, gauge LEVELS as of this tick. seq 0
// is the baseline tick (delta from an empty registry), so summing every
// delta of a stream reproduces the process's final snapshot exactly —
// the sum-to-total identity the streaming tests pin.
struct DeltaTick {
  long pid = 0;
  std::uint64_t seq = 0;   // tick ordinal within this process's stream
  std::uint64_t t_us = 0;  // wall-clock stamp (wall_clock_us)
  std::map<std::string, std::uint64_t> counters;  // deltas
  std::map<std::string, std::int64_t> gauges;     // levels
  std::map<std::string, HistogramSnapshot> histograms;  // deltas
};

// Time-series sidecar format: the same one-record-per-line JSON array
// discipline, with stream-specific record kinds so a plain snapshot
// reader never confuses the two —
//   {"kind":"tick","pid":P,"seq":S,"t_us":T}
//   {"kind":"cdelta","name":N,"delta":D,"pid":P,"seq":S,"t_us":T}
//   {"kind":"glevel","name":N,"value":V,"pid":P,"seq":S,"t_us":T}
//   {"kind":"hdelta","name":N,"count":C,"sum":X,"buckets":[[b,n],...],
//    "pid":P,"seq":S,"t_us":T}
// Every tick opens with its "tick" record (emitted even when nothing
// changed: the stream's own heartbeat), followed by one record per
// changed metric.
std::string time_series_to_json(const std::vector<DeltaTick>& ticks);
// Throws std::invalid_argument on malformed input.
std::vector<DeltaTick> parse_time_series(std::string_view text);
// Align several per-process streams onto one wall-clock timeline:
// ticks ordered by (t_us, pid, seq).
std::vector<DeltaTick> merge_time_series(
    const std::vector<std::vector<DeltaTick>>& streams);
// Fold a (possibly merged, multi-process) timeline back into totals:
// counter and histogram deltas sum; a gauge takes its last level per
// process, summed across processes. For a single complete stream this
// reproduces the process's final snapshot.
Snapshot time_series_total(const std::vector<DeltaTick>& ticks);

}  // namespace manytiers::obs
