#include "topology/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace manytiers::topology {

std::vector<PopId> ShortestPaths::path_to(PopId dst) const {
  if (dst >= distance_miles.size()) {
    throw std::out_of_range("ShortestPaths::path_to: bad id");
  }
  if (distance_miles[dst] == kUnreachable) return {};
  std::vector<PopId> path{dst};
  while (path.back() != source) path.push_back(predecessor[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

void shortest_paths_into(std::span<const std::vector<Network::Edge>> adjacency,
                         PopId source, std::span<double> distance,
                         std::span<PopId> predecessor) {
  const std::size_t n = adjacency.size();
  if (source >= n) {
    throw std::out_of_range("shortest_paths_into: bad source id");
  }
  if (distance.size() != n || predecessor.size() != n) {
    throw std::invalid_argument("shortest_paths_into: output size mismatch");
  }
  std::fill(distance.begin(), distance.end(), kUnreachable);
  for (PopId i = 0; i < n; ++i) predecessor[i] = i;

  using Item = std::pair<double, PopId>;  // (distance, pop)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  distance[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > distance[u]) continue;  // stale entry
    for (const auto& edge : adjacency[u]) {
      const double next = dist + edge.length_miles;
      if (next < distance[edge.to]) {
        distance[edge.to] = next;
        predecessor[edge.to] = u;
        heap.emplace(next, edge.to);
      }
    }
  }
}

ShortestPaths shortest_paths(const Network& net, PopId source) {
  if (source >= net.pop_count()) {
    throw std::out_of_range("shortest_paths: bad source id");
  }
  ShortestPaths out;
  out.source = source;
  out.distance_miles.resize(net.pop_count());
  out.predecessor.resize(net.pop_count());
  shortest_paths_into(net.adjacency(), source, out.distance_miles,
                      out.predecessor);
  return out;
}

double shortest_distance(const Network& net, PopId src, PopId dst) {
  if (dst >= net.pop_count()) {
    throw std::out_of_range("shortest_distance: bad destination id");
  }
  return shortest_paths(net, src).distance_miles[dst];
}

void DistanceMatrix::grow(std::size_t m) {
  if (m < n_) {
    throw std::invalid_argument("DistanceMatrix::grow: cannot shrink");
  }
  if (m == n_) return;
  std::vector<double> next(m * m, kUnreachable);
  for (std::size_t s = 0; s < n_; ++s) {
    std::copy_n(cells_.data() + s * n_, n_, next.data() + s * m);
  }
  cells_ = std::move(next);
  n_ = m;
}

DistanceMatrix all_pairs_distances(const Network& net) {
  const std::size_t n = net.pop_count();
  DistanceMatrix out(n);
  std::vector<PopId> pred(n);
  for (PopId s = 0; s < n; ++s) {
    shortest_paths_into(net.adjacency(), s, out.row(s), pred);
  }
  return out;
}

}  // namespace manytiers::topology
