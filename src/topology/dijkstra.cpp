#include "topology/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace manytiers::topology {

std::vector<PopId> ShortestPaths::path_to(PopId dst) const {
  if (dst >= distance_miles.size()) {
    throw std::out_of_range("ShortestPaths::path_to: bad id");
  }
  if (distance_miles[dst] == kUnreachable) return {};
  std::vector<PopId> path{dst};
  while (path.back() != source) path.push_back(predecessor[path.back()]);
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths shortest_paths(const Network& net, PopId source) {
  if (source >= net.pop_count()) {
    throw std::out_of_range("shortest_paths: bad source id");
  }
  ShortestPaths out;
  out.source = source;
  out.distance_miles.assign(net.pop_count(), kUnreachable);
  out.predecessor.resize(net.pop_count());
  for (PopId i = 0; i < net.pop_count(); ++i) out.predecessor[i] = i;

  using Item = std::pair<double, PopId>;  // (distance, pop)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  out.distance_miles[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > out.distance_miles[u]) continue;  // stale entry
    for (const auto& edge : net.neighbors(u)) {
      const double next = dist + edge.length_miles;
      if (next < out.distance_miles[edge.to]) {
        out.distance_miles[edge.to] = next;
        out.predecessor[edge.to] = u;
        heap.emplace(next, edge.to);
      }
    }
  }
  return out;
}

double shortest_distance(const Network& net, PopId src, PopId dst) {
  if (dst >= net.pop_count()) {
    throw std::out_of_range("shortest_distance: bad destination id");
  }
  return shortest_paths(net, src).distance_miles[dst];
}

std::vector<std::vector<double>> all_pairs_distances(const Network& net) {
  std::vector<std::vector<double>> out;
  out.reserve(net.pop_count());
  for (PopId s = 0; s < net.pop_count(); ++s) {
    out.push_back(shortest_paths(net, s).distance_miles);
  }
  return out;
}

}  // namespace manytiers::topology
