// Shortest-path routing over a backbone topology.
//
// Internet2 flow distances in the paper are the sum of the link lengths on
// the path the flow traverses (§4.1.1); we route along shortest geographic
// paths, which matches how research backbones are provisioned.
#pragma once

#include <limits>
#include <vector>

#include "topology/graph.hpp"

namespace manytiers::topology {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  PopId source = 0;
  std::vector<double> distance_miles;  // kUnreachable if not reachable
  std::vector<PopId> predecessor;      // self for source / unreachable nodes

  // Reconstruct the path source -> dst (inclusive); empty if unreachable.
  std::vector<PopId> path_to(PopId dst) const;
};

// Single-source shortest paths by link length (Dijkstra).
ShortestPaths shortest_paths(const Network& net, PopId source);

// Distance of the shortest path between two PoPs; kUnreachable if none.
double shortest_distance(const Network& net, PopId src, PopId dst);

// All-pairs distance matrix, indexed [src][dst].
std::vector<std::vector<double>> all_pairs_distances(const Network& net);

}  // namespace manytiers::topology
