// Shortest-path routing over a backbone topology.
//
// Internet2 flow distances in the paper are the sum of the link lengths on
// the path the flow traverses (§4.1.1); we route along shortest geographic
// paths, which matches how research backbones are provisioned.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "topology/graph.hpp"

namespace manytiers::topology {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPaths {
  PopId source = 0;
  std::vector<double> distance_miles;  // kUnreachable if not reachable
  std::vector<PopId> predecessor;      // self for source / unreachable nodes

  // Reconstruct the path source -> dst (inclusive); empty if unreachable.
  std::vector<PopId> path_to(PopId dst) const;
};

// SSSP relaxation core over a raw adjacency list. `distance` and
// `predecessor` must have one slot per vertex; they are overwritten
// (distance with kUnreachable / predecessor with self before the run).
// Exposed so the dynamic-network kernels run the exact relaxation the
// static path runs — distances are the unique fixed point of
// d[v] = min(d[u] + w) under IEEE rounding, which is what makes
// incremental repair bit-identical to recompute-from-scratch.
void shortest_paths_into(std::span<const std::vector<Network::Edge>> adjacency,
                         PopId source, std::span<double> distance,
                         std::span<PopId> predecessor);

// Single-source shortest paths by link length (Dijkstra).
ShortestPaths shortest_paths(const Network& net, PopId source);

// Distance of the shortest path between two PoPs; kUnreachable if none.
double shortest_distance(const Network& net, PopId src, PopId dst);

// All-pairs distances in one flat row-major allocation: cell (src, dst)
// lives at src * size() + dst. One allocation for the whole matrix
// instead of one per PoP, and a stride index instead of a double
// indirection on the gravity / generator hot paths.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  explicit DistanceMatrix(std::size_t n) : n_(n), cells_(n * n, kUnreachable) {}

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  double operator()(PopId src, PopId dst) const {
    return cells_[src * n_ + dst];
  }
  double& operator()(PopId src, PopId dst) { return cells_[src * n_ + dst]; }

  std::span<const double> row(PopId src) const {
    return {cells_.data() + src * n_, n_};
  }
  std::span<double> row(PopId src) { return {cells_.data() + src * n_, n_}; }

  const std::vector<double>& cells() const { return cells_; }

  // Grow to m >= size() vertices, preserving existing entries; new cells
  // (including new diagonal slots) start kUnreachable.
  void grow(std::size_t m);

  bool operator==(const DistanceMatrix&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<double> cells_;
};

// All-pairs distance matrix, indexed (src, dst).
DistanceMatrix all_pairs_distances(const Network& net);

}  // namespace manytiers::topology
