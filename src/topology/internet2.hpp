// The Internet2 (Abilene) research backbone, embedded.
//
// Eleven PoPs with real city coordinates and the classic Abilene link map.
// This is the topology substrate for the paper's third dataset (§4.1.1).
#pragma once

#include "topology/graph.hpp"

namespace manytiers::topology {

// Build the 11-PoP Abilene/Internet2 backbone. PoP names match entries in
// geo::world_cities() ("Seattle", "Sunnyvale", ..., "New York").
Network internet2_network();

}  // namespace manytiers::topology
