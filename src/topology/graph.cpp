#include "topology/graph.hpp"

#include <cmath>
#include <stdexcept>

namespace manytiers::topology {

PopId Network::add_pop(std::string_view name, geo::GeoPoint location) {
  geo::validate(location);
  if (find_pop(name)) {
    throw std::invalid_argument("Network::add_pop: duplicate PoP name '" +
                                std::string(name) + "'");
  }
  pops_.push_back(Pop{std::string(name), location});
  adjacency_.emplace_back();
  return pops_.size() - 1;
}

void Network::add_link(PopId a, PopId b, std::optional<double> length_miles,
                       double capacity_gbps) {
  if (a >= pops_.size() || b >= pops_.size()) {
    throw std::out_of_range("Network::add_link: bad PoP id");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self link");
  if (has_link(a, b)) {
    throw std::invalid_argument("Network::add_link: duplicate link");
  }
  const double length = length_miles.value_or(
      geo::haversine_miles(pops_[a].location, pops_[b].location));
  // The negated comparisons catch NaN too: a NaN length would silently
  // poison every shortest-path distance downstream.
  if (!(length >= 0.0) || !std::isfinite(length)) {
    throw std::invalid_argument(
        "Network::add_link: length must be finite and >= 0");
  }
  if (!(capacity_gbps > 0.0) || !std::isfinite(capacity_gbps)) {
    throw std::invalid_argument(
        "Network::add_link: capacity must be finite and > 0");
  }
  links_.push_back(Link{a, b, length, capacity_gbps});
  adjacency_[a].push_back(Edge{b, length});
  adjacency_[b].push_back(Edge{a, length});
}

const Pop& Network::pop(PopId id) const {
  if (id >= pops_.size()) throw std::out_of_range("Network::pop: bad id");
  return pops_[id];
}

std::optional<PopId> Network::find_pop(std::string_view name) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].name == name) return i;
  }
  return std::nullopt;
}

const std::vector<Network::Edge>& Network::neighbors(PopId id) const {
  if (id >= adjacency_.size()) {
    throw std::out_of_range("Network::neighbors: bad id");
  }
  return adjacency_[id];
}

bool Network::has_link(PopId a, PopId b) const {
  if (a >= adjacency_.size() || b >= adjacency_.size()) {
    throw std::out_of_range("Network::has_link: bad id");
  }
  for (const auto& e : adjacency_[a]) {
    if (e.to == b) return true;
  }
  return false;
}

}  // namespace manytiers::topology
