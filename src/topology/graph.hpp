// Backbone topology: points of presence connected by physical links.
//
// Used to compute the distance a flow travels inside a network when that
// distance is the sum of traversed link lengths (the paper's Internet2
// heuristic, §4.1.1). Link lengths default to the great-circle distance
// between PoP coordinates.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"

namespace manytiers::topology {

using PopId = std::size_t;

struct Pop {
  std::string name;
  geo::GeoPoint location;
};

struct Link {
  PopId a = 0;
  PopId b = 0;
  double length_miles = 0.0;
  double capacity_gbps = 0.0;  // informational; not used by the cost models
};

class Network {
 public:
  explicit Network(std::string name = "network") : name_(std::move(name)) {}

  // Returns the new PoP's id. Names must be unique.
  PopId add_pop(std::string_view name, geo::GeoPoint location);

  // Add an undirected link; length defaults to the great-circle distance
  // between the endpoints. Self-links and duplicate links are rejected.
  void add_link(PopId a, PopId b,
                std::optional<double> length_miles = std::nullopt,
                double capacity_gbps = 10.0);

  std::size_t pop_count() const { return pops_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const Pop& pop(PopId id) const;
  const std::vector<Pop>& pops() const { return pops_; }
  const std::vector<Link>& links() const { return links_; }
  const std::string& name() const { return name_; }

  std::optional<PopId> find_pop(std::string_view name) const;

  // Neighbors of `id` as (neighbor, link length) pairs.
  struct Edge {
    PopId to;
    double length_miles;
  };
  const std::vector<Edge>& neighbors(PopId id) const;

  // The full adjacency list, one entry per PoP. Routing kernels iterate
  // this directly (see topology::shortest_paths_into).
  const std::vector<std::vector<Edge>>& adjacency() const {
    return adjacency_;
  }

  bool has_link(PopId a, PopId b) const;

 private:
  std::string name_;
  std::vector<Pop> pops_;
  std::vector<Link> links_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace manytiers::topology
