#include "topology/internet2.hpp"

#include <array>
#include <stdexcept>
#include <string_view>

#include "geo/cities.hpp"

namespace manytiers::topology {

Network internet2_network() {
  constexpr std::array<std::string_view, 11> kPops{
      "Seattle",      "Sunnyvale", "Los Angeles", "Denver",
      "Kansas City",  "Houston",   "Chicago",     "Indianapolis",
      "Atlanta",      "Washington", "New York",
  };
  // The Abilene backbone link map.
  constexpr std::array<std::pair<std::string_view, std::string_view>, 14>
      kLinks{{
          {"Seattle", "Sunnyvale"},
          {"Seattle", "Denver"},
          {"Sunnyvale", "Los Angeles"},
          {"Sunnyvale", "Denver"},
          {"Los Angeles", "Houston"},
          {"Denver", "Kansas City"},
          {"Kansas City", "Houston"},
          {"Kansas City", "Indianapolis"},
          {"Houston", "Atlanta"},
          {"Indianapolis", "Chicago"},
          {"Indianapolis", "Atlanta"},
          {"Chicago", "New York"},
          {"Atlanta", "Washington"},
          {"Washington", "New York"},
      }};

  Network net("Internet2");
  for (const auto name : kPops) {
    const auto city = geo::find_city(name);
    if (!city) {
      throw std::logic_error("internet2_network: city database is missing '" +
                             std::string(name) + "'");
    }
    net.add_pop(name, geo::world_cities()[*city].location);
  }
  for (const auto& [a, b] : kLinks) {
    net.add_link(*net.find_pop(a), *net.find_pop(b));
  }
  return net;
}

}  // namespace manytiers::topology
