// Link utilization: load a traffic matrix onto a backbone.
//
// Routes every (src, dst, Mbps) demand along its shortest path and
// accumulates per-link load — the capacity-planning view a transit ISP
// needs when a pricing change shifts traffic (e.g. the paper's §5.1
// cold-potato customers pulling traffic deeper into their own backbone).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topology/dijkstra.hpp"
#include "topology/graph.hpp"

namespace manytiers::topology {

struct TrafficDemand {
  PopId src = 0;
  PopId dst = 0;
  double mbps = 0.0;
};

struct LinkLoad {
  std::size_t link_index = 0;  // into Network::links()
  double mbps = 0.0;
  double utilization = 0.0;  // mbps / capacity
};

struct UtilizationReport {
  std::vector<LinkLoad> links;      // one entry per network link
  double max_utilization = 0.0;
  std::size_t busiest_link = 0;     // index into links
  double total_demand_mbps = 0.0;
  double total_carried_mbps = 0.0;  // demand x hops, summed over links
  std::size_t unroutable_demands = 0;
};

// Route all demands over shortest paths and report per-link load.
// Demands between disconnected PoPs are counted, not routed.
UtilizationReport load_network(const Network& net,
                               std::span<const TrafficDemand> demands);

}  // namespace manytiers::topology
