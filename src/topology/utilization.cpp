#include "topology/utilization.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace manytiers::topology {

UtilizationReport load_network(const Network& net,
                               std::span<const TrafficDemand> demands) {
  if (net.pop_count() == 0) {
    throw std::invalid_argument("load_network: empty network");
  }
  // Link endpoints -> index, with canonical (low, high) ordering.
  std::map<std::pair<PopId, PopId>, std::size_t> link_index;
  for (std::size_t i = 0; i < net.links().size(); ++i) {
    const auto& link = net.links()[i];
    link_index[{std::min(link.a, link.b), std::max(link.a, link.b)}] = i;
  }
  UtilizationReport report;
  report.links.resize(net.links().size());
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    report.links[i].link_index = i;
  }
  // Group demands by source so each source's Dijkstra runs once.
  std::map<PopId, std::vector<const TrafficDemand*>> by_src;
  for (const auto& d : demands) {
    if (d.src >= net.pop_count() || d.dst >= net.pop_count()) {
      throw std::invalid_argument("load_network: demand references bad PoP");
    }
    if (!(d.mbps > 0.0)) {
      throw std::invalid_argument("load_network: demand must be > 0");
    }
    report.total_demand_mbps += d.mbps;
    by_src[d.src].push_back(&d);
  }
  for (const auto& [src, group] : by_src) {
    const auto sp = shortest_paths(net, src);
    for (const TrafficDemand* d : group) {
      if (sp.distance_miles[d->dst] == kUnreachable) {
        ++report.unroutable_demands;
        continue;
      }
      const auto path = sp.path_to(d->dst);
      for (std::size_t hop = 1; hop < path.size(); ++hop) {
        const auto key = std::pair{std::min(path[hop - 1], path[hop]),
                                   std::max(path[hop - 1], path[hop])};
        auto& load = report.links[link_index.at(key)];
        load.mbps += d->mbps;
        report.total_carried_mbps += d->mbps;
      }
    }
  }
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    auto& load = report.links[i];
    load.utilization =
        load.mbps / (net.links()[i].capacity_gbps * 1000.0);
    if (load.utilization > report.max_utilization) {
      report.max_utilization = load.utilization;
      report.busiest_link = i;
    }
  }
  return report;
}

}  // namespace manytiers::topology
