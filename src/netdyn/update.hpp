// Topology update model for the dynamic-network subsystem.
//
// A NetworkUpdate is one structural event on a backbone: a link reweigh,
// a link failure or restoration, or a PoP addition or removal. Updates
// name PoPs by their (unique, alive) names rather than ids, so a
// serialized sequence stays meaningful across processes — the serve
// daemon's reload path ships batches as text.
//
// Wire format: one op per ';', fields per op separated by ',' (PoP names
// contain spaces — "New York" — so whitespace cannot delimit). Fields
// are trimmed of surrounding whitespace.
//
//   w,A,B,LEN          reweigh the existing link A-B to LEN miles
//   down,A,B           remove the existing link A-B
//   up,A,B[,LEN[,CAP]] add the link A-B (default length: great-circle,
//                      default capacity: 10 Gbps)
//   add,NAME,LAT,LON   add PoP NAME at (LAT, LON)
//   rm,NAME            remove PoP NAME and every incident link
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"

namespace manytiers::netdyn {

struct NetworkUpdate {
  enum class Kind { LinkWeight, LinkDown, LinkUp, PopAdd, PopRemove };

  Kind kind = Kind::LinkWeight;
  // Link endpoints (LinkWeight / LinkDown / LinkUp), by PoP name.
  std::string a;
  std::string b;
  // PoP name (PopAdd / PopRemove).
  std::string name;
  // New length for LinkWeight; length for LinkUp when >= 0, negative
  // meaning "use the great-circle distance between the endpoints".
  double length_miles = -1.0;
  double capacity_gbps = 10.0;
  geo::GeoPoint location;  // PopAdd only

  bool operator==(const NetworkUpdate&) const = default;
};

std::string_view to_string(NetworkUpdate::Kind kind);

// One-op wire form ("down,Denver,Kansas City").
std::string serialize(const NetworkUpdate& update);
// Whole-batch wire form, ops joined with ';'.
std::string serialize(std::span<const NetworkUpdate> updates);

// Parse the wire format; empty ops (trailing ';', blank input) are
// skipped. Throws std::invalid_argument naming the offending op on
// malformed input. Name resolution against a concrete network happens at
// apply time, not parse time.
std::vector<NetworkUpdate> parse_updates(std::string_view text);

}  // namespace manytiers::netdyn
