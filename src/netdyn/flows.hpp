// Delta propagation, layer 1: from changed distance-matrix cells to
// re-costed flows.
//
// A topology-bound flow set remembers which (src, dst) PoP pair each flow
// rides and the frozen epoch-0 moment-calibration transform
// (workload::TopologyBinding). Re-costing a flow is then a pure function
// of the current distance matrix: calibrated = transform(raw), with a
// fixed finite penalty distance substituted when the pair became
// unroutable. Because generation applied the exact same pow-then-scale
// operations, a flow whose raw distance is unchanged re-costs to the
// identical bits — so updating only the flows named by a DistanceDelta
// equals a full re-cost of every flow, byte for byte.
//
// The transform is deliberately frozen rather than refit: refitting the
// CV-matching power against post-update distances would reprice every
// flow after any change, which is both economically wrong (the tariff was
// calibrated when the contract was struck) and the end of incrementality.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netdyn/dynamic_network.hpp"
#include "topology/dijkstra.hpp"
#include "workload/flowset.hpp"
#include "workload/generators.hpp"

namespace manytiers::netdyn {

class FlowRecoster {
 public:
  explicit FlowRecoster(workload::TopologyBinding binding);

  const workload::TopologyBinding& binding() const { return binding_; }

  // The calibrated distance for a raw backbone distance (kUnreachable
  // maps to the binding's penalty distance first).
  double calibrated_distance(double raw_miles) const;

  // Update exactly the flows riding a pair named in `delta`, against the
  // current matrix. Returns the number of flows whose stored distance
  // actually changed (bumps the netdyn.recosted_flows counter by it).
  std::size_t recost(workload::FlowSet& flows, const DistanceDelta& delta,
                     const topology::DistanceMatrix& dist) const;

  // Reference path: recompute every flow's distance from the matrix.
  // Returns the number of flows whose distance changed.
  std::size_t recost_all(workload::FlowSet& flows,
                         const topology::DistanceMatrix& dist) const;

 private:
  workload::TopologyBinding binding_;
  // (src << 32 | dst) -> indices of the flows riding that pair.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_pair_;
};

}  // namespace manytiers::netdyn
