#include "netdyn/update.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace manytiers::netdyn {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const auto pos = s.find(sep);
    out.push_back(trim(s.substr(0, pos)));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

double parse_double(std::string_view field, std::string_view op) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    throw std::invalid_argument("parse_updates: bad number '" +
                                std::string(field) + "' in op '" +
                                std::string(op) + "'");
  }
  return value;
}

[[noreturn]] void bad_op(std::string_view op, const char* why) {
  throw std::invalid_argument("parse_updates: " + std::string(why) +
                              " in op '" + std::string(op) + "'");
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string_view to_string(NetworkUpdate::Kind kind) {
  switch (kind) {
    case NetworkUpdate::Kind::LinkWeight: return "w";
    case NetworkUpdate::Kind::LinkDown: return "down";
    case NetworkUpdate::Kind::LinkUp: return "up";
    case NetworkUpdate::Kind::PopAdd: return "add";
    case NetworkUpdate::Kind::PopRemove: return "rm";
  }
  throw std::invalid_argument("unknown update kind");
}

std::string serialize(const NetworkUpdate& u) {
  std::string out(to_string(u.kind));
  switch (u.kind) {
    case NetworkUpdate::Kind::LinkWeight:
      out += "," + u.a + "," + u.b + "," + format_double(u.length_miles);
      break;
    case NetworkUpdate::Kind::LinkDown:
      out += "," + u.a + "," + u.b;
      break;
    case NetworkUpdate::Kind::LinkUp:
      out += "," + u.a + "," + u.b;
      if (u.length_miles >= 0.0) {
        out += "," + format_double(u.length_miles) + "," +
               format_double(u.capacity_gbps);
      }
      break;
    case NetworkUpdate::Kind::PopAdd:
      out += "," + u.name + "," + format_double(u.location.lat_deg) + "," +
             format_double(u.location.lon_deg);
      break;
    case NetworkUpdate::Kind::PopRemove:
      out += "," + u.name;
      break;
  }
  return out;
}

std::string serialize(std::span<const NetworkUpdate> updates) {
  std::string out;
  for (const auto& u : updates) {
    if (!out.empty()) out += ";";
    out += serialize(u);
  }
  return out;
}

std::vector<NetworkUpdate> parse_updates(std::string_view text) {
  std::vector<NetworkUpdate> out;
  for (const auto op : split(text, ';')) {
    if (op.empty()) continue;
    const auto fields = split(op, ',');
    const auto verb = fields[0];
    NetworkUpdate u;
    if (verb == "w") {
      if (fields.size() != 4) bad_op(op, "'w' needs 3 fields (A,B,LEN)");
      u.kind = NetworkUpdate::Kind::LinkWeight;
      u.a = fields[1];
      u.b = fields[2];
      u.length_miles = parse_double(fields[3], op);
    } else if (verb == "down") {
      if (fields.size() != 3) bad_op(op, "'down' needs 2 fields (A,B)");
      u.kind = NetworkUpdate::Kind::LinkDown;
      u.a = fields[1];
      u.b = fields[2];
    } else if (verb == "up") {
      if (fields.size() < 3 || fields.size() > 5) {
        bad_op(op, "'up' needs 2-4 fields (A,B[,LEN[,CAP]])");
      }
      u.kind = NetworkUpdate::Kind::LinkUp;
      u.a = fields[1];
      u.b = fields[2];
      if (fields.size() >= 4) u.length_miles = parse_double(fields[3], op);
      if (fields.size() == 5) u.capacity_gbps = parse_double(fields[4], op);
    } else if (verb == "add") {
      if (fields.size() != 4) bad_op(op, "'add' needs 3 fields (NAME,LAT,LON)");
      u.kind = NetworkUpdate::Kind::PopAdd;
      u.name = fields[1];
      u.location.lat_deg = parse_double(fields[2], op);
      u.location.lon_deg = parse_double(fields[3], op);
    } else if (verb == "rm") {
      if (fields.size() != 2) bad_op(op, "'rm' needs 1 field (NAME)");
      u.kind = NetworkUpdate::Kind::PopRemove;
      u.name = fields[1];
    } else {
      bad_op(op, "unknown verb");
    }
    if ((u.kind == NetworkUpdate::Kind::LinkWeight ||
         u.kind == NetworkUpdate::Kind::LinkUp ||
         u.kind == NetworkUpdate::Kind::LinkDown) &&
        (u.a.empty() || u.b.empty())) {
      bad_op(op, "empty endpoint name");
    }
    if ((u.kind == NetworkUpdate::Kind::PopAdd ||
         u.kind == NetworkUpdate::Kind::PopRemove) &&
        u.name.empty()) {
      bad_op(op, "empty PoP name");
    }
    out.push_back(std::move(u));
  }
  return out;
}

}  // namespace manytiers::netdyn
