#include "netdyn/flows.hpp"

#include <stdexcept>

#include "obs/registry.hpp"

namespace manytiers::netdyn {

namespace {

std::uint64_t pair_key(topology::PopId src, topology::PopId dst) {
  return (std::uint64_t(src) << 32) | std::uint64_t(dst);
}

obs::Counter& recosted_counter() {
  static obs::Counter& counter =
      obs::Registry::instance().counter("netdyn.recosted_flows");
  return counter;
}

}  // namespace

FlowRecoster::FlowRecoster(workload::TopologyBinding binding)
    : binding_(std::move(binding)) {
  if (!(binding_.unreachable_raw_miles > 0.0)) {
    throw std::invalid_argument(
        "FlowRecoster: binding needs a positive unreachable penalty");
  }
  for (std::size_t i = 0; i < binding_.pairs.size(); ++i) {
    const auto [src, dst] = binding_.pairs[i];
    if (src >= (std::uint64_t(1) << 32) || dst >= (std::uint64_t(1) << 32)) {
      throw std::invalid_argument("FlowRecoster: PoP id out of range");
    }
    by_pair_[pair_key(src, dst)].push_back(i);
  }
}

double FlowRecoster::calibrated_distance(double raw_miles) const {
  if (raw_miles == topology::kUnreachable) {
    raw_miles = binding_.unreachable_raw_miles;
  }
  return binding_.distance.apply(raw_miles);
}

std::size_t FlowRecoster::recost(workload::FlowSet& flows,
                                 const DistanceDelta& delta,
                                 const topology::DistanceMatrix& dist) const {
  if (flows.size() != binding_.pairs.size()) {
    throw std::invalid_argument("FlowRecoster::recost: flow count mismatch");
  }
  std::size_t changed = 0;
  for (const auto& [src, dst] : delta.changed) {
    const auto it = by_pair_.find(pair_key(src, dst));
    if (it == by_pair_.end()) continue;
    const double calibrated = calibrated_distance(dist(src, dst));
    for (const std::size_t i : it->second) {
      if (flows[i].distance_miles != calibrated) {
        flows.set_distance(i, calibrated);
        ++changed;
      }
    }
  }
  recosted_counter().add(changed);
  return changed;
}

std::size_t FlowRecoster::recost_all(workload::FlowSet& flows,
                                     const topology::DistanceMatrix& dist)
    const {
  if (flows.size() != binding_.pairs.size()) {
    throw std::invalid_argument(
        "FlowRecoster::recost_all: flow count mismatch");
  }
  std::size_t changed = 0;
  for (std::size_t i = 0; i < binding_.pairs.size(); ++i) {
    const auto [src, dst] = binding_.pairs[i];
    const double calibrated = calibrated_distance(dist(src, dst));
    if (flows[i].distance_miles != calibrated) {
      flows.set_distance(i, calibrated);
      ++changed;
    }
  }
  return changed;
}

}  // namespace manytiers::netdyn
