#include "netdyn/testbed.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "geo/cities.hpp"
#include "util/rng.hpp"

namespace manytiers::netdyn {

namespace {

using topology::PopId;

std::string pop_name(std::size_t i) { return "P" + std::to_string(i); }

}  // namespace

topology::Network synthetic_backbone(const BackboneOptions& options) {
  if (options.n_pops < 3) {
    throw std::invalid_argument("synthetic_backbone: need at least 3 PoPs");
  }
  util::Rng rng(options.seed);
  topology::Network net("synthetic");
  if (options.city_names) {
    const auto cities = geo::world_cities();
    if (options.n_pops > cities.size()) {
      throw std::invalid_argument(
          "synthetic_backbone: city_names caps n_pops at the city database "
          "size");
    }
    for (std::size_t i = 0; i < options.n_pops; ++i) {
      net.add_pop(cities[i].name, cities[i].location);
    }
  } else {
    for (std::size_t i = 0; i < options.n_pops; ++i) {
      net.add_pop(pop_name(i),
                  {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)});
    }
  }
  const std::size_t n = options.n_pops;
  for (std::size_t i = 0; i < n; ++i) {
    net.add_link(i, (i + 1) % n);  // great-circle length
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < options.extra_links && attempts < options.extra_links * 20) {
    ++attempts;
    const PopId a = rng.index(n);
    const PopId b = rng.index(n);
    if (a == b || net.has_link(a, b)) continue;
    net.add_link(a, b);
    ++added;
  }
  return net;
}

std::vector<std::vector<NetworkUpdate>> generate_update_sequence(
    const topology::Network& base, std::uint64_t seed,
    const UpdateSequenceOptions& options) {
  util::Rng rng(seed);

  // Structural simulation of the evolving network, so every drawn op is
  // valid when applied in order.
  struct SimPop {
    std::string name;
    geo::GeoPoint location;
    bool alive = true;
  };
  std::vector<SimPop> pops;
  for (const auto& p : base.pops()) pops.push_back({p.name, p.location, true});
  std::map<std::pair<PopId, PopId>, double> links;
  for (const auto& l : base.links()) {
    const auto key = l.a < l.b ? std::make_pair(l.a, l.b)
                               : std::make_pair(l.b, l.a);
    links[key] = l.length_miles;
  }
  std::size_t next_added = 0;

  const auto alive_ids = [&] {
    std::vector<PopId> ids;
    for (PopId i = 0; i < pops.size(); ++i) {
      if (pops[i].alive) ids.push_back(i);
    }
    return ids;
  };
  const auto random_link = [&] {
    auto it = links.begin();
    std::advance(it, rng.index(links.size()));
    return it;
  };

  std::vector<std::vector<NetworkUpdate>> batches;
  batches.reserve(options.n_batches);
  for (std::size_t b = 0; b < options.n_batches; ++b) {
    std::vector<NetworkUpdate> batch;
    for (std::size_t k = 0; k < options.batch_size; ++k) {
      const double roll =
          options.structural ? rng.uniform(0.0, 1.0) : 0.0;
      NetworkUpdate u;
      if (roll < 0.55) {
        // Reweigh an existing link by a factor in [0.5, 2).
        if (links.empty()) continue;
        const auto it = random_link();
        u.kind = NetworkUpdate::Kind::LinkWeight;
        u.a = pops[it->first.first].name;
        u.b = pops[it->first.second].name;
        u.length_miles = it->second * rng.uniform(0.5, 2.0);
        it->second = u.length_miles;
      } else if (roll < 0.70) {
        // Fail a link (partitions allowed).
        if (links.size() < 2) continue;
        const auto it = random_link();
        u.kind = NetworkUpdate::Kind::LinkDown;
        u.a = pops[it->first.first].name;
        u.b = pops[it->first.second].name;
        links.erase(it);
      } else if (roll < 0.85) {
        // Bring up an absent link between alive PoPs.
        const auto ids = alive_ids();
        bool placed = false;
        for (int tries = 0; tries < 16 && !placed; ++tries) {
          const PopId a = ids[rng.index(ids.size())];
          const PopId bb = ids[rng.index(ids.size())];
          if (a == bb) continue;
          const auto key =
              a < bb ? std::make_pair(a, bb) : std::make_pair(bb, a);
          if (links.contains(key)) continue;
          u.kind = NetworkUpdate::Kind::LinkUp;
          u.a = pops[a].name;
          u.b = pops[bb].name;
          u.length_miles = rng.uniform(50.0, 1500.0);
          u.capacity_gbps = 10.0;
          links[key] = u.length_miles;
          placed = true;
        }
        if (!placed) continue;
      } else if (roll < 0.93) {
        // Add a PoP and wire it to one alive neighbor.
        const auto ids = alive_ids();
        u.kind = NetworkUpdate::Kind::PopAdd;
        u.name = "Dyn" + std::to_string(next_added++);
        u.location = {rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)};
        pops.push_back({u.name, u.location, true});
        batch.push_back(u);
        const PopId fresh = pops.size() - 1;
        const PopId anchor = ids[rng.index(ids.size())];
        NetworkUpdate wire;
        wire.kind = NetworkUpdate::Kind::LinkUp;
        wire.a = u.name;
        wire.b = pops[anchor].name;
        wire.length_miles = rng.uniform(50.0, 1500.0);
        links[anchor < fresh ? std::make_pair(anchor, fresh)
                             : std::make_pair(fresh, anchor)] =
            wire.length_miles;
        batch.push_back(wire);
        continue;  // both ops already pushed
      } else {
        // Remove a PoP (keep a core of four alive).
        const auto ids = alive_ids();
        if (ids.size() <= 4) continue;
        const PopId victim = ids[rng.index(ids.size())];
        u.kind = NetworkUpdate::Kind::PopRemove;
        u.name = pops[victim].name;
        pops[victim].alive = false;
        for (auto it = links.begin(); it != links.end();) {
          if (it->first.first == victim || it->first.second == victim) {
            it = links.erase(it);
          } else {
            ++it;
          }
        }
      }
      batch.push_back(std::move(u));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace manytiers::netdyn
