// Delta propagation, layers 2-3: from re-costed flows to recalibrated
// markets and re-evaluated grid cells.
//
// A GridSession owns an ExperimentGrid evaluated against a live
// DynamicNetwork. Network-backed datasets (Internet2) generate once over
// the epoch-0 backbone with their topology binding captured; applying an
// update batch re-costs only the flows the DistanceDelta names, marks the
// datasets that repriced dirty, and re-runs run_grid for exactly the
// dirty datasets' cell blocks (cells enumerate dataset-major, so a dirty
// dataset is one contiguous splice). Markets of clean cells are never
// recalibrated — their epoch-tagged profit caches stay primed.
//
// The maintained report is byte-identical (modulo timing fields) to
// scratch_report(), which rebuilds everything the expensive way: scratch
// all-pairs Dijkstra, full re-cost of every bound flow, full-grid
// run_grid. That equivalence holds after every batch, for either SSSP
// kernel and any thread count, and is what the netdyn ctest suite pins.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "driver/runner.hpp"
#include "netdyn/dynamic_network.hpp"
#include "netdyn/flows.hpp"
#include "topology/graph.hpp"

namespace manytiers::netdyn {

struct GridSessionOptions {
  std::size_t threads = 0;  // forwarded to run_grid
  SsspKernelOptions kernel = sssp_kernel_options_from_env();
};

class GridSession {
 public:
  // Evaluates the grid up front; Internet2 datasets bind to `backbone`
  // (pass topology::internet2_network() to reproduce the static pipeline
  // bit-for-bit at epoch 0).
  GridSession(driver::ExperimentGrid grid, const topology::Network& backbone,
              GridSessionOptions options = {});

  const driver::BatchReport& report() const { return report_; }
  const driver::ExperimentGrid& grid() const { return grid_; }
  const DynamicNetwork& network() const { return net_; }
  std::uint64_t epoch() const { return net_.epoch(); }
  const std::vector<workload::FlowSet>& flows() const { return flows_; }

  struct ApplyStats {
    DistanceDelta delta;
    std::size_t recosted_flows = 0;
    std::size_t dirty_datasets = 0;
    std::size_t dirty_cells = 0;
    std::size_t dirty_markets = 0;  // (demand, cost, point) calibrations rerun
  };

  // Apply one update batch end to end: advance the network, re-cost
  // affected flows, re-evaluate dirty cell blocks in place.
  ApplyStats apply(std::span<const NetworkUpdate> batch);
  ApplyStats apply(const NetworkUpdate& update) {
    return apply(std::span<const NetworkUpdate>(&update, 1));
  }

  // The recompute-everything reference for the current epoch.
  driver::BatchReport scratch_report() const;

 private:
  driver::ExperimentGrid grid_;
  GridSessionOptions options_;
  DynamicNetwork net_;
  std::vector<workload::FlowSet> flows_;  // one per grid dataset, live
  // Engaged for network-backed datasets only (index-aligned with flows_).
  std::vector<std::optional<FlowRecoster>> recosters_;
  driver::BatchReport report_;
};

}  // namespace manytiers::netdyn
