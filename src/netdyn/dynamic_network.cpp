#include "netdyn/dynamic_network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace manytiers::netdyn {

namespace {

using topology::kUnreachable;
using topology::PopId;

[[noreturn]] void bad_update(const NetworkUpdate& u, const std::string& why) {
  throw std::invalid_argument("DynamicNetwork::apply: " + why + " (op '" +
                              serialize(u) + "')");
}

}  // namespace

std::string_view to_string(SsspKernel kernel) {
  switch (kernel) {
    case SsspKernel::kNaive: return "naive";
    case SsspKernel::kIncremental: return "incremental";
  }
  throw std::invalid_argument("unknown SSSP kernel");
}

SsspKernelOptions sssp_kernel_options_from_env() {
  SsspKernelOptions opt;
  if (const char* env = std::getenv("MANYTIERS_SSSP_KERNEL")) {
    if (std::strcmp(env, "naive") == 0) {
      opt.kernel = SsspKernel::kNaive;
    } else if (std::strcmp(env, "incremental") == 0) {
      opt.kernel = SsspKernel::kIncremental;
    }
    // "auto", empty, or unrecognized: keep the default (incremental).
  }
  return opt;
}

DynamicNetwork::DynamicNetwork(const topology::Network& base,
                               SsspKernelOptions options)
    : options_(options), pops_(base.pops()) {
  alive_.assign(pops_.size(), 1);
  for (const auto& l : base.links()) {
    const LinkKey key = l.a < l.b ? LinkKey{l.a, l.b} : LinkKey{l.b, l.a};
    links_[key] = LinkState{l.length_miles, l.capacity_gbps};
  }
  rebuild_adjacency();
  const std::size_t n = pops_.size();
  dist_ = topology::DistanceMatrix(n);
  pred_.assign(n, std::vector<PopId>(n, 0));
  for (PopId s = 0; s < n; ++s) {
    topology::shortest_paths_into(adjacency_, s, dist_.row(s), pred_[s]);
  }
}

std::size_t DynamicNetwork::alive_count() const {
  return std::size_t(std::count(alive_.begin(), alive_.end(), char(1)));
}

bool DynamicNetwork::alive(PopId id) const {
  return id < alive_.size() && alive_[id];
}

const topology::Pop& DynamicNetwork::pop(PopId id) const {
  if (id >= pops_.size()) {
    throw std::out_of_range("DynamicNetwork::pop: bad id");
  }
  return pops_[id];
}

std::optional<PopId> DynamicNetwork::find_pop(std::string_view name) const {
  for (PopId i = 0; i < pops_.size(); ++i) {
    if (alive_[i] && pops_[i].name == name) return i;
  }
  return std::nullopt;
}

bool DynamicNetwork::has_link(PopId a, PopId b) const {
  const LinkKey key = a < b ? LinkKey{a, b} : LinkKey{b, a};
  return links_.contains(key);
}

void DynamicNetwork::rebuild_adjacency() {
  adjacency_.assign(pops_.size(), {});
  for (const auto& [key, state] : links_) {
    adjacency_[key.first].push_back({key.second, state.length_miles});
    adjacency_[key.second].push_back({key.first, state.length_miles});
  }
}

topology::DistanceMatrix DynamicNetwork::scratch_distances() const {
  const std::size_t n = pops_.size();
  topology::DistanceMatrix out(n);
  std::vector<PopId> pred(n);
  for (PopId s = 0; s < n; ++s) {
    if (!alive_[s]) continue;  // tombstone row stays all-kUnreachable
    topology::shortest_paths_into(adjacency_, s, out.row(s), pred);
  }
  return out;
}

DistanceDelta DynamicNetwork::apply(std::span<const NetworkUpdate> batch) {
  obs::Registry& registry = obs::Registry::instance();
  static obs::Counter& updates_counter = registry.counter("netdyn.updates");
  static obs::Counter& batches_counter = registry.counter("netdyn.batches");
  static obs::Counter& affected_counter =
      registry.counter("netdyn.affected_vertices");
  static obs::Counter& changed_counter =
      registry.counter("netdyn.changed_pairs");
  const obs::Span span(
      "netdyn.apply",
      obs::Tracer::instance().active()
          ? "{\"updates\":" + std::to_string(batch.size()) +
                ",\"kernel\":\"" + std::string(to_string(options_.kernel)) +
                "\"}"
          : std::string());

  // Phase A: validate and apply every op on working copies, so a bad op
  // anywhere in the batch leaves the network untouched.
  auto pops = pops_;
  auto alive = alive_;
  auto links = links_;
  std::vector<char> added_flag(pops_.size(), 0);    // grows with PopAdd
  std::vector<char> removed_flag(pops_.size(), 0);  // ids tombstoned here

  const auto resolve = [&](const std::string& name,
                           const NetworkUpdate& u) -> PopId {
    for (PopId i = 0; i < pops.size(); ++i) {
      if (alive[i] && pops[i].name == name) return i;
    }
    bad_update(u, "unknown PoP '" + name + "'");
  };
  const auto key_of = [](PopId a, PopId b) {
    return a < b ? LinkKey{a, b} : LinkKey{b, a};
  };

  for (const auto& u : batch) {
    switch (u.kind) {
      case NetworkUpdate::Kind::LinkWeight: {
        const PopId a = resolve(u.a, u);
        const PopId b = resolve(u.b, u);
        if (a == b) bad_update(u, "self link");
        const auto it = links.find(key_of(a, b));
        if (it == links.end()) bad_update(u, "no such link");
        if (!(u.length_miles >= 0.0) || !std::isfinite(u.length_miles)) {
          bad_update(u, "length must be finite and >= 0");
        }
        it->second.length_miles = u.length_miles;
        break;
      }
      case NetworkUpdate::Kind::LinkDown: {
        const PopId a = resolve(u.a, u);
        const PopId b = resolve(u.b, u);
        if (links.erase(key_of(a, b)) == 0) bad_update(u, "no such link");
        break;
      }
      case NetworkUpdate::Kind::LinkUp: {
        const PopId a = resolve(u.a, u);
        const PopId b = resolve(u.b, u);
        if (a == b) bad_update(u, "self link");
        const LinkKey key = key_of(a, b);
        if (links.contains(key)) bad_update(u, "duplicate link");
        const double length =
            u.length_miles >= 0.0
                ? u.length_miles
                : geo::haversine_miles(pops[a].location, pops[b].location);
        if (!(length >= 0.0) || !std::isfinite(length)) {
          bad_update(u, "length must be finite and >= 0");
        }
        if (!(u.capacity_gbps > 0.0) || !std::isfinite(u.capacity_gbps)) {
          bad_update(u, "capacity must be finite and > 0");
        }
        links[key] = LinkState{length, u.capacity_gbps};
        break;
      }
      case NetworkUpdate::Kind::PopAdd: {
        for (PopId i = 0; i < pops.size(); ++i) {
          if (alive[i] && pops[i].name == u.name) {
            bad_update(u, "duplicate PoP name '" + u.name + "'");
          }
        }
        try {
          geo::validate(u.location);
        } catch (const std::invalid_argument& e) {
          bad_update(u, e.what());
        }
        pops.push_back(topology::Pop{u.name, u.location});
        alive.push_back(1);
        added_flag.push_back(1);
        removed_flag.push_back(0);
        break;
      }
      case NetworkUpdate::Kind::PopRemove: {
        const PopId id = resolve(u.name, u);
        for (auto it = links.begin(); it != links.end();) {
          if (it->first.first == id || it->first.second == id) {
            it = links.erase(it);
          } else {
            ++it;
          }
        }
        alive[id] = 0;
        removed_flag[id] = 1;
        break;
      }
    }
  }

  // Phase B: net edge diff of the batch, classified for the repair
  // kernel. Removals and lengthenings can only invalidate tree paths;
  // insertions and shortenings can only offer better ones.
  std::vector<EdgeChange> increases;
  std::vector<EdgeChange> decreases;
  for (const auto& [key, state] : links_) {
    const auto it = links.find(key);
    if (it == links.end()) {
      increases.push_back({key.first, key.second, kUnreachable});
    } else if (it->second.length_miles > state.length_miles) {
      increases.push_back({key.first, key.second, it->second.length_miles});
    } else if (it->second.length_miles < state.length_miles) {
      decreases.push_back({key.first, key.second, it->second.length_miles});
    }
  }
  for (const auto& [key, state] : links) {
    if (!links_.contains(key)) {
      decreases.push_back({key.first, key.second, state.length_miles});
    }
  }

  // Phase C: commit the structure.
  const std::size_t n0 = pops_.size();
  pops_ = std::move(pops);
  alive_ = std::move(alive);
  links_ = std::move(links);
  rebuild_adjacency();
  const std::size_t n1 = pops_.size();
  if (n1 > n0) {
    dist_.grow(n1);
    for (PopId s = 0; s < n0; ++s) {
      pred_[s].resize(n1);
      for (PopId v = n0; v < n1; ++v) pred_[s][v] = v;
    }
    for (PopId s = n0; s < n1; ++s) {
      pred_.emplace_back(n1);
      for (PopId v = 0; v < n1; ++v) pred_[s][v] = v;
    }
  }

  // Phase D: bring the distance matrix to the new topology's fixed point
  // and collect the exact changed-cell set, row by row in id order.
  ++epoch_;
  DistanceDelta delta;
  delta.epoch = epoch_;
  delta.pop_count = n1;
  std::vector<double> old_row(n1);
  std::size_t affected_vertices = 0;
  const auto diff_row = [&](PopId s) {
    const auto row = dist_.row(s);
    for (PopId v = 0; v < n1; ++v) {
      if (row[v] != old_row[v]) delta.changed.emplace_back(s, v);
    }
  };
  const auto snapshot_row = [&](PopId s) {
    const auto row = dist_.row(s);
    std::copy(row.begin(), row.end(), old_row.begin());
  };
  const auto tombstone_row = [&](PopId s) {
    auto row = dist_.row(s);
    std::fill(row.begin(), row.end(), kUnreachable);
    for (PopId v = 0; v < n1; ++v) pred_[s][v] = v;
  };

  for (PopId s = 0; s < n1; ++s) {
    if (!alive_[s]) {
      if (s < removed_flag.size() && removed_flag[s]) {
        snapshot_row(s);
        tombstone_row(s);
        diff_row(s);
      }
      continue;
    }
    const bool fresh_source = s < added_flag.size() && added_flag[s];
    if (options_.kernel == SsspKernel::kNaive || fresh_source) {
      snapshot_row(s);
      topology::shortest_paths_into(adjacency_, s, dist_.row(s), pred_[s]);
      diff_row(s);
      affected_vertices += n1;
      continue;
    }
    if (!row_affected(s, increases, decreases)) continue;
    snapshot_row(s);
    repair_row(s, increases, decreases);
    diff_row(s);
    affected_vertices += cone_.size();
  }

  updates_counter.add(batch.size());
  batches_counter.add();
  affected_counter.add(affected_vertices);
  changed_counter.add(delta.changed.size());
  return delta;
}

bool DynamicNetwork::row_affected(PopId source,
                                  std::span<const EdgeChange> increases,
                                  std::span<const EdgeChange> decreases) const {
  const auto& p = pred_[source];
  const auto row = dist_.row(source);
  for (const auto& e : increases) {
    // Only a tree edge can invalidate: every other vertex keeps a
    // shortest path that avoids the change.
    if (e.a != source && row[e.a] != kUnreachable && p[e.a] == e.b) return true;
    if (e.b != source && row[e.b] != kUnreachable && p[e.b] == e.a) return true;
  }
  for (const auto& e : decreases) {
    if (row[e.a] != kUnreachable && row[e.a] + e.length_miles < row[e.b]) {
      return true;
    }
    if (row[e.b] != kUnreachable && row[e.b] + e.length_miles < row[e.a]) {
      return true;
    }
  }
  return false;
}

void DynamicNetwork::repair_row(PopId source,
                                std::span<const EdgeChange> increases,
                                std::span<const EdgeChange> decreases) {
  const std::size_t n = pops_.size();
  auto d = dist_.row(source);
  auto& p = pred_[source];

  // Invalidation cone: pred-tree descendants of every vertex whose tree
  // edge lengthened or vanished.
  if (children_.size() < n) children_.resize(n);
  for (std::size_t v = 0; v < n; ++v) children_[v].clear();
  for (PopId v = 0; v < n; ++v) {
    if (v == source || d[v] == kUnreachable || p[v] == v) continue;
    children_[p[v]].push_back(v);
  }
  in_cone_.assign(n, 0);
  cone_.clear();
  const auto add_root = [&](PopId v) {
    if (!in_cone_[v]) {
      in_cone_[v] = 1;
      cone_.push_back(v);
    }
  };
  for (const auto& e : increases) {
    if (e.a != source && d[e.a] != kUnreachable && p[e.a] == e.b) {
      add_root(e.a);
    }
    if (e.b != source && d[e.b] != kUnreachable && p[e.b] == e.a) {
      add_root(e.b);
    }
  }
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    for (const PopId c : children_[cone_[i]]) {
      if (!in_cone_[c]) {
        in_cone_[c] = 1;
        cone_.push_back(c);
      }
    }
  }
  for (const PopId v : cone_) {
    d[v] = kUnreachable;
    p[v] = v;
  }

  // Label-correcting Dijkstra seeded from the cone boundary and from the
  // decreased edges. Every relaxation evaluates d[u] + w exactly as the
  // from-scratch kernel does, so the fixed point it converges to carries
  // the same bits.
  using Item = std::pair<double, PopId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  for (const PopId v : cone_) {
    double best = kUnreachable;
    PopId best_pred = v;
    for (const auto& e : adjacency_[v]) {
      if (in_cone_[e.to] || d[e.to] == kUnreachable) continue;
      const double cand = d[e.to] + e.length_miles;
      if (cand < best) {
        best = cand;
        best_pred = e.to;
      }
    }
    if (best < kUnreachable) {
      d[v] = best;
      p[v] = best_pred;
      heap.push({best, v});
    }
  }
  for (const auto& e : decreases) {
    if (d[e.a] != kUnreachable) {
      const double cand = d[e.a] + e.length_miles;
      if (cand < d[e.b]) {
        d[e.b] = cand;
        p[e.b] = e.a;
        heap.push({cand, e.b});
      }
    }
    if (d[e.b] != kUnreachable) {
      const double cand = d[e.b] + e.length_miles;
      if (cand < d[e.a]) {
        d[e.a] = cand;
        p[e.a] = e.b;
        heap.push({cand, e.a});
      }
    }
  }
  while (!heap.empty()) {
    const auto [dv, v] = heap.top();
    heap.pop();
    if (dv > d[v]) continue;
    for (const auto& e : adjacency_[v]) {
      const double cand = dv + e.length_miles;
      if (cand < d[e.to]) {
        d[e.to] = cand;
        p[e.to] = v;
        heap.push({cand, e.to});
      }
    }
  }
}

}  // namespace manytiers::netdyn
