// Synthetic backbones and valid random update sequences — the generated
// inputs the netdyn tests and bench_netdyn drive the subsystem with.
#pragma once

#include <cstdint>
#include <vector>

#include "netdyn/update.hpp"
#include "topology/graph.hpp"

namespace manytiers::netdyn {

struct BackboneOptions {
  std::size_t n_pops = 64;
  // Random chords added on top of the connecting ring.
  std::size_t extra_links = 32;
  std::uint64_t seed = 1;
  // Name PoPs after real cities (required when the backbone feeds
  // generate_internet2, which resolves PoP names to city metadata).
  // Caps n_pops at the city-database size (113).
  bool city_names = false;
};

// A connected ring-plus-chords backbone with great-circle link lengths.
topology::Network synthetic_backbone(const BackboneOptions& options = {});

struct UpdateSequenceOptions {
  std::size_t n_batches = 8;
  std::size_t batch_size = 2;
  // Allow link up/down and PoP add/remove (partitions included); when
  // false the sequence is reweigh-only, which keeps the vertex set fixed
  // — what the bench's affected-fraction sweep wants.
  bool structural = true;
};

// Random update batches that are always valid against the evolving
// network: reweighs hit existing links, ups pick absent pairs, removals
// keep at least four PoPs alive. Deterministic in (base, seed, options).
std::vector<std::vector<NetworkUpdate>> generate_update_sequence(
    const topology::Network& base, std::uint64_t seed,
    const UpdateSequenceOptions& options = {});

}  // namespace manytiers::netdyn
