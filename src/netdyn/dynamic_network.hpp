// DynamicNetwork: a backbone under a stream of topology updates, with
// incrementally maintained all-pairs shortest paths.
//
// Wraps a topology::Network seed with an update log (link reweighs,
// link up/down, PoP add/remove) and a monotonically increasing topology
// epoch. Every applied batch advances the epoch by one and returns a
// DistanceDelta naming exactly the (src, dst) pairs whose shortest-path
// distance changed — the handle the re-cost, market-invalidation, and
// serve-requote layers key off.
//
// Two kernels maintain the distance matrix:
//
//  - naive: recompute every row from scratch with the static Dijkstra
//    (the reference; O(n * m log n) per batch).
//  - incremental: batched Ramalingam–Reps-style repair. Per source, edge
//    changes are classified into increases (reweigh up, link down, PoP
//    remove) and decreases (reweigh down, link up, PoP add); sources
//    whose shortest-path tree touches no changed edge are skipped in
//    O(batch). For an affected source, the invalidation cone — the
//    pred-tree descendants of vertices whose tree edge lengthened — is
//    reset to kUnreachable and repaired by a label-correcting Dijkstra
//    seeded from the cone boundary and the decreased edges.
//
// Both kernels land on the same bits: with non-negative weights the
// distance vector is the unique fixed point of d[v] = min_u(d[u] + w_uv)
// under IEEE rounding (addition is monotone, every relaxation evaluates
// the same left-to-right sum), so any repair that converges to the fixed
// point equals a from-scratch run bit-for-bit. Tree (predecessor) choice
// affects only how much work repair does, never the values.
//
// Removed PoPs are tombstones: the id survives, incident links drop, and
// the PoP's whole matrix row — including the diagonal — is pinned to
// kUnreachable by convention. Added PoPs grow the matrix; their row is
// filled by a fresh single-source run.
//
// MANYTIERS_SSSP_KERNEL=naive|incremental|auto overrides the kernel
// (auto = incremental), mirroring MANYTIERS_DP_KERNEL.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "netdyn/update.hpp"
#include "topology/dijkstra.hpp"
#include "topology/graph.hpp"

namespace manytiers::netdyn {

enum class SsspKernel { kNaive, kIncremental };

std::string_view to_string(SsspKernel kernel);

struct SsspKernelOptions {
  SsspKernel kernel = SsspKernel::kIncremental;
};

// MANYTIERS_SSSP_KERNEL: "naive" forces the reference kernel,
// "incremental" the repair kernel; "auto", empty, or unrecognized keep
// the default (incremental).
SsspKernelOptions sssp_kernel_options_from_env();

// What one applied batch changed: the exact set of ordered (src, dst)
// pairs whose distance-matrix cell holds a different value than before,
// sorted by (src, dst). Cells that exist only after a PoP addition count
// as changed when finite (their before-value is kUnreachable by
// convention).
struct DistanceDelta {
  std::uint64_t epoch = 0;      // epoch after the batch
  std::size_t pop_count = 0;    // matrix dimension after the batch
  std::vector<std::pair<topology::PopId, topology::PopId>> changed;

  bool empty() const { return changed.empty(); }
};

class DynamicNetwork {
 public:
  explicit DynamicNetwork(
      const topology::Network& base,
      SsspKernelOptions options = sssp_kernel_options_from_env());

  std::uint64_t epoch() const { return epoch_; }
  SsspKernel kernel() const { return options_.kernel; }

  // Vertex-id space size (tombstones included) — the distance matrix
  // dimension.
  std::size_t pop_count() const { return pops_.size(); }
  std::size_t alive_count() const;
  bool alive(topology::PopId id) const;
  const topology::Pop& pop(topology::PopId id) const;
  // Alive PoPs only; tombstoned names are free for re-use by PopAdd
  // (which allocates a fresh id).
  std::optional<topology::PopId> find_pop(std::string_view name) const;
  std::size_t link_count() const { return links_.size(); }
  bool has_link(topology::PopId a, topology::PopId b) const;

  // The maintained all-pairs matrix. Rows of tombstoned PoPs are all
  // kUnreachable (diagonal included).
  const topology::DistanceMatrix& distances() const { return dist_; }

  // Apply one batch atomically: names resolve against the pre-batch
  // state as each op executes in order, the epoch advances once, and the
  // delta covers the batch's net effect. Throws std::invalid_argument on
  // an invalid op (unknown name, duplicate link, reweigh of a missing
  // link, ...) leaving the network unchanged.
  DistanceDelta apply(std::span<const NetworkUpdate> batch);
  DistanceDelta apply(const NetworkUpdate& update) {
    return apply(std::span<const NetworkUpdate>(&update, 1));
  }

  // Reference check: recompute the matrix from scratch with the static
  // Dijkstra and the tombstone-row convention. Equals distances()
  // bit-for-bit after every apply, whichever kernel maintains it.
  topology::DistanceMatrix scratch_distances() const;

 private:
  struct LinkState {
    double length_miles = 0.0;
    double capacity_gbps = 0.0;
  };
  using LinkKey = std::pair<topology::PopId, topology::PopId>;  // a < b

  struct EdgeChange {
    topology::PopId a = 0;
    topology::PopId b = 0;
    double length_miles = 0.0;  // new length (decreases); unused for pure
                                // removals
  };

  void rebuild_adjacency();
  void repair_row(topology::PopId source,
                  std::span<const EdgeChange> increases,
                  std::span<const EdgeChange> decreases);
  bool row_affected(topology::PopId source,
                    std::span<const EdgeChange> increases,
                    std::span<const EdgeChange> decreases) const;

  SsspKernelOptions options_;
  std::uint64_t epoch_ = 0;
  std::vector<topology::Pop> pops_;  // tombstones keep their slot
  std::vector<char> alive_;
  std::map<LinkKey, LinkState> links_;  // alive links; ordered => the
                                        // adjacency build order (and so
                                        // the work, not the values) is
                                        // deterministic
  std::vector<std::vector<topology::Network::Edge>> adjacency_;
  topology::DistanceMatrix dist_;
  // Per-source predecessor trees (pred_[s][v] = v for source/unreachable),
  // the state incremental repair consults to find invalidation cones.
  std::vector<std::vector<topology::PopId>> pred_;

  // Repair workspace, reused across sources within a batch.
  std::vector<std::vector<topology::PopId>> children_;
  std::vector<char> in_cone_;
  std::vector<topology::PopId> cone_;
};

}  // namespace manytiers::netdyn
