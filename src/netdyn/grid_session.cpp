#include "netdyn/grid_session.hpp"

#include <string>
#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "topology/dijkstra.hpp"

namespace manytiers::netdyn {

GridSession::GridSession(driver::ExperimentGrid grid,
                         const topology::Network& backbone,
                         GridSessionOptions options)
    : grid_(std::move(grid)), options_(options), net_(backbone, options.kernel) {
  const workload::GeneratorOptions gen{.seed = grid_.base.seed,
                                       .n_flows = grid_.base.n_flows};
  flows_.reserve(grid_.datasets.size());
  recosters_.reserve(grid_.datasets.size());
  for (const auto kind : grid_.datasets) {
    if (kind == workload::DatasetKind::Internet2) {
      workload::TopologyBinding binding;
      // Epoch-0 distances equal all_pairs_distances(backbone) bit-for-bit
      // (same relaxation core), so for the Internet2 backbone these flows
      // match generate_dataset's exactly.
      flows_.push_back(
          workload::generate_internet2(gen, backbone, net_.distances(),
                                       &binding));
      recosters_.emplace_back(FlowRecoster(std::move(binding)));
    } else {
      flows_.push_back(workload::generate_dataset(kind, gen));
      recosters_.emplace_back(std::nullopt);
    }
  }
  driver::RunOptions run;
  run.threads = options_.threads;
  run.flows_override = &flows_;
  report_ = driver::run_grid(grid_, run);
}

GridSession::ApplyStats GridSession::apply(
    std::span<const NetworkUpdate> batch) {
  static obs::Counter& dirty_markets_counter =
      obs::Registry::instance().counter("netdyn.dirty_markets");
  static obs::Counter& dirty_cells_counter =
      obs::Registry::instance().counter("netdyn.dirty_cells");
  const obs::Span span(
      "netdyn.grid_session.apply",
      obs::Tracer::instance().active()
          ? "{\"updates\":" + std::to_string(batch.size()) + "}"
          : std::string());

  ApplyStats stats;
  stats.delta = net_.apply(batch);
  if (stats.delta.empty()) return stats;

  const auto& dist = net_.distances();
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (!recosters_[i]) continue;
    const std::size_t changed =
        recosters_[i]->recost(flows_[i], stats.delta, dist);
    stats.recosted_flows += changed;
    if (changed != 0) dirty.push_back(i);
  }
  if (dirty.empty()) return stats;
  stats.dirty_datasets = dirty.size();

  // Cells enumerate dataset-major, so dataset i owns the contiguous block
  // [i * block, (i + 1) * block). Re-evaluating a one-dataset sub-grid
  // yields that block's cells in the same order, computed from the same
  // (re-costed) flows run_grid would see in a full run — splicing them in
  // reproduces the full-grid report byte-for-byte, timing aside.
  const std::size_t block = grid_.demand_kinds.size() *
                            grid_.cost_kinds.size() * grid_.strategies.size();
  const std::size_t points = driver::points_per_cell(grid_);
  for (const std::size_t ds : dirty) {
    driver::ExperimentGrid sub = grid_;
    sub.datasets = {grid_.datasets[ds]};
    const std::vector<workload::FlowSet> sub_flows{flows_[ds]};
    driver::RunOptions run;
    run.threads = options_.threads;
    run.flows_override = &sub_flows;
    driver::BatchReport part = driver::run_grid(sub, run);
    for (std::size_t c = 0; c < part.cells.size(); ++c) {
      report_.cells[ds * block + c] = std::move(part.cells[c]);
    }
    stats.dirty_cells += block;
    stats.dirty_markets +=
        grid_.demand_kinds.size() * grid_.cost_kinds.size() * points;
  }
  dirty_cells_counter.add(stats.dirty_cells);
  dirty_markets_counter.add(stats.dirty_markets);
  return stats;
}

driver::BatchReport GridSession::scratch_report() const {
  // Independent reference: scratch all-pairs Dijkstra, full re-cost of
  // every bound flow, full-grid evaluation.
  const topology::DistanceMatrix dist = net_.scratch_distances();
  std::vector<workload::FlowSet> flows = flows_;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (recosters_[i]) recosters_[i]->recost_all(flows[i], dist);
  }
  driver::RunOptions run;
  run.threads = options_.threads;
  run.flows_override = &flows;
  return driver::run_grid(grid_, run);
}

}  // namespace manytiers::netdyn
