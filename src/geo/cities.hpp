// Embedded world-city database.
//
// Substitutes for the commercial GeoIP city data the paper uses: a compact
// set of real cities with coordinates, country, and continent, enough to
// classify flows as metro / national / international and to compute
// realistic great-circle distances.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "geo/coord.hpp"

namespace manytiers::geo {

enum class Continent { NorthAmerica, SouthAmerica, Europe, Asia, Africa, Oceania };

std::string_view to_string(Continent c);

struct City {
  std::string_view name;
  std::string_view country;  // ISO 3166-1 alpha-2
  Continent continent;
  GeoPoint location;
};

// The full embedded database (stable order; index is a valid city id).
std::span<const City> world_cities();

// Find a city by exact name; nullopt if absent.
std::optional<std::size_t> find_city(std::string_view name);

// All city indices on a continent / in a country.
std::vector<std::size_t> cities_in(Continent c);
std::vector<std::size_t> cities_in_country(std::string_view country);

// Great-circle distance between two cities by index.
double city_distance_miles(std::size_t a, std::size_t b);

}  // namespace manytiers::geo
