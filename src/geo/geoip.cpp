#include "geo/geoip.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "geo/trie.hpp"

namespace manytiers::geo {

namespace {

int parse_octet(std::string_view s) {
  int value = -1;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value < 0 ||
      value > 255) {
    throw std::invalid_argument("parse_ipv4: bad octet '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace

IpV4 parse_ipv4(std::string_view dotted) {
  IpV4 out = 0;
  int octets = 0;
  std::size_t pos = 0;
  while (octets < 4) {
    const std::size_t dot = dotted.find('.', pos);
    const bool last = octets == 3;
    if (last != (dot == std::string_view::npos)) {
      throw std::invalid_argument("parse_ipv4: expected 4 octets");
    }
    const std::string_view part =
        last ? dotted.substr(pos) : dotted.substr(pos, dot - pos);
    out = (out << 8) | IpV4(parse_octet(part));
    pos = dot + 1;
    ++octets;
  }
  return out;
}

std::string format_ipv4(IpV4 ip) {
  return std::to_string((ip >> 24) & 0xff) + '.' +
         std::to_string((ip >> 16) & 0xff) + '.' +
         std::to_string((ip >> 8) & 0xff) + '.' + std::to_string(ip & 0xff);
}

namespace {
IpV4 mask_for(int length) {
  if (length < 0 || length > 32) {
    throw std::invalid_argument("prefix length out of [0, 32]");
  }
  return length == 0 ? 0 : ~IpV4(0) << (32 - length);
}
}  // namespace

IpV4 Prefix::first() const { return address; }

IpV4 Prefix::last() const { return address | ~mask_for(length); }

bool Prefix::contains(IpV4 ip) const {
  return (ip & mask_for(length)) == address;
}

Prefix parse_prefix(std::string_view cidr) {
  const std::size_t slash = cidr.find('/');
  if (slash == std::string_view::npos) {
    throw std::invalid_argument("parse_prefix: missing '/'");
  }
  Prefix p;
  p.address = parse_ipv4(cidr.substr(0, slash));
  const std::string_view len = cidr.substr(slash + 1);
  const auto [ptr, ec] =
      std::from_chars(len.data(), len.data() + len.size(), p.length);
  if (ec != std::errc{} || ptr != len.data() + len.size()) {
    throw std::invalid_argument("parse_prefix: bad length");
  }
  if ((p.address & ~mask_for(p.length)) != 0) {
    throw std::invalid_argument("parse_prefix: nonzero host bits");
  }
  return p;
}

std::string format_prefix(const Prefix& p) {
  return format_ipv4(p.address) + '/' + std::to_string(p.length);
}

GeoIpDb::GeoIpDb() : trie_(std::make_unique<PrefixTrie<std::size_t>>()) {}
GeoIpDb::GeoIpDb(GeoIpDb&&) noexcept = default;
GeoIpDb& GeoIpDb::operator=(GeoIpDb&&) noexcept = default;
GeoIpDb::~GeoIpDb() = default;

void GeoIpDb::add(const Prefix& prefix, std::size_t city_id) {
  if (city_id >= world_cities().size()) {
    throw std::out_of_range("GeoIpDb::add: bad city id");
  }
  trie_->insert(prefix, city_id);  // validates host bits; replaces dupes
}

std::optional<std::size_t> GeoIpDb::lookup_city(IpV4 ip) const {
  return trie_->lookup(ip);
}

std::size_t GeoIpDb::size() const { return trie_->size(); }

const City* GeoIpDb::lookup(IpV4 ip) const {
  const auto id = lookup_city(ip);
  return id ? &world_cities()[*id] : nullptr;
}

Prefix synthetic_block(std::size_t city_id, int block, int blocks_per_city) {
  if (blocks_per_city <= 0) {
    throw std::invalid_argument("synthetic_block: blocks_per_city must be > 0");
  }
  if (block < 0 || block >= blocks_per_city) {
    throw std::out_of_range("synthetic_block: block index out of range");
  }
  // Lay city blocks out as consecutive /16s starting at 100.0.0.0; with
  // ~113 cities and a handful of blocks each this stays inside 100/8.
  const std::uint32_t index =
      std::uint32_t(city_id) * std::uint32_t(blocks_per_city) +
      std::uint32_t(block);
  Prefix p;
  p.address = (IpV4(100) << 24) | (index << 16);
  p.length = 16;
  return p;
}

GeoIpDb build_synthetic_geoip(int blocks_per_city) {
  GeoIpDb db;
  const auto cities = world_cities();
  for (std::size_t c = 0; c < cities.size(); ++c) {
    for (int b = 0; b < blocks_per_city; ++b) {
      db.add(synthetic_block(c, b, blocks_per_city), c);
    }
  }
  return db;
}

IpV4 synthetic_host(std::size_t city_id, std::uint32_t salt,
                    int blocks_per_city) {
  // splitmix-style scramble of the salt picks the block and host bits.
  std::uint64_t z = salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  const int block = int(z % std::uint64_t(blocks_per_city));
  const std::uint32_t host = std::uint32_t((z >> 8) & 0xffff);
  return synthetic_block(city_id, block, blocks_per_city).address | host;
}

}  // namespace manytiers::geo
