#include "geo/cities.hpp"

#include <array>
#include <stdexcept>

namespace manytiers::geo {

std::string_view to_string(Continent c) {
  switch (c) {
    case Continent::NorthAmerica: return "North America";
    case Continent::SouthAmerica: return "South America";
    case Continent::Europe: return "Europe";
    case Continent::Asia: return "Asia";
    case Continent::Africa: return "Africa";
    case Continent::Oceania: return "Oceania";
  }
  throw std::invalid_argument("unknown continent");
}

namespace {

using enum Continent;

// Coordinates are city centers, rounded to two decimals (~0.7 mi), which is
// well below the distance scales the cost models care about.
constexpr std::array<City, 113> kCities{{
    // --- North America (Internet2 PoP cities first; the topology module
    //     references these by name) ---
    {"Seattle", "US", NorthAmerica, {47.61, -122.33}},
    {"Sunnyvale", "US", NorthAmerica, {37.37, -122.04}},
    {"Los Angeles", "US", NorthAmerica, {34.05, -118.24}},
    {"Denver", "US", NorthAmerica, {39.74, -104.99}},
    {"Kansas City", "US", NorthAmerica, {39.10, -94.58}},
    {"Houston", "US", NorthAmerica, {29.76, -95.37}},
    {"Chicago", "US", NorthAmerica, {41.88, -87.63}},
    {"Indianapolis", "US", NorthAmerica, {39.77, -86.16}},
    {"Atlanta", "US", NorthAmerica, {33.75, -84.39}},
    {"Washington", "US", NorthAmerica, {38.91, -77.04}},
    {"New York", "US", NorthAmerica, {40.71, -74.01}},
    {"Boston", "US", NorthAmerica, {42.36, -71.06}},
    {"Miami", "US", NorthAmerica, {25.76, -80.19}},
    {"Dallas", "US", NorthAmerica, {32.78, -96.80}},
    {"Phoenix", "US", NorthAmerica, {33.45, -112.07}},
    {"Minneapolis", "US", NorthAmerica, {44.98, -93.27}},
    {"Salt Lake City", "US", NorthAmerica, {40.76, -111.89}},
    {"Portland", "US", NorthAmerica, {45.52, -122.68}},
    {"San Diego", "US", NorthAmerica, {32.72, -117.16}},
    {"Philadelphia", "US", NorthAmerica, {39.95, -75.17}},
    {"Toronto", "CA", NorthAmerica, {43.65, -79.38}},
    {"Montreal", "CA", NorthAmerica, {45.50, -73.57}},
    {"Vancouver", "CA", NorthAmerica, {49.28, -123.12}},
    {"Mexico City", "MX", NorthAmerica, {19.43, -99.13}},
    {"Monterrey", "MX", NorthAmerica, {25.67, -100.31}},
    // --- Europe (dense coverage; the EU ISP workload draws from these,
    //     including same-country clusters for metro/national flows) ---
    {"London", "GB", Europe, {51.51, -0.13}},
    {"Manchester", "GB", Europe, {53.48, -2.24}},
    {"Birmingham", "GB", Europe, {52.48, -1.90}},
    {"Edinburgh", "GB", Europe, {55.95, -3.19}},
    {"Dublin", "IE", Europe, {53.35, -6.26}},
    {"Paris", "FR", Europe, {48.86, 2.35}},
    {"Lyon", "FR", Europe, {45.76, 4.84}},
    {"Marseille", "FR", Europe, {43.30, 5.37}},
    {"Toulouse", "FR", Europe, {43.60, 1.44}},
    {"Amsterdam", "NL", Europe, {52.37, 4.90}},
    {"Rotterdam", "NL", Europe, {51.92, 4.48}},
    {"The Hague", "NL", Europe, {52.08, 4.31}},
    {"Brussels", "BE", Europe, {50.85, 4.35}},
    {"Antwerp", "BE", Europe, {51.22, 4.40}},
    {"Frankfurt", "DE", Europe, {50.11, 8.68}},
    {"Berlin", "DE", Europe, {52.52, 13.40}},
    {"Munich", "DE", Europe, {48.14, 11.58}},
    {"Hamburg", "DE", Europe, {53.55, 9.99}},
    {"Cologne", "DE", Europe, {50.94, 6.96}},
    {"Dusseldorf", "DE", Europe, {51.23, 6.77}},
    {"Zurich", "CH", Europe, {47.37, 8.54}},
    {"Geneva", "CH", Europe, {46.20, 6.14}},
    {"Vienna", "AT", Europe, {48.21, 16.37}},
    {"Prague", "CZ", Europe, {50.08, 14.44}},
    {"Warsaw", "PL", Europe, {52.23, 21.01}},
    {"Krakow", "PL", Europe, {50.06, 19.94}},
    {"Budapest", "HU", Europe, {47.50, 19.04}},
    {"Bucharest", "RO", Europe, {44.43, 26.10}},
    {"Sofia", "BG", Europe, {42.70, 23.32}},
    {"Athens", "GR", Europe, {37.98, 23.73}},
    {"Rome", "IT", Europe, {41.90, 12.50}},
    {"Milan", "IT", Europe, {45.46, 9.19}},
    {"Turin", "IT", Europe, {45.07, 7.69}},
    {"Madrid", "ES", Europe, {40.42, -3.70}},
    {"Barcelona", "ES", Europe, {41.39, 2.17}},
    {"Valencia", "ES", Europe, {39.47, -0.38}},
    {"Lisbon", "PT", Europe, {38.72, -9.14}},
    {"Porto", "PT", Europe, {41.15, -8.61}},
    {"Copenhagen", "DK", Europe, {55.68, 12.57}},
    {"Stockholm", "SE", Europe, {59.33, 18.07}},
    {"Gothenburg", "SE", Europe, {57.71, 11.97}},
    {"Oslo", "NO", Europe, {59.91, 10.75}},
    {"Helsinki", "FI", Europe, {60.17, 24.94}},
    {"Vilnius", "LT", Europe, {54.69, 25.28}},
    {"Kaunas", "LT", Europe, {54.90, 23.89}},
    {"Riga", "LV", Europe, {56.95, 24.11}},
    {"Tallinn", "EE", Europe, {59.44, 24.75}},
    {"Kyiv", "UA", Europe, {50.45, 30.52}},
    {"Istanbul", "TR", Europe, {41.01, 28.98}},
    {"Moscow", "RU", Europe, {55.76, 37.62}},
    // --- Asia ---
    {"Tokyo", "JP", Asia, {35.68, 139.69}},
    {"Osaka", "JP", Asia, {34.69, 135.50}},
    {"Seoul", "KR", Asia, {37.57, 126.98}},
    {"Beijing", "CN", Asia, {39.90, 116.41}},
    {"Shanghai", "CN", Asia, {31.23, 121.47}},
    {"Shenzhen", "CN", Asia, {22.54, 114.06}},
    {"Hong Kong", "HK", Asia, {22.32, 114.17}},
    {"Taipei", "TW", Asia, {25.03, 121.57}},
    {"Singapore", "SG", Asia, {1.35, 103.82}},
    {"Kuala Lumpur", "MY", Asia, {3.14, 101.69}},
    {"Jakarta", "ID", Asia, {-6.21, 106.85}},
    {"Bangkok", "TH", Asia, {13.76, 100.50}},
    {"Mumbai", "IN", Asia, {19.08, 72.88}},
    {"Delhi", "IN", Asia, {28.61, 77.21}},
    {"Chennai", "IN", Asia, {13.08, 80.27}},
    {"Dubai", "AE", Asia, {25.20, 55.27}},
    {"Tel Aviv", "IL", Asia, {32.09, 34.78}},
    {"Manila", "PH", Asia, {14.60, 120.98}},
    {"Hanoi", "VN", Asia, {21.03, 105.85}},
    // --- South America ---
    {"Sao Paulo", "BR", SouthAmerica, {-23.55, -46.63}},
    {"Rio de Janeiro", "BR", SouthAmerica, {-22.91, -43.17}},
    {"Buenos Aires", "AR", SouthAmerica, {-34.60, -58.38}},
    {"Santiago", "CL", SouthAmerica, {-33.45, -70.67}},
    {"Bogota", "CO", SouthAmerica, {4.71, -74.07}},
    {"Lima", "PE", SouthAmerica, {-12.05, -77.04}},
    {"Caracas", "VE", SouthAmerica, {10.48, -66.90}},
    // --- Africa ---
    {"Johannesburg", "ZA", Africa, {-26.20, 28.05}},
    {"Cape Town", "ZA", Africa, {-33.92, 18.42}},
    {"Cairo", "EG", Africa, {30.04, 31.24}},
    {"Lagos", "NG", Africa, {6.52, 3.38}},
    {"Nairobi", "KE", Africa, {-1.29, 36.82}},
    {"Casablanca", "MA", Africa, {33.57, -7.59}},
    // --- Oceania ---
    {"Sydney", "AU", Oceania, {-33.87, 151.21}},
    {"Melbourne", "AU", Oceania, {-37.81, 144.96}},
    {"Perth", "AU", Oceania, {-31.95, 115.86}},
    {"Brisbane", "AU", Oceania, {-27.47, 153.03}},
    {"Auckland", "NZ", Oceania, {-36.85, 174.76}},
    {"Wellington", "NZ", Oceania, {-41.29, 174.78}},
}};

}  // namespace

std::span<const City> world_cities() { return kCities; }

std::optional<std::size_t> find_city(std::string_view name) {
  for (std::size_t i = 0; i < kCities.size(); ++i) {
    if (kCities[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> cities_in(Continent c) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kCities.size(); ++i) {
    if (kCities[i].continent == c) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> cities_in_country(std::string_view country) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kCities.size(); ++i) {
    if (kCities[i].country == country) out.push_back(i);
  }
  return out;
}

double city_distance_miles(std::size_t a, std::size_t b) {
  if (a >= kCities.size() || b >= kCities.size()) {
    throw std::out_of_range("city_distance_miles: bad city index");
  }
  return haversine_miles(kCities[a].location, kCities[b].location);
}

}  // namespace manytiers::geo
