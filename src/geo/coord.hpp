// Geographic coordinates and great-circle distance.
//
// The paper's cost models are driven by the distance each flow travels
// (paper §4.1.1): great-circle distance between entry/exit PoPs for the
// EU ISP, GeoIP-estimated distance for the CDN, and summed link lengths
// for Internet2. All distances in this library are in statute miles.
#pragma once

namespace manytiers::geo {

struct GeoPoint {
  double lat_deg = 0.0;  // [-90, 90]
  double lon_deg = 0.0;  // [-180, 180]

  bool operator==(const GeoPoint&) const = default;
};

inline constexpr double kEarthRadiusMiles = 3958.7613;

// Great-circle (haversine) distance in miles between two points.
double haversine_miles(const GeoPoint& a, const GeoPoint& b);

// Validate a coordinate; throws std::invalid_argument if out of range.
void validate(const GeoPoint& p);

}  // namespace manytiers::geo
