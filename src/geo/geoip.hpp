// Synthetic GeoIP database: IPv4 prefix -> city, with longest-prefix match.
//
// Stand-in for the MaxMind GeoIP database the paper uses (§4.1.1) to
// estimate CDN flow distances and to classify flow regions. Prefixes are
// allocated to cities deterministically so traces are reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/cities.hpp"

namespace manytiers::geo {

using IpV4 = std::uint32_t;  // host byte order

// Parse "a.b.c.d" into an IpV4; throws std::invalid_argument on bad input.
IpV4 parse_ipv4(std::string_view dotted);
std::string format_ipv4(IpV4 ip);

struct Prefix {
  IpV4 address = 0;  // low bits below the mask must be zero
  int length = 0;    // [0, 32]

  IpV4 first() const;
  IpV4 last() const;
  bool contains(IpV4 ip) const;
};

// Parse "a.b.c.d/len"; throws on malformed input or nonzero host bits.
Prefix parse_prefix(std::string_view cidr);
std::string format_prefix(const Prefix& p);

template <typename Value>
class PrefixTrie;

// Longest-prefix-match database mapping prefixes to city ids, backed by
// a binary trie (geo/trie.hpp).
class GeoIpDb {
 public:
  GeoIpDb();
  GeoIpDb(GeoIpDb&&) noexcept;
  GeoIpDb& operator=(GeoIpDb&&) noexcept;
  ~GeoIpDb();

  // Insert a mapping; later duplicates of the exact same prefix replace
  // earlier ones.
  void add(const Prefix& prefix, std::size_t city_id);

  // Longest-prefix match; nullopt if no covering prefix exists.
  std::optional<std::size_t> lookup_city(IpV4 ip) const;
  const City* lookup(IpV4 ip) const;

  std::size_t size() const;

 private:
  std::unique_ptr<PrefixTrie<std::size_t>> trie_;
};

// Build a deterministic database assigning one or more /16 blocks out of
// 100.0.0.0/8..., to every city in `world_cities()`. Every city gets
// `blocks_per_city` consecutive /16s; block assignment is a fixed function
// of the city index.
GeoIpDb build_synthetic_geoip(int blocks_per_city = 2);

// The i-th /16 block base address used by the synthetic allocator, and a
// deterministic "random-looking" host address inside a city's space.
Prefix synthetic_block(std::size_t city_id, int block, int blocks_per_city);
IpV4 synthetic_host(std::size_t city_id, std::uint32_t salt,
                    int blocks_per_city = 2);

}  // namespace manytiers::geo
