// Metro / national / international flow classification (paper §3.3,
// "function of destination region").
//
// Flows that originate and terminate in the same city are metro; the same
// country, national; otherwise international. When only distances are
// known (the EU ISP case), the paper classifies < 10 miles as metro and
// < 100 miles as national.
#pragma once

#include <cstddef>
#include <string_view>

namespace manytiers::geo {

enum class Region { Metro, National, International };

std::string_view to_string(Region r);

// Classification from city identities.
Region classify_cities(std::size_t src_city, std::size_t dst_city);

struct DistanceThresholds {
  double metro_miles = 10.0;
  double national_miles = 100.0;
};

// Classification from distance alone (EU ISP heuristic, paper §3.3).
Region classify_distance(double distance_miles,
                         const DistanceThresholds& t = {});

}  // namespace manytiers::geo
