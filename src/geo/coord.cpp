#include "geo/coord.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace manytiers::geo {

void validate(const GeoPoint& p) {
  if (p.lat_deg < -90.0 || p.lat_deg > 90.0) {
    throw std::invalid_argument("GeoPoint: latitude out of [-90, 90]");
  }
  if (p.lon_deg < -180.0 || p.lon_deg > 180.0) {
    throw std::invalid_argument("GeoPoint: longitude out of [-180, 180]");
  }
}

double haversine_miles(const GeoPoint& a, const GeoPoint& b) {
  validate(a);
  validate(b);
  constexpr double kDegToRad = std::numbers::pi / 180.0;
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMiles * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace manytiers::geo
