// Binary trie for IPv4 longest-prefix match.
//
// The production lookup engine behind GeoIpDb and the accounting RIB:
// insert is O(prefix length), lookup walks at most 32 levels and returns
// the deepest value on the path. Values are stored by copy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>

#include "geo/geoip.hpp"

namespace manytiers::geo {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  // Insert (or replace) the value for an exact prefix.
  void insert(const Prefix& prefix, Value value) {
    if (prefix.length < 0 || prefix.length > 32) {
      throw std::invalid_argument("PrefixTrie::insert: bad prefix length");
    }
    const IpV4 mask =
        prefix.length == 0 ? 0 : ~IpV4(0) << (32 - prefix.length);
    if ((prefix.address & ~mask) != 0) {
      throw std::invalid_argument("PrefixTrie::insert: nonzero host bits");
    }
    Node* node = &root_;
    for (int depth = 0; depth < prefix.length; ++depth) {
      const int bit = (prefix.address >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  // Longest-prefix match: the value of the most specific prefix covering
  // `address`, or nullopt.
  std::optional<Value> lookup(IpV4 address) const {
    const Value* found = lookup_ptr(address);
    if (found == nullptr) return std::nullopt;
    return *found;
  }

  // Pointer variant avoiding the copy; invalidated by insert.
  const Value* lookup_ptr(IpV4 address) const {
    const Node* node = &root_;
    const Value* best = node->value ? &*node->value : nullptr;
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (address >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) break;
      node = child.get();
      if (node->value) best = &*node->value;
    }
    return best;
  }

  // Exact-match retrieval (no LPM); nullptr if the prefix was not inserted.
  const Value* find_exact(const Prefix& prefix) const {
    const Node* node = &root_;
    for (int depth = 0; depth < prefix.length; ++depth) {
      const int bit = (prefix.address >> (31 - depth)) & 1;
      const auto& child = node->children[bit];
      if (!child) return nullptr;
      node = child.get();
    }
    return node->value ? &*node->value : nullptr;
  }

  // Remove an exact prefix; returns false if it was not present. Empty
  // branches are pruned so long-lived tries do not leak nodes.
  bool erase(const Prefix& prefix) {
    if (prefix.length < 0 || prefix.length > 32) return false;
    return erase_impl(root_, prefix, 0);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Node {
    std::optional<Value> value;
    std::unique_ptr<Node> children[2];

    bool prunable() const {
      return !value && !children[0] && !children[1];
    }
  };

  bool erase_impl(Node& node, const Prefix& prefix, int depth) {
    if (depth == prefix.length) {
      if (!node.value) return false;
      node.value.reset();
      --size_;
      return true;
    }
    const int bit = (prefix.address >> (31 - depth)) & 1;
    auto& child = node.children[bit];
    if (!child) return false;
    if (!erase_impl(*child, prefix, depth + 1)) return false;
    if (child->prunable()) child.reset();
    return true;
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace manytiers::geo
