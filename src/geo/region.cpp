#include "geo/region.hpp"

#include <stdexcept>

#include "geo/cities.hpp"

namespace manytiers::geo {

std::string_view to_string(Region r) {
  switch (r) {
    case Region::Metro: return "metro";
    case Region::National: return "national";
    case Region::International: return "international";
  }
  throw std::invalid_argument("unknown region");
}

Region classify_cities(std::size_t src_city, std::size_t dst_city) {
  const auto cities = world_cities();
  if (src_city >= cities.size() || dst_city >= cities.size()) {
    throw std::out_of_range("classify_cities: bad city index");
  }
  if (src_city == dst_city) return Region::Metro;
  if (cities[src_city].country == cities[dst_city].country) {
    return Region::National;
  }
  return Region::International;
}

Region classify_distance(double distance_miles, const DistanceThresholds& t) {
  if (distance_miles < 0.0) {
    throw std::invalid_argument("classify_distance: negative distance");
  }
  if (!(t.metro_miles < t.national_miles)) {
    throw std::invalid_argument("classify_distance: thresholds must increase");
  }
  if (distance_miles < t.metro_miles) return Region::Metro;
  if (distance_miles < t.national_miles) return Region::National;
  return Region::International;
}

}  // namespace manytiers::geo
