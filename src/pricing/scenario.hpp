// Calibrated market scenarios (paper Fig. 7 and §4.1).
//
// A Market is the output of the paper's "mapping data to models" step:
// starting from observed flows (demand + distance), a demand model, a
// cost model, and the blended rate P0, it solves for the per-flow
// valuations v_i and the cost scale gamma under the assumption that the
// ISP is already rational and profit-maximizing at the blended rate. The
// calibration has a built-in consistency property: re-optimizing a single
// blended bundle recovers exactly P0.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cost/cost.hpp"
#include "demand/ced.hpp"
#include "demand/demand.hpp"
#include "demand/logit.hpp"
#include "workload/flowset.hpp"

namespace manytiers::pricing {

struct DemandSpec {
  demand::DemandKind kind = demand::DemandKind::ConstantElasticity;
  double alpha = 1.1;              // price sensitivity
  double no_purchase_share = 0.2;  // s0 at the blended rate (logit only)
};

class Market {
 public:
  // Calibrate a market from observed flows. The cost model may expand the
  // flow set (destination-type splits flows into on/off-net sub-flows).
  static Market calibrate(const workload::FlowSet& flows,
                          const DemandSpec& demand_spec,
                          const cost::CostModel& cost_model,
                          double blended_price);

  const workload::FlowSet& flows() const { return flows_; }
  std::size_t size() const { return flows_.size(); }
  const DemandSpec& demand_spec() const { return spec_; }
  double blended_price() const { return blended_price_; }

  const std::vector<double>& valuations() const { return valuations_; }
  const std::vector<double>& costs() const { return costs_; }
  const std::vector<double>& relative_costs() const { return relative_costs_; }
  double gamma() const { return gamma_; }
  // Cost class of each flow (for class-aware bundling) and class count.
  const std::vector<std::size_t>& cost_classes() const { return classes_; }
  std::size_t cost_class_count() const;

  // The fitted demand model. Exactly one is engaged, per spec().kind.
  const demand::CedModel& ced() const;
  const demand::LogitModel& logit() const;

  // Baseline profits of the calibrated market, the two invariants every
  // capture evaluation divides by: profit at the blended rate P0 and
  // profit under per-flow pricing (both O(n); the logit maximum runs a
  // price solve). Computed lazily on first use, then cached — thread-safe
  // via std::call_once, and shared across copies of the market (the
  // calibrated state they derive from is immutable).
  double blended_profit() const;
  double max_profit() const;

  // Topology-epoch tag for dynamic-network workflows. A market calibrated
  // against topology epoch E carries E; re-tagging with a different epoch
  // swaps in a fresh unprimed baseline-profit cache (the cached profits
  // were computed from stale costs, and a std::once_flag cannot be
  // re-armed in place). Re-tagging with the same epoch is a no-op, so
  // clean markets keep their primed caches. Copies made before a re-tag
  // keep the old, still-self-consistent cache; the swap is not
  // synchronized against concurrent baseline reads of the same object.
  std::uint64_t topology_epoch() const { return topology_epoch_; }
  void tag_topology_epoch(std::uint64_t epoch);

 private:
  Market() = default;

  struct ProfitCache;
  const ProfitCache& primed_cache() const;

  workload::FlowSet flows_{"uncalibrated"};
  DemandSpec spec_;
  double blended_price_ = 0.0;
  std::vector<double> valuations_;
  std::vector<double> relative_costs_;
  std::vector<double> costs_;
  double gamma_ = 0.0;
  std::vector<std::size_t> classes_;
  std::optional<demand::CedModel> ced_;
  std::optional<demand::LogitModel> logit_;
  std::uint64_t topology_epoch_ = 0;
  std::shared_ptr<ProfitCache> profit_cache_;  // created by calibrate()
};

}  // namespace manytiers::pricing
