// Welfare accounting for pricing counterfactuals.
//
// Paper Fig. 1 argues tiered pricing raises not only ISP profit but also
// consumer surplus (and therefore social welfare). This module extends
// that two-flow illustration to whole calibrated markets: for any
// bundling it reports profit, consumer surplus, and their sum, so the
// welfare claim can be tested at dataset scale (see the welfare bench).
#pragma once

#include "bundling/bundle.hpp"
#include "pricing/engine.hpp"

namespace manytiers::pricing {

struct WelfareReport {
  double profit = 0.0;
  double consumer_surplus = 0.0;
  double welfare = 0.0;  // profit + consumer surplus
};

// Welfare at explicit flow prices.
WelfareReport welfare_at_prices(const Market& market,
                                std::span<const double> flow_prices);

// Welfare when `bundles` are priced at their profit-maximizing prices.
WelfareReport welfare_of(const Market& market,
                         const bundling::Bundling& bundles);

// Welfare at the blended rate (the status quo).
WelfareReport blended_welfare(const Market& market);

}  // namespace manytiers::pricing
