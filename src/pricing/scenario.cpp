#include "pricing/scenario.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace manytiers::pricing {

// Lazily filled baseline profits. The flag makes the first computation a
// once-only critical section; afterwards reads are plain loads of
// immutable doubles. Copies of a Market share the cache (shared_ptr), so
// priming any copy primes them all.
struct Market::ProfitCache {
  std::once_flag once;
  double blended = 0.0;
  double maximum = 0.0;
};

Market Market::calibrate(const workload::FlowSet& flows,
                         const DemandSpec& demand_spec,
                         const cost::CostModel& cost_model,
                         double blended_price) {
  if (flows.empty()) {
    throw std::invalid_argument("Market::calibrate: empty flow set");
  }
  if (!(blended_price > 0.0)) {
    throw std::invalid_argument("Market::calibrate: blended price must be > 0");
  }
  static obs::Counter& calibrations =
      obs::Registry::instance().counter("market.calibrations");
  calibrations.add();
  const obs::Span span(
      "market.calibrate",
      obs::Tracer::instance().active()
          ? "{\"flows\":" + std::to_string(flows.size()) + "}"
          : std::string());
  Market m;
  m.spec_ = demand_spec;
  m.blended_price_ = blended_price;
  m.flows_ = cost_model.expand(flows);
  m.relative_costs_ = cost_model.relative_costs(m.flows_);
  m.classes_ = cost_model.class_of_flows(m.flows_);
  if (m.relative_costs_.size() != m.flows_.size() ||
      m.classes_.size() != m.flows_.size()) {
    throw std::logic_error("Market::calibrate: cost model size mismatch");
  }
  const auto demands = m.flows_.demands();

  switch (demand_spec.kind) {
    case demand::DemandKind::ConstantElasticity: {
      demand::CedModel model(demand_spec.alpha);
      const auto fit = model.fit_valuations(demands, blended_price);
      m.valuations_ = fit.valuations;
      m.gamma_ =
          model.fit_gamma(m.valuations_, m.relative_costs_, blended_price);
      m.ced_ = model;
      break;
    }
    case demand::DemandKind::Logit: {
      const auto fit = demand::LogitModel::fit_valuations(
          demands, blended_price, demand_spec.no_purchase_share,
          demand_spec.alpha);
      demand::LogitModel model(demand_spec.alpha, fit.market_size);
      m.valuations_ = fit.valuations;
      m.gamma_ =
          model.fit_gamma(m.valuations_, m.relative_costs_, blended_price);
      m.logit_ = model;
      break;
    }
  }
  m.costs_.resize(m.relative_costs_.size());
  for (std::size_t i = 0; i < m.costs_.size(); ++i) {
    m.costs_[i] = m.gamma_ * m.relative_costs_[i];
  }
  m.profit_cache_ = std::make_shared<ProfitCache>();
  return m;
}

const Market::ProfitCache& Market::primed_cache() const {
  if (!profit_cache_) {
    throw std::logic_error("Market: baseline profits of an uncalibrated market");
  }
  // lookups - fills = cache hits; the sweep paths should show fills ==
  // calibrations (each market primes once) and lookups well above that.
  static obs::Counter& lookups =
      obs::Registry::instance().counter("market.profit_cache_lookups");
  static obs::Counter& fills =
      obs::Registry::instance().counter("market.profit_cache_fills");
  lookups.add();
  std::call_once(profit_cache_->once, [this] {
    fills.add();
    switch (spec_.kind) {
      case demand::DemandKind::ConstantElasticity: {
        const std::vector<double> prices(size(), blended_price_);
        profit_cache_->blended = ced_->total_profit(valuations_, costs_, prices);
        double total = 0.0;
        for (std::size_t i = 0; i < size(); ++i) {
          total += ced_->potential_profit(valuations_[i], costs_[i]);
        }
        profit_cache_->maximum = total;
        break;
      }
      case demand::DemandKind::Logit: {
        const std::vector<double> prices(size(), blended_price_);
        profit_cache_->blended =
            logit_->total_profit(valuations_, costs_, prices);
        profit_cache_->maximum =
            logit_->optimal_prices(valuations_, costs_).profit;
        break;
      }
    }
  });
  return *profit_cache_;
}

double Market::blended_profit() const { return primed_cache().blended; }

double Market::max_profit() const { return primed_cache().maximum; }

void Market::tag_topology_epoch(std::uint64_t epoch) {
  if (!profit_cache_) {
    throw std::logic_error("Market: tagging an uncalibrated market");
  }
  if (epoch == topology_epoch_) return;
  static obs::Counter& invalidations =
      obs::Registry::instance().counter("market.profit_cache_invalidations");
  invalidations.add();
  profit_cache_ = std::make_shared<ProfitCache>();
  topology_epoch_ = epoch;
}

std::size_t Market::cost_class_count() const {
  if (classes_.empty()) return 0;
  return *std::max_element(classes_.begin(), classes_.end()) + 1;
}

const demand::CedModel& Market::ced() const {
  if (!ced_) {
    throw std::logic_error("Market::ced: market uses the logit demand model");
  }
  return *ced_;
}

const demand::LogitModel& Market::logit() const {
  if (!logit_) {
    throw std::logic_error("Market::logit: market uses the CED demand model");
  }
  return *logit_;
}

}  // namespace manytiers::pricing
