#include "pricing/counterfactual.hpp"

#include <stdexcept>

#include "bundling/optimal.hpp"
#include "bundling/strategies.hpp"

namespace manytiers::pricing {

std::string_view to_string(Strategy s) {
  switch (s) {
    case Strategy::Optimal: return "Optimal";
    case Strategy::DemandWeighted: return "Demand-weighted";
    case Strategy::CostWeighted: return "Cost-weighted";
    case Strategy::ProfitWeighted: return "Profit-weighted";
    case Strategy::CostDivision: return "Cost division";
    case Strategy::IndexDivision: return "Index division";
    case Strategy::ClassAwareProfitWeighted:
      return "Class-aware profit-weighted";
  }
  throw std::invalid_argument("unknown strategy");
}

std::vector<Strategy> figure8_strategies() {
  return {Strategy::Optimal,         Strategy::CostWeighted,
          Strategy::ProfitWeighted,  Strategy::DemandWeighted,
          Strategy::CostDivision,    Strategy::IndexDivision};
}

std::vector<Strategy> figure9_strategies() {
  return {Strategy::Optimal, Strategy::CostWeighted, Strategy::ProfitWeighted,
          Strategy::CostDivision, Strategy::IndexDivision};
}

namespace {

bundling::Bundling build_bundling(const Market& market, Strategy strategy,
                                  std::size_t n_bundles) {
  const auto& costs = market.costs();
  switch (strategy) {
    case Strategy::Optimal:
      switch (market.demand_spec().kind) {
        case demand::DemandKind::ConstantElasticity:
          return bundling::ced_optimal(market.valuations(), costs,
                                       market.demand_spec().alpha, n_bundles);
        case demand::DemandKind::Logit:
          return bundling::logit_optimal(market.valuations(), costs,
                                         market.demand_spec().alpha,
                                         n_bundles);
      }
      throw std::logic_error("build_bundling: unknown demand kind");
    case Strategy::DemandWeighted:
      return bundling::demand_weighted(market.flows().demands(), n_bundles);
    case Strategy::CostWeighted:
      return bundling::cost_weighted(costs, n_bundles);
    case Strategy::ProfitWeighted:
      return bundling::profit_weighted(potential_profits(market), costs,
                                       n_bundles);
    case Strategy::CostDivision:
      return bundling::cost_division(costs, n_bundles);
    case Strategy::IndexDivision:
      return bundling::index_division(costs, n_bundles);
    case Strategy::ClassAwareProfitWeighted:
      return bundling::class_aware_profit_weighted(
          potential_profits(market), costs, market.cost_classes(), n_bundles);
  }
  throw std::invalid_argument("unknown strategy");
}

}  // namespace

StrategyResult run_strategy(const Market& market, Strategy strategy,
                            std::size_t n_bundles) {
  if (n_bundles == 0) {
    throw std::invalid_argument("run_strategy: need at least one bundle");
  }
  StrategyResult res;
  res.strategy = strategy;
  res.requested_bundles = n_bundles;
  res.pricing = price_bundles(market, build_bundling(market, strategy,
                                                     n_bundles));
  res.capture = profit_capture(market, res.pricing.profit);
  return res;
}

// One bundling per bundle count in 1..max_bundles, sharing the per-
// strategy invariant work across the series: the Optimal strategy fills
// its interval-DP table once (interval_dp_all) instead of once per b,
// and the weighted/division heuristics sort once. Results are identical
// to calling build_bundling at each b.
std::vector<bundling::Bundling> bundling_series(const Market& market,
                                                Strategy strategy,
                                                std::size_t max_bundles) {
  if (max_bundles == 0) {
    throw std::invalid_argument("bundling_series: need at least one bundle");
  }
  const auto& costs = market.costs();
  switch (strategy) {
    case Strategy::Optimal:
      switch (market.demand_spec().kind) {
        case demand::DemandKind::ConstantElasticity:
          return bundling::ced_optimal_series(market.valuations(), costs,
                                              market.demand_spec().alpha,
                                              max_bundles);
        case demand::DemandKind::Logit:
          return bundling::logit_optimal_series(market.valuations(), costs,
                                                market.demand_spec().alpha,
                                                max_bundles);
      }
      throw std::logic_error("build_bundling_series: unknown demand kind");
    case Strategy::DemandWeighted:
      return bundling::demand_weighted_series(market.flows().demands(),
                                              max_bundles);
    case Strategy::CostWeighted:
      return bundling::cost_weighted_series(costs, max_bundles);
    case Strategy::ProfitWeighted:
      return bundling::profit_weighted_series(potential_profits(market), costs,
                                              max_bundles);
    case Strategy::CostDivision:
      return bundling::cost_division_series(costs, max_bundles);
    case Strategy::IndexDivision:
      return bundling::index_division_series(costs, max_bundles);
    case Strategy::ClassAwareProfitWeighted: {
      // The class-aware strategy cannot produce fewer bundles than
      // classes; report the best feasible coarser bundling instead (plain
      // profit-weighted) so the series starts at b = 1 like the paper's
      // figures. The potential-profit vector is shared across the series.
      const auto profits = potential_profits(market);
      const std::size_t n_classes = market.cost_class_count();
      std::vector<bundling::Bundling> out;
      out.reserve(max_bundles);
      for (std::size_t b = 1; b <= max_bundles; ++b) {
        out.push_back(b < n_classes
                          ? bundling::profit_weighted(profits, costs, b)
                          : bundling::class_aware_profit_weighted(
                                profits, costs, market.cost_classes(), b));
      }
      return out;
    }
  }
  throw std::invalid_argument("unknown strategy");
}

std::vector<double> capture_series(const Market& market, Strategy strategy,
                                   std::size_t max_bundles) {
  // A zero-length series used to be returned silently, and downstream
  // min/max envelope code indexed into it; fail loudly instead, matching
  // run_strategy's contract.
  if (max_bundles == 0) {
    throw std::invalid_argument("capture_series: need at least one bundle");
  }
  const auto bundlings = bundling_series(market, strategy, max_bundles);
  std::vector<double> out;
  out.reserve(max_bundles);
  for (const auto& bundling : bundlings) {
    out.push_back(
        profit_capture(market, price_bundles(market, bundling).profit));
  }
  return out;
}

std::vector<StrategyResult> run_strategy_series(const Market& market,
                                                Strategy strategy,
                                                std::size_t max_bundles) {
  if (max_bundles == 0) {
    throw std::invalid_argument(
        "run_strategy_series: need at least one bundle");
  }
  auto bundlings = bundling_series(market, strategy, max_bundles);
  std::vector<StrategyResult> out;
  out.reserve(max_bundles);
  for (std::size_t b = 1; b <= max_bundles; ++b) {
    StrategyResult res;
    res.strategy = strategy;
    res.requested_bundles = b;
    res.pricing = price_bundles(market, bundlings[b - 1]);
    res.capture = profit_capture(market, res.pricing.profit);
    out.push_back(std::move(res));
  }
  return out;
}

}  // namespace manytiers::pricing
