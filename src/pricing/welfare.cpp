#include "pricing/welfare.hpp"

#include <stdexcept>

namespace manytiers::pricing {

WelfareReport welfare_at_prices(const Market& market,
                                std::span<const double> flow_prices) {
  if (flow_prices.size() != market.size()) {
    throw std::invalid_argument("welfare_at_prices: price vector size mismatch");
  }
  WelfareReport report;
  const auto& v = market.valuations();
  const auto& c = market.costs();
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      report.profit = model.total_profit(v, c, flow_prices);
      for (std::size_t i = 0; i < market.size(); ++i) {
        report.consumer_surplus +=
            model.consumer_surplus(v[i], flow_prices[i]);
      }
      break;
    }
    case demand::DemandKind::Logit: {
      const auto& model = market.logit();
      report.profit = model.total_profit(v, c, flow_prices);
      report.consumer_surplus = model.consumer_surplus(v, flow_prices);
      break;
    }
  }
  report.welfare = report.profit + report.consumer_surplus;
  return report;
}

WelfareReport welfare_of(const Market& market,
                         const bundling::Bundling& bundles) {
  return welfare_at_prices(market, price_bundles(market, bundles).flow_prices);
}

WelfareReport blended_welfare(const Market& market) {
  const std::vector<double> prices(market.size(), market.blended_price());
  return welfare_at_prices(market, prices);
}

}  // namespace manytiers::pricing
