// Pricing engine: price a bundling optimally and evaluate profit capture.
//
// Profit capture (paper §4.2.2) measures how much of the headroom between
// the blended-rate profit and the infinitely-fine-grained profit a
// bundling recovers:
//
//   capture = (pi_new - pi_original) / (pi_max - pi_original)
#pragma once

#include <vector>

#include "bundling/bundle.hpp"
#include "pricing/scenario.hpp"

namespace manytiers::pricing {

struct PricedBundling {
  bundling::Bundling bundles;
  std::vector<double> bundle_prices;  // one price per bundle
  std::vector<double> flow_prices;    // the bundle price, per flow
  double profit = 0.0;
};

// Compute each bundle's profit-maximizing price (CED: Eq. 5; logit: the
// equal-markup optimum over bundle aggregates, Eqs. 9-11) and the
// resulting total profit.
PricedBundling price_bundles(const Market& market,
                             const bundling::Bundling& bundles);

// Profit at the status quo: every flow at the blended rate P0.
double blended_profit(const Market& market);

// Profit with per-flow pricing (an infinite number of tiers).
double max_profit(const Market& market);

// Profit capture of `profit` relative to the market's blended baseline
// and per-flow maximum. Returns 1 when there is no headroom.
double profit_capture(const Market& market, double profit);

// Convenience: price a bundling and report its capture.
double capture_of(const Market& market, const bundling::Bundling& bundles);

// Potential profit of each flow at its individually optimal price:
// CED Eq. 12; logit Eq. 13 (proportional to observed demand).
std::vector<double> potential_profits(const Market& market);

}  // namespace manytiers::pricing
