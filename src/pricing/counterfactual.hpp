// Counterfactual driver: run a bundling strategy at a tier count and
// report profit capture (the machinery behind paper Figs. 8-16).
#pragma once

#include <string_view>
#include <vector>

#include "pricing/engine.hpp"

namespace manytiers::pricing {

enum class Strategy {
  Optimal,          // exact optimal partition (interval DP; paper: search)
  DemandWeighted,   // token bucket by observed demand
  CostWeighted,     // token bucket by 1/cost
  ProfitWeighted,   // token bucket by potential profit
  CostDivision,     // equal-width cost ranges
  IndexDivision,    // equal-count cost-rank groups
  ClassAwareProfitWeighted,  // profit-weighted, never mixing cost classes
};

std::string_view to_string(Strategy s);

// The strategy lineups of the paper's figures: Fig. 8 (CED) shows all six
// base strategies; Fig. 9 (logit) drops demand-weighted (it coincides with
// profit-weighted there, Eq. 13).
std::vector<Strategy> figure8_strategies();
std::vector<Strategy> figure9_strategies();

struct StrategyResult {
  Strategy strategy = Strategy::Optimal;
  std::size_t requested_bundles = 0;
  PricedBundling pricing;       // bundles, prices, profit
  double capture = 0.0;
};

// Build the strategy's bundling for `n_bundles` tiers, price it, and
// report capture. ClassAwareProfitWeighted requires n_bundles >= the
// market's cost class count.
StrategyResult run_strategy(const Market& market, Strategy strategy,
                            std::size_t n_bundles);

// One bundling per bundle count in 1..max_bundles, sharing the per-
// strategy invariant work across the series (the Optimal strategy fills
// its interval-DP table once, the heuristics sort once). Identical to
// calling the strategy at each b; ClassAwareProfitWeighted falls back to
// plain profit-weighted below the class count so the series starts at
// b = 1 like the paper's figures.
std::vector<bundling::Bundling> bundling_series(const Market& market,
                                                Strategy strategy,
                                                std::size_t max_bundles);

// Capture series for one strategy at 1..max_bundles tiers.
std::vector<double> capture_series(const Market& market, Strategy strategy,
                                   std::size_t max_bundles);

// Full priced results for one strategy at 1..max_bundles tiers — the
// same bundlings and prices capture_series evaluates, with the
// PricedBundling kept instead of reduced to the capture scalar. This is
// what the serve snapshot builds tier schedules from, so the query
// daemon and the batch driver answer from one pricing truth.
std::vector<StrategyResult> run_strategy_series(const Market& market,
                                                Strategy strategy,
                                                std::size_t max_bundles);

}  // namespace manytiers::pricing
