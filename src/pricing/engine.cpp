#include "pricing/engine.hpp"

#include <cmath>
#include <stdexcept>

namespace manytiers::pricing {

namespace {

std::vector<double> gather(const std::vector<double>& xs,
                           const bundling::Bundle& bundle) {
  std::vector<double> out;
  out.reserve(bundle.size());
  for (const std::size_t i : bundle) out.push_back(xs[i]);
  return out;
}

}  // namespace

PricedBundling price_bundles(const Market& market,
                             const bundling::Bundling& bundles) {
  bundling::validate(bundles, market.size());
  PricedBundling out;
  out.bundles = bundles;
  out.bundle_prices.resize(bundles.size());
  out.flow_prices.resize(market.size());
  const auto& v = market.valuations();
  const auto& c = market.costs();

  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      for (std::size_t b = 0; b < bundles.size(); ++b) {
        const auto bv = gather(v, bundles[b]);
        const auto bc = gather(c, bundles[b]);
        out.bundle_prices[b] = model.bundle_price(bv, bc);
      }
      break;
    }
    case demand::DemandKind::Logit: {
      const auto& model = market.logit();
      // Collapse each bundle to its aggregate valuation and cost (Eqs.
      // 10-11), then solve the equal-markup optimum across bundles.
      std::vector<double> bundle_v(bundles.size()), bundle_c(bundles.size());
      for (std::size_t b = 0; b < bundles.size(); ++b) {
        const auto bv = gather(v, bundles[b]);
        const auto bc = gather(c, bundles[b]);
        bundle_v[b] = model.bundle_valuation(bv);
        bundle_c[b] = model.bundle_cost(bv, bc);
      }
      out.bundle_prices = model.optimal_prices(bundle_v, bundle_c).prices;
      break;
    }
  }
  for (std::size_t b = 0; b < bundles.size(); ++b) {
    for (const std::size_t i : bundles[b]) {
      out.flow_prices[i] = out.bundle_prices[b];
    }
  }
  // Profit is always evaluated at flow granularity; for the logit model
  // this equals the bundle-aggregate formula exactly (Eq. 10/11 are the
  // log-sum-exp collapse of the flow-level shares).
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity:
      out.profit = market.ced().total_profit(v, c, out.flow_prices);
      break;
    case demand::DemandKind::Logit:
      out.profit = market.logit().total_profit(v, c, out.flow_prices);
      break;
  }
  return out;
}

// Both baselines are invariants of the calibrated market; Market
// computes them once (lazily, thread-safe) and these entry points just
// read the cache, so a strategy x bundle-count grid pays the O(n)
// blended evaluation and the logit price solve once per market instead
// of once per capture.
double blended_profit(const Market& market) {
  return market.blended_profit();
}

double max_profit(const Market& market) { return market.max_profit(); }

double profit_capture(const Market& market, double profit) {
  const double original = market.blended_profit();
  const double maximum = market.max_profit();
  const double headroom = maximum - original;
  if (!(headroom > 1e-12 * std::max(1.0, std::abs(maximum)))) {
    return 1.0;  // no headroom: any bundling trivially captures everything
  }
  return (profit - original) / headroom;
}

double capture_of(const Market& market, const bundling::Bundling& bundles) {
  return profit_capture(market, price_bundles(market, bundles).profit);
}

std::vector<double> potential_profits(const Market& market) {
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      std::vector<double> out(market.size());
      for (std::size_t i = 0; i < market.size(); ++i) {
        out[i] = model.potential_profit(market.valuations()[i],
                                        market.costs()[i]);
      }
      return out;
    }
    case demand::DemandKind::Logit: {
      // Eq. 13: potential profit is proportional to observed demand.
      return market.flows().demands();
    }
  }
  throw std::logic_error("potential_profits: unknown demand kind");
}

}  // namespace manytiers::pricing
