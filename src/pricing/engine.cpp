#include "pricing/engine.hpp"

#include <cmath>
#include <stdexcept>

namespace manytiers::pricing {

namespace {

std::vector<double> gather(const std::vector<double>& xs,
                           const bundling::Bundle& bundle) {
  std::vector<double> out;
  out.reserve(bundle.size());
  for (const std::size_t i : bundle) out.push_back(xs[i]);
  return out;
}

}  // namespace

PricedBundling price_bundles(const Market& market,
                             const bundling::Bundling& bundles) {
  bundling::validate(bundles, market.size());
  PricedBundling out;
  out.bundles = bundles;
  out.bundle_prices.resize(bundles.size());
  out.flow_prices.resize(market.size());
  const auto& v = market.valuations();
  const auto& c = market.costs();

  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      for (std::size_t b = 0; b < bundles.size(); ++b) {
        const auto bv = gather(v, bundles[b]);
        const auto bc = gather(c, bundles[b]);
        out.bundle_prices[b] = model.bundle_price(bv, bc);
      }
      break;
    }
    case demand::DemandKind::Logit: {
      const auto& model = market.logit();
      // Collapse each bundle to its aggregate valuation and cost (Eqs.
      // 10-11), then solve the equal-markup optimum across bundles.
      std::vector<double> bundle_v(bundles.size()), bundle_c(bundles.size());
      for (std::size_t b = 0; b < bundles.size(); ++b) {
        const auto bv = gather(v, bundles[b]);
        const auto bc = gather(c, bundles[b]);
        bundle_v[b] = model.bundle_valuation(bv);
        bundle_c[b] = model.bundle_cost(bv, bc);
      }
      out.bundle_prices = model.optimal_prices(bundle_v, bundle_c).prices;
      break;
    }
  }
  for (std::size_t b = 0; b < bundles.size(); ++b) {
    for (const std::size_t i : bundles[b]) {
      out.flow_prices[i] = out.bundle_prices[b];
    }
  }
  // Profit is always evaluated at flow granularity; for the logit model
  // this equals the bundle-aggregate formula exactly (Eq. 10/11 are the
  // log-sum-exp collapse of the flow-level shares).
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity:
      out.profit = market.ced().total_profit(v, c, out.flow_prices);
      break;
    case demand::DemandKind::Logit:
      out.profit = market.logit().total_profit(v, c, out.flow_prices);
      break;
  }
  return out;
}

double blended_profit(const Market& market) {
  const std::vector<double> prices(market.size(), market.blended_price());
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity:
      return market.ced().total_profit(market.valuations(), market.costs(),
                                       prices);
    case demand::DemandKind::Logit:
      return market.logit().total_profit(market.valuations(), market.costs(),
                                         prices);
  }
  throw std::logic_error("blended_profit: unknown demand kind");
}

double max_profit(const Market& market) {
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      double total = 0.0;
      for (std::size_t i = 0; i < market.size(); ++i) {
        total += model.potential_profit(market.valuations()[i],
                                        market.costs()[i]);
      }
      return total;
    }
    case demand::DemandKind::Logit:
      return market.logit()
          .optimal_prices(market.valuations(), market.costs())
          .profit;
  }
  throw std::logic_error("max_profit: unknown demand kind");
}

double profit_capture(const Market& market, double profit) {
  const double original = blended_profit(market);
  const double maximum = max_profit(market);
  const double headroom = maximum - original;
  if (!(headroom > 1e-12 * std::max(1.0, std::abs(maximum)))) {
    return 1.0;  // no headroom: any bundling trivially captures everything
  }
  return (profit - original) / headroom;
}

double capture_of(const Market& market, const bundling::Bundling& bundles) {
  return profit_capture(market, price_bundles(market, bundles).profit);
}

std::vector<double> potential_profits(const Market& market) {
  switch (market.demand_spec().kind) {
    case demand::DemandKind::ConstantElasticity: {
      const auto& model = market.ced();
      std::vector<double> out(market.size());
      for (std::size_t i = 0; i < market.size(); ++i) {
        out[i] = model.potential_profit(market.valuations()[i],
                                        market.costs()[i]);
      }
      return out;
    }
    case demand::DemandKind::Logit: {
      // Eq. 13: potential profit is proportional to observed demand.
      return market.flows().demands();
    }
  }
  throw std::logic_error("potential_profits: unknown demand kind");
}

}  // namespace manytiers::pricing
