#include "pricing/sensitivity.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace manytiers::pricing {

SweepResult sweep_captures(std::span<const double> parameter_values,
                           const std::function<Market(double)>& calibrate,
                           Strategy strategy, std::size_t max_bundles,
                           std::size_t threads) {
  if (parameter_values.empty()) {
    throw std::invalid_argument("sweep_captures: no parameter values");
  }
  if (max_bundles == 0) {
    throw std::invalid_argument("sweep_captures: need at least one bundle");
  }
  static obs::Counter& points_counter =
      obs::Registry::instance().counter("pricing.sweep_points");
  points_counter.add(parameter_values.size());
  const obs::Span span(
      "sweep_captures",
      obs::Tracer::instance().active()
          ? "{\"points\":" + std::to_string(parameter_values.size()) +
                ",\"max_bundles\":" + std::to_string(max_bundles) + "}"
          : std::string());
  // Each parameter point calibrates its own market and evaluates its own
  // capture series; points never touch shared state, so they fan out
  // across threads. The min/max reduction below then runs serially in
  // parameter order, making the result independent of the thread count.
  std::vector<std::vector<double>> series(parameter_values.size());
  util::parallel_for(
      parameter_values.size(),
      [&](std::size_t p) {
        const Market market = calibrate(parameter_values[p]);
        series[p] = capture_series(market, strategy, max_bundles);
      },
      threads);
  SweepResult out;
  out.min_capture.assign(max_bundles, std::numeric_limits<double>::max());
  out.max_capture.assign(max_bundles, -std::numeric_limits<double>::max());
  for (const auto& point : series) {
    for (std::size_t b = 0; b < max_bundles; ++b) {
      out.min_capture[b] = std::min(out.min_capture[b], point[b]);
      out.max_capture[b] = std::max(out.max_capture[b], point[b]);
    }
    ++out.points;
  }
  return out;
}

namespace {
void require_inputs(const SensitivityInputs& inputs) {
  if (inputs.flows == nullptr || inputs.cost_model == nullptr) {
    throw std::invalid_argument("sensitivity sweep: null flows or cost model");
  }
}
}  // namespace

SweepResult sweep_alpha(const SensitivityInputs& inputs,
                        std::span<const double> alphas) {
  require_inputs(inputs);
  return sweep_captures(
      alphas,
      [&](double alpha) {
        DemandSpec spec = inputs.demand;
        spec.alpha = alpha;
        return Market::calibrate(*inputs.flows, spec, *inputs.cost_model,
                                 inputs.blended_price);
      },
      inputs.strategy, inputs.max_bundles, inputs.threads);
}

SweepResult sweep_blended_price(const SensitivityInputs& inputs,
                                std::span<const double> prices) {
  require_inputs(inputs);
  return sweep_captures(
      prices,
      [&](double p0) {
        return Market::calibrate(*inputs.flows, inputs.demand,
                                 *inputs.cost_model, p0);
      },
      inputs.strategy, inputs.max_bundles, inputs.threads);
}

SweepResult sweep_no_purchase_share(const SensitivityInputs& inputs,
                                    std::span<const double> shares) {
  require_inputs(inputs);
  if (inputs.demand.kind != demand::DemandKind::Logit) {
    throw std::invalid_argument(
        "sweep_no_purchase_share: s0 only exists in the logit model");
  }
  return sweep_captures(
      shares,
      [&](double s0) {
        DemandSpec spec = inputs.demand;
        spec.no_purchase_share = s0;
        return Market::calibrate(*inputs.flows, spec, *inputs.cost_model,
                                 inputs.blended_price);
      },
      inputs.strategy, inputs.max_bundles, inputs.threads);
}

}  // namespace manytiers::pricing
