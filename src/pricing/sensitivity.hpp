// Parameter-sensitivity sweeps (paper §4.3.2, Figs. 14-16).
//
// The paper's robustness methodology: re-calibrate the market at each
// value of an unobservable parameter (price sensitivity alpha, blended
// rate P0, logit outside share s0), run a bundling strategy at every
// tier count, and report the worst (and best) capture observed across
// the range.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "pricing/counterfactual.hpp"

namespace manytiers::pricing {

struct SweepResult {
  // Indexed by bundle count - 1.
  std::vector<double> min_capture;
  std::vector<double> max_capture;
  std::size_t points = 0;  // parameter values evaluated
};

// Core sweep: `calibrate` builds the market for a parameter value.
//
// Parameter points are independent by construction (each calibrates its
// own Market), so they run in parallel: one task per point, `threads`
// workers (0 = MANYTIERS_THREADS env override / hardware concurrency).
// `calibrate` must be safe to call concurrently from multiple threads.
// Each point's series lands in its own slot and the min/max reduction
// runs serially in parameter order afterwards, so results are
// bit-identical at every thread count.
SweepResult sweep_captures(
    std::span<const double> parameter_values,
    const std::function<Market(double)>& calibrate, Strategy strategy,
    std::size_t max_bundles, std::size_t threads = 0);

struct SensitivityInputs {
  const workload::FlowSet* flows = nullptr;  // not owned
  const cost::CostModel* cost_model = nullptr;
  DemandSpec demand;
  double blended_price = 20.0;
  Strategy strategy = Strategy::ProfitWeighted;
  std::size_t max_bundles = 6;
  std::size_t threads = 0;  // 0 = MANYTIERS_THREADS / hardware concurrency
};

// Fig. 14: sweep the price sensitivity alpha.
SweepResult sweep_alpha(const SensitivityInputs& inputs,
                        std::span<const double> alphas);

// Fig. 15: sweep the blended rate P0.
SweepResult sweep_blended_price(const SensitivityInputs& inputs,
                                std::span<const double> prices);

// Fig. 16: sweep the logit no-purchase share s0 (logit demand only).
SweepResult sweep_no_purchase_share(const SensitivityInputs& inputs,
                                    std::span<const double> shares);

}  // namespace manytiers::pricing
