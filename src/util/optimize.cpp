#include "util/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace manytiers::util {

ScalarOptimum maximize_scalar(const std::function<double(double)>& f,
                              double lo, double hi, double tol, int max_iter) {
  if (!(lo < hi)) throw std::invalid_argument("maximize_scalar: lo must be < hi");
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  int it = 0;
  while (b - a > tol && it < max_iter) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    }
    ++it;
  }
  const double x = (a + b) / 2.0;
  return {x, f(x), it};
}

double find_root(const std::function<double(double)>& f, double lo, double hi,
                 double tol, int max_iter) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("find_root: endpoints do not bracket a root");
  }
  for (int it = 0; it < max_iter && hi - lo > tol; ++it) {
    const double mid = (lo + hi) / 2.0;
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

FixedPointResult fixed_point(const std::function<double(double)>& f, double x0,
                             double tol, int max_iter, double damping) {
  if (damping <= 0.0 || damping > 1.0) {
    throw std::invalid_argument("fixed_point: damping must be in (0, 1]");
  }
  double x = x0;
  for (int it = 1; it <= max_iter; ++it) {
    const double next = (1.0 - damping) * x + damping * f(x);
    if (std::abs(next - x) <= tol * std::max(1.0, std::abs(next))) {
      return {next, it, true};
    }
    x = next;
  }
  return {x, max_iter, false};
}

namespace {

std::vector<double> numeric_gradient(
    const std::function<double(std::span<const double>)>& f,
    std::vector<double>& x, double eps) {
  std::vector<double> g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + eps;
    const double fp = f(x);
    x[i] = orig - eps;
    const double fm = f(x);
    x[i] = orig;
    g[i] = (fp - fm) / (2.0 * eps);
  }
  return g;
}

void project(std::vector<double>& x, const std::vector<double>& lb) {
  if (lb.empty()) return;
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], lb[i]);
}

}  // namespace

GradientAscentResult gradient_ascent(
    const std::function<double(std::span<const double>)>& f,
    std::vector<double> x0, const GradientAscentOptions& opts) {
  if (x0.empty()) throw std::invalid_argument("gradient_ascent: empty start");
  if (!opts.lower_bounds.empty() && opts.lower_bounds.size() != x0.size()) {
    throw std::invalid_argument("gradient_ascent: bound size mismatch");
  }
  project(x0, opts.lower_bounds);
  GradientAscentResult res;
  res.x = std::move(x0);
  res.value = f(res.x);
  // Steps are taken along the *normalized* gradient so the step size is
  // in coordinate units regardless of the objective's scale.
  double step = opts.initial_step;
  int flat_iterations = 0;
  for (int it = 1; it <= opts.max_iter; ++it) {
    res.iterations = it;
    const auto g = numeric_gradient(f, res.x, opts.grad_epsilon);
    double gnorm = 0.0;
    for (double gi : g) gnorm += gi * gi;
    gnorm = std::sqrt(gnorm);
    if (gnorm == 0.0) {
      res.converged = true;
      return res;
    }
    // Backtracking line search, restarting from a healthy step so one
    // cautious iteration does not cripple the rest of the ascent.
    double trial = std::max(step, opts.initial_step);
    bool improved = false;
    for (int bt = 0; bt < 60; ++bt) {
      std::vector<double> cand = res.x;
      for (std::size_t i = 0; i < cand.size(); ++i) {
        cand[i] += trial * g[i] / gnorm;
      }
      project(cand, opts.lower_bounds);
      const double fv = f(cand);
      if (fv > res.value) {
        const double gain = fv - res.value;
        res.x = std::move(cand);
        res.value = fv;
        step = trial * 2.0;
        improved = true;
        // Converge once several consecutive steps improve negligibly.
        if (gain < opts.tol * std::max(1.0, std::abs(res.value))) {
          if (++flat_iterations >= 3) {
            res.converged = true;
            return res;
          }
        } else {
          flat_iterations = 0;
        }
        break;
      }
      trial *= 0.5;
    }
    if (!improved) {
      res.converged = true;  // no ascent direction at this resolution
      return res;
    }
  }
  return res;
}

}  // namespace manytiers::util
