// Curve fitting for the concave cost model (paper Fig. 6).
//
// The paper fits normalized leased-line price vs normalized distance with
// y = a * log_b(x) + c. Note that a and b are not separately identifiable
// (only k = a / ln(b) matters), so the canonical fit estimates (k, c) by
// linear least squares in ln(x) and reports (a, b, c) for a chosen base b.
#pragma once

#include <span>
#include <vector>

namespace manytiers::util {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
  double rmse = 0.0;
};

// Ordinary least squares y = slope*x + intercept.
LinearFit linear_least_squares(std::span<const double> xs,
                               std::span<const double> ys);

struct ConcaveFit {
  // y = a * log_b(x) + c, equivalently y = k*ln(x) + c with k = a/ln(b).
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double k = 0.0;  // slope per natural log
  double r2 = 0.0;
  double rmse = 0.0;

  double evaluate(double x) const;
  // Re-express the same curve with a different log base.
  ConcaveFit with_base(double new_base) const;
};

// Fit y = a*log_b(x) + c to the data. xs must be > 0. `base` chooses the
// reported log base (the curve itself is base-independent).
ConcaveFit fit_concave_log(std::span<const double> xs,
                           std::span<const double> ys, double base = 6.0);

double rmse(std::span<const double> predicted, std::span<const double> actual);
double r_squared(std::span<const double> predicted,
                 std::span<const double> actual);

}  // namespace manytiers::util
