// Numerical optimization primitives.
//
// The pricing engine has closed forms for every profit-maximizing price it
// uses; these routines exist to (a) verify those closed forms in tests,
// (b) solve the logit equal-markup fixed point, and (c) implement the
// paper's gradient-descent pricing heuristic for the logit model (§3.2.2).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace manytiers::util {

struct ScalarOptimum {
  double x = 0.0;
  double value = 0.0;
  int iterations = 0;
};

// Golden-section search for the maximum of a unimodal function on [lo, hi].
ScalarOptimum maximize_scalar(const std::function<double(double)>& f,
                              double lo, double hi, double tol = 1e-10,
                              int max_iter = 500);

// Bisection root-finding on [lo, hi]; f(lo) and f(hi) must bracket a root.
double find_root(const std::function<double(double)>& f, double lo, double hi,
                 double tol = 1e-12, int max_iter = 200);

struct FixedPointResult {
  double x = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Damped fixed-point iteration x <- (1-damping)*x + damping*f(x).
FixedPointResult fixed_point(const std::function<double(double)>& f, double x0,
                             double tol = 1e-12, int max_iter = 10000,
                             double damping = 0.5);

struct GradientAscentOptions {
  double initial_step = 0.1;
  double tol = 1e-9;          // stop when the step's improvement is below tol
  int max_iter = 20000;
  double grad_epsilon = 1e-6; // central-difference step for numeric gradients
  std::vector<double> lower_bounds;  // optional per-coordinate floor
};

struct GradientAscentResult {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Projected gradient ascent with backtracking line search and numeric
// central-difference gradients. This is the "heuristic based on gradient
// descent" of the paper, ascending profit instead of descending loss.
GradientAscentResult gradient_ascent(
    const std::function<double(std::span<const double>)>& f,
    std::vector<double> x0, const GradientAscentOptions& opts = {});

}  // namespace manytiers::util
