#include "util/parallel.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace manytiers::util {

namespace {
thread_local bool t_in_parallel_worker = false;
}  // namespace

bool in_parallel_worker() { return t_in_parallel_worker; }

std::size_t default_thread_count() {
  if (const char* env = std::getenv("MANYTIERS_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  if (n == 0) return;
  if (threads == 0) threads = default_thread_count();
  if (threads > n) threads = n;
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Static contiguous chunking: the first n % threads chunks get one
  // extra index, so chunk boundaries depend only on (n, threads).
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::size_t base = n / threads;
  const std::size_t extra = n % threads;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t size = base + (t < extra ? 1 : 0);
    const std::size_t end = begin + size;
    workers.emplace_back([&body, &errors, t, begin, end] {
      t_in_parallel_worker = true;
      try {
        // Trace row per worker ordinal (tid = t + 1; 0 is the spawning
        // thread): sequential parallel_for calls reuse the same rows,
        // so a sweep renders as utilization bars with stragglers
        // visible as the longest chunk span. Costs one relaxed load
        // when tracing is off.
        const obs::Span span(
            "parallel_for.chunk",
            obs::Tracer::instance().active()
                ? "{\"begin\":" + std::to_string(begin) +
                      ",\"end\":" + std::to_string(end) + "}"
                : std::string(),
            static_cast<long>(t) + 1);
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
    begin = end;
  }
  for (auto& w : workers) w.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace manytiers::util
