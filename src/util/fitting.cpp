#include "util/fitting.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/stats.hpp"

namespace manytiers::util {

namespace {
void require_same_nonempty(std::span<const double> xs,
                           std::span<const double> ys, const char* what) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument(std::string(what) +
                                ": inputs must be equal-size and non-empty");
  }
}
}  // namespace

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  require_same_nonempty(predicted, actual, "rmse");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    acc += e * e;
  }
  return std::sqrt(acc / double(predicted.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  require_same_nonempty(predicted, actual, "r_squared");
  const double m = mean(actual);
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - m) * (actual[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

LinearFit linear_least_squares(std::span<const double> xs,
                               std::span<const double> ys) {
  require_same_nonempty(xs, ys, "linear_least_squares");
  const double mx = mean(xs), my = mean(ys);
  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  LinearFit fit;
  fit.slope = sxx == 0.0 ? 0.0 : sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    pred[i] = fit.slope * xs[i] + fit.intercept;
  }
  fit.r2 = r_squared(pred, ys);
  fit.rmse = rmse(pred, ys);
  return fit;
}

double ConcaveFit::evaluate(double x) const {
  if (x <= 0.0) throw std::invalid_argument("ConcaveFit::evaluate: x must be > 0");
  return k * std::log(x) + c;
}

ConcaveFit ConcaveFit::with_base(double new_base) const {
  if (new_base <= 1.0) {
    throw std::invalid_argument("ConcaveFit::with_base: base must be > 1");
  }
  ConcaveFit out = *this;
  out.b = new_base;
  out.a = k * std::log(new_base);
  return out;
}

ConcaveFit fit_concave_log(std::span<const double> xs,
                           std::span<const double> ys, double base) {
  require_same_nonempty(xs, ys, "fit_concave_log");
  if (base <= 1.0) throw std::invalid_argument("fit_concave_log: base must be > 1");
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) {
      throw std::invalid_argument("fit_concave_log: x values must be > 0");
    }
    lx[i] = std::log(xs[i]);
  }
  const LinearFit lin = linear_least_squares(lx, ys);
  ConcaveFit fit;
  fit.k = lin.slope;
  fit.c = lin.intercept;
  fit.b = base;
  fit.a = fit.k * std::log(base);
  fit.r2 = lin.r2;
  fit.rmse = lin.rmse;
  return fit;
}

}  // namespace manytiers::util
