#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace manytiers::util {

namespace {
void require_nonempty(std::span<const double> xs, const char* what) {
  if (xs.empty()) throw std::invalid_argument(std::string(what) + ": empty input");
}
}  // namespace

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return sum(xs) / double(xs.size());
}

double variance(std::span<const double> xs) {
  require_nonempty(xs, "variance");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / double(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) throw std::invalid_argument("cv: mean is zero");
  return stddev(xs) / m;
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  require_nonempty(xs, "weighted_mean");
  if (xs.size() != ws.size()) {
    throw std::invalid_argument("weighted_mean: size mismatch");
  }
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ws[i] < 0.0) throw std::invalid_argument("weighted_mean: negative weight");
    num += xs[i] * ws[i];
    den += ws[i];
  }
  if (den <= 0.0) throw std::invalid_argument("weighted_mean: zero total weight");
  return num / den;
}

double min_value(std::span<const double> xs) {
  require_nonempty(xs, "min_value");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  require_nonempty(xs, "max_value");
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  require_nonempty(xs, "percentile");
  if (q < 0.0 || q > 100.0) throw std::invalid_argument("percentile: q out of range");
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  if (s.size() == 1) return s[0];
  const double pos = q / 100.0 * double(s.size() - 1);
  const std::size_t lo = std::size_t(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - double(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ == 0) throw std::logic_error("RunningStats::variance: no samples");
  return m2_ / double(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  const double m = mean();
  if (m == 0.0) throw std::logic_error("RunningStats::cv: mean is zero");
  return stddev() / m;
}

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

}  // namespace manytiers::util
