#include "util/file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace manytiers::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void write_file_durable(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("cannot create", tmp);
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("cannot write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("cannot fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("cannot rename into place:", path);
  }
}

void touch_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) fail("cannot touch", path);
  // A 1-byte append updates mtime on every filesystem (utimensat-free
  // and immune to coarse timestamp caching); the file stays tiny because
  // each supervisor attempt starts a fresh one.
  const char beat = '.';
  ssize_t n;
  do {
    n = ::write(fd, &beat, 1);
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  if (n < 0) fail("cannot touch", path);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace manytiers::util
