#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/stats.hpp"

namespace manytiers::util {

LognormalParams lognormal_from_mean_cv(double mean, double cv) {
  if (mean <= 0.0) throw std::invalid_argument("lognormal mean must be > 0");
  if (cv <= 0.0) throw std::invalid_argument("lognormal cv must be > 0");
  const double sigma2 = std::log1p(cv * cv);
  LognormalParams p;
  p.sigma = std::sqrt(sigma2);
  p.mu = std::log(mean) - sigma2 / 2.0;
  return p;
}

double Rng::uniform(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("uniform: lo must be < hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo must be <= hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(const LognormalParams& p) {
  return std::lognormal_distribution<double>(p.mu, p.sigma)(engine_);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential rate must be > 0");
  return std::exponential_distribution<double>(rate)(engine_);
}

bool Rng::bernoulli(double p_true) {
  if (p_true < 0.0 || p_true > 1.0) {
    throw std::invalid_argument("bernoulli p must be in [0, 1]");
  }
  return std::bernoulli_distribution(p_true)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("pareto requires xm > 0 and alpha > 0");
  }
  // Inverse-CDF: X = xm / U^(1/alpha).
  const double u = std::uniform_real_distribution<double>(
      std::numeric_limits<double>::min(), 1.0)(engine_);
  return xm / std::pow(u, 1.0 / alpha);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  if (n < 1) throw std::invalid_argument("zipf requires n >= 1");
  if (s < 0.0) throw std::invalid_argument("zipf requires s >= 0");
  // Inverse-CDF over the normalized harmonic weights. O(n) per draw is
  // fine for the workload sizes used here.
  double total = 0.0;
  for (std::int64_t k = 1; k <= n; ++k) total += std::pow(double(k), -s);
  double u = std::uniform_real_distribution<double>(0.0, total)(engine_);
  for (std::int64_t k = 1; k <= n; ++k) {
    u -= std::pow(double(k), -s);
    if (u <= 0.0) return k;
  }
  return n;
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("index: empty range");
  return std::uniform_int_distribution<std::size_t>(0, size - 1)(engine_);
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the salt through splitmix64 so nearby salts decorrelate.
  std::uint64_t z = engine_() + salt + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::vector<double> sample_heavy_tailed(Rng& rng, std::size_t n,
                                        double target_sum, double target_cv) {
  if (n == 0) throw std::invalid_argument("sample_heavy_tailed: n must be > 0");
  if (target_sum <= 0.0 || target_cv <= 0.0) {
    throw std::invalid_argument("sample_heavy_tailed: targets must be > 0");
  }
  const LognormalParams p = lognormal_from_mean_cv(1.0, target_cv);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(p);
  if (n > 1) {
    // Power-transform in log space so the sample log-stddev matches the
    // lognormal's target log-stddev; for lognormal data this pins the CV.
    std::vector<double> lx(n);
    std::transform(xs.begin(), xs.end(), lx.begin(),
                   [](double v) { return std::log(v); });
    const double sd = stddev(lx);
    if (sd > 1e-12) {
      const double t = p.sigma / sd;
      for (auto& x : xs) x = std::pow(x, t);
    }
  }
  const double sum = std::accumulate(xs.begin(), xs.end(), 0.0);
  const double scale = target_sum / sum;
  for (auto& x : xs) x *= scale;
  return xs;
}

}  // namespace manytiers::util
