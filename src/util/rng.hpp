// Deterministic random number generation for workload synthesis.
//
// Every source of randomness in manytiers flows through an explicitly
// seeded Rng so that datasets, NetFlow traces, and experiments are fully
// reproducible: the same seed always yields the same bytes.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace manytiers::util {

// Parameters of a lognormal distribution expressed in log space.
struct LognormalParams {
  double mu = 0.0;     // mean of ln(X)
  double sigma = 1.0;  // stddev of ln(X)
};

// Solve for lognormal parameters that produce a given arithmetic mean and
// coefficient of variation. For a lognormal, mean = exp(mu + sigma^2/2)
// and cv^2 = exp(sigma^2) - 1.
LognormalParams lognormal_from_mean_cv(double mean, double cv);

// Seeded pseudo-random generator with the distributions the workload
// generators need. Thin wrapper over std::mt19937_64; cheap to copy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Standard distributions.
  double normal(double mean, double stddev);
  double lognormal(const LognormalParams& p);
  double exponential(double rate);
  bool bernoulli(double p_true);
  // Pareto with scale xm > 0 and shape alpha > 0 (support [xm, inf)).
  double pareto(double xm, double alpha);
  // Zipf-distributed rank in [1, n] with exponent s >= 0 (s = 0 is uniform).
  std::int64_t zipf(std::int64_t n, double s);

  // Pick a uniformly random index into a container of the given size.
  std::size_t index(std::size_t size);

  // Derive an independent child generator; deterministic in (seed, salt).
  Rng fork(std::uint64_t salt);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// Draw `n` lognormal samples, then rescale so the *sample* sum equals
// `target_sum` and power-transform so the sample CV closely matches
// `target_cv`. Used to hit the paper's Table 1 moments on finite samples.
std::vector<double> sample_heavy_tailed(Rng& rng, std::size_t n,
                                        double target_sum, double target_cv);

}  // namespace manytiers::util
