#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace manytiers::util {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one decimal digit for clarity.
  if (s.find('.') != std::string::npos) {
    while (s.size() > 1 && s.back() == '0' &&
           s[s.size() - 2] != '.') {
      s.pop_back();
    }
  }
  return s;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size());
  for (double c : cells) out.push_back(format_double(c, precision));
  add_row(std::move(out));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& cells, int precision) {
  std::vector<std::string> out;
  out.reserve(cells.size() + 1);
  out.push_back(label);
  for (double c : cells) out.push_back(format_double(c, precision));
  add_row(std::move(out));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(int(widths[c])) << cells[c];
      if (c + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[c];
      if (quote) os << '"';
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace manytiers::util
