// Descriptive statistics used throughout the model-fitting pipeline and
// the Table 1 dataset characterization.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace manytiers::util {

double sum(std::span<const double> xs);
double mean(std::span<const double> xs);
// Population variance / stddev (divide by n); the paper's CV figures are
// descriptive statistics of full datasets, not sample estimates.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
// Coefficient of variation: stddev / mean. Requires mean != 0.
double coefficient_of_variation(std::span<const double> xs);

// Weighted statistics; weights must be non-negative and sum > 0.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

// Linear-interpolated percentile, q in [0, 100].
double percentile(std::span<const double> xs, double q);

// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double stddev() const;
  double cv() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace manytiers::util
