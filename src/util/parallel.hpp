// Minimal fork-join parallelism for the sweep/counterfactual hot paths.
//
// `parallel_for` runs `body(i)` for i in [0, n) across worker threads
// with static contiguous chunking: thread t owns one contiguous index
// range, so two runs with the same thread count touch the same data in
// the same per-thread order. Callers that want thread-count-independent
// results (the sweep engine does) write into a pre-sized output slot per
// index and reduce serially afterwards — the reduction order is then the
// index order regardless of how many threads ran.
//
// Thread count resolution: an explicit `threads` argument wins; 0 defers
// to the MANYTIERS_THREADS environment variable; failing that,
// std::thread::hardware_concurrency(). Exceptions thrown by `body`
// propagate to the caller (the first one in chunk order; remaining
// chunks still finish, so partially-written outputs are never observed
// mid-flight).
#pragma once

#include <cstddef>
#include <functional>

namespace manytiers::util {

// Worker count used when `threads == 0`: MANYTIERS_THREADS if set to a
// positive integer, otherwise hardware_concurrency(), never less than 1.
std::size_t default_thread_count();

// Run body(i) for every i in [0, n). `threads == 0` means
// default_thread_count(); `threads == 1` (or n <= 1) runs inline with no
// thread spawned at all, so the serial path is exactly a plain loop.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

// True when the calling thread is a parallel_for worker. Inner layers
// (e.g. the bundling DP kernel) use this to stay serial instead of
// fanning out nested thread pools when the sweep engine already owns
// the cores. The inline `threads <= 1` path does not set it — a serial
// outer loop leaves inner layers free to parallelize.
bool in_parallel_worker();

}  // namespace manytiers::util
