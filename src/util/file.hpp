// Durable small-file IO for report artifacts.
//
// Batch workers and the shard orchestrator exchange results through
// files; a worker that is killed mid-write must never leave a file a
// reader could mistake for a complete report. write_file_durable gives
// the POSIX guarantee: the content is written to a sibling temp file,
// flushed and fsync'ed, then renamed over the destination — a reader
// sees either the old content or the new, never a torn prefix.
#pragma once

#include <string>
#include <string_view>

namespace manytiers::util {

// Write `content` to `path` atomically and durably (temp file + fsync +
// rename). Throws std::runtime_error on any IO failure; on failure the
// destination is untouched.
void write_file_durable(const std::string& path, std::string_view content);

// Create `path` if missing and bump its modification time to now — the
// heartbeat primitive: a worker touches its per-attempt heartbeat file
// on an interval, and the supervisor reads the mtime to distinguish a
// slow-but-alive worker from a hung one. Deliberately not fsync'ed: a
// heartbeat is a liveness signal, not data. Throws std::runtime_error
// when the file cannot be created.
void touch_file(const std::string& path);

// Slurp a whole file. Throws std::runtime_error if it cannot be opened.
std::string read_file(const std::string& path);

}  // namespace manytiers::util
