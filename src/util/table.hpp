// Plain-text table rendering for benchmark and example output.
//
// Every bench binary reproduces a paper table or figure as an aligned text
// table (and optionally CSV) so the series can be compared to the paper
// directly or piped into a plotting tool.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace manytiers::util {

// Format a double with fixed precision, trimming to a compact form.
std::string format_double(double value, int precision = 3);

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Convenience: numeric row formatted at the given precision.
  void add_row(const std::vector<double>& cells, int precision = 3);
  // Mixed row: first cell is a label, remaining cells numeric.
  void add_row(const std::string& label, const std::vector<double>& cells,
               int precision = 3);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return headers_.size(); }

  // Render with aligned columns, a header underline, and a trailing newline.
  void print(std::ostream& os) const;
  // Render as RFC-4180-ish CSV (quotes around cells containing commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace manytiers::util
