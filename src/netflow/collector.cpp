#include "netflow/collector.hpp"

#include <stdexcept>

namespace manytiers::netflow {

Collector::Collector(std::uint32_t sampling_rate)
    : sampling_rate_(sampling_rate) {
  if (sampling_rate_ == 0) {
    throw std::invalid_argument("Collector: sampling rate must be >= 1");
  }
}

void Collector::ingest(const FlowRecord& record) {
  if (record.sampled_packets == 0) {
    throw std::invalid_argument("Collector::ingest: empty record");
  }
  ++records_ingested_;
  auto& best = best_[record.key];
  ++best.routers_seen;
  // Keep the router observation with the most sampled packets: with
  // independent 1-in-N sampling it has the lowest relative error, and
  // keeping exactly one observation avoids double counting.
  if (record.sampled_packets > best.sampled_packets) {
    best.sampled_packets = record.sampled_packets;
    best.sampled_bytes = record.sampled_bytes;
  }
}

void Collector::ingest(std::span<const FlowRecord> records) {
  for (const auto& r : records) ingest(r);
}

std::vector<AggregatedFlow> Collector::aggregate() const {
  std::vector<AggregatedFlow> out;
  out.reserve(best_.size());
  for (const auto& [key, best] : best_) {
    AggregatedFlow f;
    f.key = key;
    f.estimated_bytes = best.sampled_bytes * sampling_rate_;
    f.estimated_packets = best.sampled_packets * sampling_rate_;
    f.routers_seen = best.routers_seen;
    out.push_back(f);
  }
  return out;
}

std::uint64_t Collector::total_estimated_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [key, best] : best_) {
    total += best.sampled_bytes * sampling_rate_;
  }
  return total;
}

double bytes_to_mbps(std::uint64_t bytes, std::uint32_t window_seconds) {
  if (window_seconds == 0) {
    throw std::invalid_argument("bytes_to_mbps: window must be >= 1s");
  }
  return double(bytes) * 8.0 / 1e6 / double(window_seconds);
}

}  // namespace manytiers::netflow
