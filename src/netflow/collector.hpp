// Flow collection: de-duplicate multi-router records and estimate demand.
//
// Reproduces the paper's aggregation step (§4.1.1): "We obtain the demand
// for each flow by aggregating all records of the flow, while ensuring
// that we do not double-count records that are duplicated on different
// routers." For each flow key we keep one router's observation (the one
// with the most sampled packets — the best estimate) and scale it by the
// sampling rate.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "netflow/record.hpp"

namespace manytiers::netflow {

// Demand estimate for one flow after de-duplication and scale-up.
struct AggregatedFlow {
  FlowKey key;
  std::uint64_t estimated_bytes = 0;
  std::uint64_t estimated_packets = 0;
  std::uint32_t routers_seen = 0;  // how many routers exported this flow
};

class Collector {
 public:
  explicit Collector(std::uint32_t sampling_rate);

  void ingest(const FlowRecord& record);
  void ingest(std::span<const FlowRecord> records);

  // De-duplicated, scaled-up demand estimates, ordered by flow key.
  std::vector<AggregatedFlow> aggregate() const;

  // Total estimated bytes across all flows (after de-duplication).
  std::uint64_t total_estimated_bytes() const;

  std::size_t record_count() const { return records_ingested_; }
  std::size_t flow_count() const { return best_.size(); }

 private:
  struct Best {
    std::uint64_t sampled_bytes = 0;
    std::uint64_t sampled_packets = 0;
    std::uint32_t routers_seen = 0;
  };
  std::uint32_t sampling_rate_;
  std::size_t records_ingested_ = 0;
  std::map<FlowKey, Best> best_;
};

// Convert an aggregate byte count over a capture window to Mbps.
double bytes_to_mbps(std::uint64_t bytes, std::uint32_t window_seconds);

}  // namespace manytiers::netflow
