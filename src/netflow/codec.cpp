#include "netflow/codec.hpp"

#include <limits>
#include <stdexcept>

namespace manytiers::netflow {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(std::uint8_t(v >> 8));
  out.push_back(std::uint8_t(v & 0xff));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(std::uint8_t(v >> 24));
  out.push_back(std::uint8_t((v >> 16) & 0xff));
  out.push_back(std::uint8_t((v >> 8) & 0xff));
  out.push_back(std::uint8_t(v & 0xff));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return std::uint16_t((std::uint16_t(in[at]) << 8) | in[at + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return (std::uint32_t(in[at]) << 24) | (std::uint32_t(in[at + 1]) << 16) |
         (std::uint32_t(in[at + 2]) << 8) | std::uint32_t(in[at + 3]);
}

std::uint32_t clamp32(std::uint64_t v) {
  return v > std::numeric_limits<std::uint32_t>::max()
             ? std::numeric_limits<std::uint32_t>::max()
             : std::uint32_t(v);
}

}  // namespace

std::vector<std::uint8_t> encode_v5_packet(std::span<const FlowRecord> records,
                                           const V5PacketOptions& options) {
  if (records.empty() || records.size() > kV5MaxRecords) {
    throw std::invalid_argument(
        "encode_v5_packet: record count must be in [1, 30]");
  }
  if (options.sampling_rate >= (1u << 14)) {
    throw std::invalid_argument(
        "encode_v5_packet: sampling rate must fit in 14 bits");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kV5HeaderBytes + records.size() * kV5RecordBytes);
  // --- header ---
  put16(out, 5);  // version
  put16(out, std::uint16_t(records.size()));
  put32(out, options.sys_uptime_ms);
  put32(out, options.unix_secs);
  put32(out, 0);  // unix_nsecs
  put32(out, options.flow_sequence);
  out.push_back(0);  // engine_type
  out.push_back(options.engine_id);
  // sampling mode (2 bits, 01 = packet interval) + 14-bit interval.
  put16(out, std::uint16_t((1u << 14) | options.sampling_rate));
  // --- records ---
  for (const auto& r : records) {
    if (r.router > 0xffff) {
      throw std::invalid_argument(
          "encode_v5_packet: router id must fit the 16-bit ifIndex field");
    }
    put32(out, r.key.src_ip);
    put32(out, r.key.dst_ip);
    put32(out, 0);  // nexthop
    put16(out, std::uint16_t(r.router));  // input ifIndex carries router id
    put16(out, 0);                        // output ifIndex
    put32(out, clamp32(r.sampled_packets));
    put32(out, clamp32(r.sampled_bytes));
    put32(out, clamp32(std::uint64_t(r.first_seen_s) * 1000));
    put32(out, clamp32(std::uint64_t(r.last_seen_s) * 1000));
    put16(out, r.key.src_port);
    put16(out, r.key.dst_port);
    out.push_back(0);  // pad1
    out.push_back(0);  // tcp_flags
    out.push_back(r.key.protocol);
    out.push_back(0);  // tos
    put16(out, 0);     // src_as
    put16(out, 0);     // dst_as
    out.push_back(0);  // src_mask
    out.push_back(0);  // dst_mask
    put16(out, 0);     // pad2
  }
  return out;
}

DecodedV5Packet decode_v5_packet(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kV5HeaderBytes) {
    throw std::invalid_argument("decode_v5_packet: truncated header");
  }
  const std::uint16_t version = get16(bytes, 0);
  if (version != 5) {
    throw std::invalid_argument("decode_v5_packet: not a NetFlow v5 packet");
  }
  const std::uint16_t count = get16(bytes, 2);
  if (count == 0 || count > kV5MaxRecords) {
    throw std::invalid_argument("decode_v5_packet: bad record count");
  }
  if (bytes.size() != kV5HeaderBytes + std::size_t(count) * kV5RecordBytes) {
    throw std::invalid_argument("decode_v5_packet: length/count mismatch");
  }
  DecodedV5Packet out;
  out.header.sys_uptime_ms = get32(bytes, 4);
  out.header.unix_secs = get32(bytes, 8);
  out.header.flow_sequence = get32(bytes, 16);
  out.header.engine_id = bytes[21];
  out.header.sampling_rate = std::uint16_t(get16(bytes, 22) & 0x3fff);
  out.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t at = kV5HeaderBytes + i * kV5RecordBytes;
    FlowRecord r;
    r.key.src_ip = get32(bytes, at);
    r.key.dst_ip = get32(bytes, at + 4);
    r.router = get16(bytes, at + 12);
    r.sampled_packets = get32(bytes, at + 16);
    r.sampled_bytes = get32(bytes, at + 20);
    r.first_seen_s = get32(bytes, at + 24) / 1000;
    r.last_seen_s = get32(bytes, at + 28) / 1000;
    r.key.src_port = get16(bytes, at + 32);
    r.key.dst_port = get16(bytes, at + 34);
    r.key.protocol = bytes[at + 38];
    out.records.push_back(r);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> encode_v5_trace(
    std::span<const FlowRecord> records, V5PacketOptions options) {
  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t at = 0; at < records.size(); at += kV5MaxRecords) {
    const std::size_t n = std::min(kV5MaxRecords, records.size() - at);
    packets.push_back(encode_v5_packet(records.subspan(at, n), options));
    options.flow_sequence += std::uint32_t(n);
  }
  return packets;
}

}  // namespace manytiers::netflow
