// NetFlow v5 wire format.
//
// The paper's datasets are sampled NetFlow collected from core routers;
// this codec speaks the actual Cisco NetFlow v5 export format (24-byte
// header + 48-byte records, big-endian) so the collector can ingest real
// exporter packets. Mapping notes:
//   * the router id travels in the record's input-interface field (v5
//     only carries a 16-bit ifIndex, so router ids must fit 16 bits);
//   * sampled packet/byte counts go to dPkts/dOctets;
//   * first/last-seen seconds are carried as SysUptime milliseconds;
//   * the 1-in-N sampling rate uses the header's 14-bit sampling field.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netflow/record.hpp"

namespace manytiers::netflow {

inline constexpr std::size_t kV5HeaderBytes = 24;
inline constexpr std::size_t kV5RecordBytes = 48;
inline constexpr std::size_t kV5MaxRecords = 30;  // per the v5 spec

struct V5PacketOptions {
  std::uint32_t sys_uptime_ms = 0;
  std::uint32_t unix_secs = 0;
  std::uint32_t flow_sequence = 0;  // sequence of the first record
  std::uint8_t engine_id = 0;
  std::uint16_t sampling_rate = 1;  // 1-in-N; must fit 14 bits
};

struct DecodedV5Packet {
  V5PacketOptions header;
  std::vector<FlowRecord> records;
};

// Encode at most kV5MaxRecords records into one export packet.
// Throws std::invalid_argument on too many records, a router id over
// 16 bits, or a sampling rate over 14 bits.
std::vector<std::uint8_t> encode_v5_packet(std::span<const FlowRecord> records,
                                           const V5PacketOptions& options);

// Decode one packet. Throws std::invalid_argument on truncated input,
// a non-v5 version field, or a count/length mismatch.
DecodedV5Packet decode_v5_packet(std::span<const std::uint8_t> bytes);

// Chunk an arbitrary record stream into consecutive v5 packets,
// maintaining the flow sequence across packets.
std::vector<std::vector<std::uint8_t>> encode_v5_trace(
    std::span<const FlowRecord> records, V5PacketOptions options);

}  // namespace manytiers::netflow
