// NetFlow-style flow records.
//
// The paper's demand data is sampled NetFlow from core routers (§4.1.1);
// this module models the records themselves. A GroundTruthFlow is the real
// traffic between two endpoints; routers observe it through packet
// sampling and export FlowRecords.
#pragma once

#include <cstdint>
#include <tuple>

namespace manytiers::netflow {

using RouterId = std::uint32_t;

// Identity of a flow: the classic 5-tuple.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP by default

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

// Actual traffic between two endpoints over the capture window.
struct GroundTruthFlow {
  FlowKey key;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

// A record exported by one router, after packet sampling. `bytes` and
// `packets` are the *sampled* counts (not yet scaled by the sampling rate).
struct FlowRecord {
  FlowKey key;
  RouterId router = 0;
  std::uint64_t sampled_bytes = 0;
  std::uint64_t sampled_packets = 0;
  std::uint32_t first_seen_s = 0;  // seconds into the capture window
  std::uint32_t last_seen_s = 0;
};

}  // namespace manytiers::netflow
