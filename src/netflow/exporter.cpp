#include "netflow/exporter.hpp"

#include <stdexcept>

namespace manytiers::netflow {

SampledExporter::SampledExporter(ExporterConfig config, util::Rng rng)
    : config_(config), rng_(rng) {
  if (config_.sampling_rate == 0) {
    throw std::invalid_argument("SampledExporter: sampling rate must be >= 1");
  }
  if (config_.window_seconds == 0) {
    throw std::invalid_argument("SampledExporter: window must be >= 1s");
  }
}

std::vector<FlowRecord> SampledExporter::export_flow(
    const GroundTruthFlow& flow, std::span<const RouterId> path) {
  if (flow.packets == 0 || flow.bytes < flow.packets) {
    throw std::invalid_argument(
        "export_flow: flow needs packets >= 1 and bytes >= packets");
  }
  std::vector<FlowRecord> out;
  const double p = 1.0 / double(config_.sampling_rate);
  const double bytes_per_packet = double(flow.bytes) / double(flow.packets);
  for (const RouterId router : path) {
    // Binomial thinning of the packet stream. For the large packet counts
    // typical here a normal approximation would do, but exact binomial via
    // std::binomial_distribution is cheap enough and exact for small flows.
    std::binomial_distribution<std::uint64_t> dist(flow.packets, p);
    const std::uint64_t sampled = dist(rng_.engine());
    if (sampled == 0) continue;
    FlowRecord rec;
    rec.key = flow.key;
    rec.router = router;
    rec.sampled_packets = sampled;
    rec.sampled_bytes = std::uint64_t(double(sampled) * bytes_per_packet);
    rec.first_seen_s = 0;
    rec.last_seen_s = config_.window_seconds;
    out.push_back(rec);
  }
  return out;
}

std::vector<FlowRecord> SampledExporter::export_trace(
    std::span<const GroundTruthFlow> flows,
    std::span<const std::vector<RouterId>> paths) {
  if (flows.size() != paths.size()) {
    throw std::invalid_argument("export_trace: flows/paths size mismatch");
  }
  std::vector<FlowRecord> out;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    auto recs = export_flow(flows[i], paths[i]);
    out.insert(out.end(), recs.begin(), recs.end());
  }
  return out;
}

}  // namespace manytiers::netflow
