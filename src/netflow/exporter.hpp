// Sampled NetFlow export.
//
// Simulates 1-in-N packet sampling at each router a flow traverses: each
// router independently samples the flow's packets, so the same flow shows
// up in several routers' exports with slightly different estimates —
// exactly the duplication the paper's pipeline must not double-count.
#pragma once

#include <span>
#include <vector>

#include "netflow/record.hpp"
#include "util/rng.hpp"

namespace manytiers::netflow {

struct ExporterConfig {
  std::uint32_t sampling_rate = 100;  // 1-in-N packet sampling
  std::uint32_t window_seconds = 86400;
};

class SampledExporter {
 public:
  SampledExporter(ExporterConfig config, util::Rng rng);

  // Export the records that the routers in `path` would emit for `flow`.
  // Routers that sample zero packets emit no record.
  std::vector<FlowRecord> export_flow(const GroundTruthFlow& flow,
                                      std::span<const RouterId> path);

  // Export a whole trace: every flow crosses its own router path.
  std::vector<FlowRecord> export_trace(
      std::span<const GroundTruthFlow> flows,
      std::span<const std::vector<RouterId>> paths);

  const ExporterConfig& config() const { return config_; }

 private:
  ExporterConfig config_;
  util::Rng rng_;
};

}  // namespace manytiers::netflow
