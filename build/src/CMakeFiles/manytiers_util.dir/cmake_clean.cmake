file(REMOVE_RECURSE
  "CMakeFiles/manytiers_util.dir/util/fitting.cpp.o"
  "CMakeFiles/manytiers_util.dir/util/fitting.cpp.o.d"
  "CMakeFiles/manytiers_util.dir/util/optimize.cpp.o"
  "CMakeFiles/manytiers_util.dir/util/optimize.cpp.o.d"
  "CMakeFiles/manytiers_util.dir/util/rng.cpp.o"
  "CMakeFiles/manytiers_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/manytiers_util.dir/util/stats.cpp.o"
  "CMakeFiles/manytiers_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/manytiers_util.dir/util/table.cpp.o"
  "CMakeFiles/manytiers_util.dir/util/table.cpp.o.d"
  "libmanytiers_util.a"
  "libmanytiers_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
