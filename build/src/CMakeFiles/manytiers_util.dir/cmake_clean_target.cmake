file(REMOVE_RECURSE
  "libmanytiers_util.a"
)
