# Empty dependencies file for manytiers_util.
# This may be replaced when dependencies are built.
