file(REMOVE_RECURSE
  "libmanytiers_bundling.a"
)
