file(REMOVE_RECURSE
  "CMakeFiles/manytiers_bundling.dir/bundling/bundle.cpp.o"
  "CMakeFiles/manytiers_bundling.dir/bundling/bundle.cpp.o.d"
  "CMakeFiles/manytiers_bundling.dir/bundling/optimal.cpp.o"
  "CMakeFiles/manytiers_bundling.dir/bundling/optimal.cpp.o.d"
  "CMakeFiles/manytiers_bundling.dir/bundling/strategies.cpp.o"
  "CMakeFiles/manytiers_bundling.dir/bundling/strategies.cpp.o.d"
  "libmanytiers_bundling.a"
  "libmanytiers_bundling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
