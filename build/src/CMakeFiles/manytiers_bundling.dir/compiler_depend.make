# Empty compiler generated dependencies file for manytiers_bundling.
# This may be replaced when dependencies are built.
