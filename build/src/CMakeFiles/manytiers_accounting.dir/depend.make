# Empty dependencies file for manytiers_accounting.
# This may be replaced when dependencies are built.
