file(REMOVE_RECURSE
  "libmanytiers_accounting.a"
)
