file(REMOVE_RECURSE
  "CMakeFiles/manytiers_accounting.dir/accounting/bgp_codec.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/bgp_codec.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/billing.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/billing.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/commit.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/commit.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/flow_acct.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/flow_acct.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/link_acct.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/link_acct.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/policy.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/policy.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/route.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/route.cpp.o.d"
  "CMakeFiles/manytiers_accounting.dir/accounting/session.cpp.o"
  "CMakeFiles/manytiers_accounting.dir/accounting/session.cpp.o.d"
  "libmanytiers_accounting.a"
  "libmanytiers_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
