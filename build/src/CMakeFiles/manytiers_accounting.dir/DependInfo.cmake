
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/bgp_codec.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/bgp_codec.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/bgp_codec.cpp.o.d"
  "/root/repo/src/accounting/billing.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/billing.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/billing.cpp.o.d"
  "/root/repo/src/accounting/commit.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/commit.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/commit.cpp.o.d"
  "/root/repo/src/accounting/flow_acct.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/flow_acct.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/flow_acct.cpp.o.d"
  "/root/repo/src/accounting/link_acct.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/link_acct.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/link_acct.cpp.o.d"
  "/root/repo/src/accounting/policy.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/policy.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/policy.cpp.o.d"
  "/root/repo/src/accounting/route.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/route.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/route.cpp.o.d"
  "/root/repo/src/accounting/session.cpp" "src/CMakeFiles/manytiers_accounting.dir/accounting/session.cpp.o" "gcc" "src/CMakeFiles/manytiers_accounting.dir/accounting/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_pricing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_bundling.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_demand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
