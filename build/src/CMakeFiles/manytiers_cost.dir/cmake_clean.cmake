file(REMOVE_RECURSE
  "CMakeFiles/manytiers_cost.dir/cost/concave.cpp.o"
  "CMakeFiles/manytiers_cost.dir/cost/concave.cpp.o.d"
  "CMakeFiles/manytiers_cost.dir/cost/cost.cpp.o"
  "CMakeFiles/manytiers_cost.dir/cost/cost.cpp.o.d"
  "CMakeFiles/manytiers_cost.dir/cost/dest_type.cpp.o"
  "CMakeFiles/manytiers_cost.dir/cost/dest_type.cpp.o.d"
  "CMakeFiles/manytiers_cost.dir/cost/linear.cpp.o"
  "CMakeFiles/manytiers_cost.dir/cost/linear.cpp.o.d"
  "CMakeFiles/manytiers_cost.dir/cost/regional.cpp.o"
  "CMakeFiles/manytiers_cost.dir/cost/regional.cpp.o.d"
  "libmanytiers_cost.a"
  "libmanytiers_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
