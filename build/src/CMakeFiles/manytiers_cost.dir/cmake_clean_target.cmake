file(REMOVE_RECURSE
  "libmanytiers_cost.a"
)
