# Empty dependencies file for manytiers_cost.
# This may be replaced when dependencies are built.
