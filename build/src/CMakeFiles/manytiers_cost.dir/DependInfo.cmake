
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/concave.cpp" "src/CMakeFiles/manytiers_cost.dir/cost/concave.cpp.o" "gcc" "src/CMakeFiles/manytiers_cost.dir/cost/concave.cpp.o.d"
  "/root/repo/src/cost/cost.cpp" "src/CMakeFiles/manytiers_cost.dir/cost/cost.cpp.o" "gcc" "src/CMakeFiles/manytiers_cost.dir/cost/cost.cpp.o.d"
  "/root/repo/src/cost/dest_type.cpp" "src/CMakeFiles/manytiers_cost.dir/cost/dest_type.cpp.o" "gcc" "src/CMakeFiles/manytiers_cost.dir/cost/dest_type.cpp.o.d"
  "/root/repo/src/cost/linear.cpp" "src/CMakeFiles/manytiers_cost.dir/cost/linear.cpp.o" "gcc" "src/CMakeFiles/manytiers_cost.dir/cost/linear.cpp.o.d"
  "/root/repo/src/cost/regional.cpp" "src/CMakeFiles/manytiers_cost.dir/cost/regional.cpp.o" "gcc" "src/CMakeFiles/manytiers_cost.dir/cost/regional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
