file(REMOVE_RECURSE
  "libmanytiers_geo.a"
)
