file(REMOVE_RECURSE
  "CMakeFiles/manytiers_geo.dir/geo/cities.cpp.o"
  "CMakeFiles/manytiers_geo.dir/geo/cities.cpp.o.d"
  "CMakeFiles/manytiers_geo.dir/geo/coord.cpp.o"
  "CMakeFiles/manytiers_geo.dir/geo/coord.cpp.o.d"
  "CMakeFiles/manytiers_geo.dir/geo/geoip.cpp.o"
  "CMakeFiles/manytiers_geo.dir/geo/geoip.cpp.o.d"
  "CMakeFiles/manytiers_geo.dir/geo/region.cpp.o"
  "CMakeFiles/manytiers_geo.dir/geo/region.cpp.o.d"
  "libmanytiers_geo.a"
  "libmanytiers_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
