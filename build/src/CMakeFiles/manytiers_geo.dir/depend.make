# Empty dependencies file for manytiers_geo.
# This may be replaced when dependencies are built.
