
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/cities.cpp" "src/CMakeFiles/manytiers_geo.dir/geo/cities.cpp.o" "gcc" "src/CMakeFiles/manytiers_geo.dir/geo/cities.cpp.o.d"
  "/root/repo/src/geo/coord.cpp" "src/CMakeFiles/manytiers_geo.dir/geo/coord.cpp.o" "gcc" "src/CMakeFiles/manytiers_geo.dir/geo/coord.cpp.o.d"
  "/root/repo/src/geo/geoip.cpp" "src/CMakeFiles/manytiers_geo.dir/geo/geoip.cpp.o" "gcc" "src/CMakeFiles/manytiers_geo.dir/geo/geoip.cpp.o.d"
  "/root/repo/src/geo/region.cpp" "src/CMakeFiles/manytiers_geo.dir/geo/region.cpp.o" "gcc" "src/CMakeFiles/manytiers_geo.dir/geo/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
