# Empty dependencies file for manytiers_market.
# This may be replaced when dependencies are built.
