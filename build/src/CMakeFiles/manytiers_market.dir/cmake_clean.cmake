file(REMOVE_RECURSE
  "CMakeFiles/manytiers_market.dir/market/competition.cpp.o"
  "CMakeFiles/manytiers_market.dir/market/competition.cpp.o.d"
  "libmanytiers_market.a"
  "libmanytiers_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
