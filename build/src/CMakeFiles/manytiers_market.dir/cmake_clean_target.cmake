file(REMOVE_RECURSE
  "libmanytiers_market.a"
)
