# Empty compiler generated dependencies file for manytiers_netflow.
# This may be replaced when dependencies are built.
