
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netflow/codec.cpp" "src/CMakeFiles/manytiers_netflow.dir/netflow/codec.cpp.o" "gcc" "src/CMakeFiles/manytiers_netflow.dir/netflow/codec.cpp.o.d"
  "/root/repo/src/netflow/collector.cpp" "src/CMakeFiles/manytiers_netflow.dir/netflow/collector.cpp.o" "gcc" "src/CMakeFiles/manytiers_netflow.dir/netflow/collector.cpp.o.d"
  "/root/repo/src/netflow/exporter.cpp" "src/CMakeFiles/manytiers_netflow.dir/netflow/exporter.cpp.o" "gcc" "src/CMakeFiles/manytiers_netflow.dir/netflow/exporter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
