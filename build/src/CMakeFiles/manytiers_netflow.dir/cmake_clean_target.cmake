file(REMOVE_RECURSE
  "libmanytiers_netflow.a"
)
