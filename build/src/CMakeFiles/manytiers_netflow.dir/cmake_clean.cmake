file(REMOVE_RECURSE
  "CMakeFiles/manytiers_netflow.dir/netflow/codec.cpp.o"
  "CMakeFiles/manytiers_netflow.dir/netflow/codec.cpp.o.d"
  "CMakeFiles/manytiers_netflow.dir/netflow/collector.cpp.o"
  "CMakeFiles/manytiers_netflow.dir/netflow/collector.cpp.o.d"
  "CMakeFiles/manytiers_netflow.dir/netflow/exporter.cpp.o"
  "CMakeFiles/manytiers_netflow.dir/netflow/exporter.cpp.o.d"
  "libmanytiers_netflow.a"
  "libmanytiers_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
