# Empty dependencies file for manytiers_pricing.
# This may be replaced when dependencies are built.
