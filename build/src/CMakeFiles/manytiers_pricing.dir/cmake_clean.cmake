file(REMOVE_RECURSE
  "CMakeFiles/manytiers_pricing.dir/pricing/counterfactual.cpp.o"
  "CMakeFiles/manytiers_pricing.dir/pricing/counterfactual.cpp.o.d"
  "CMakeFiles/manytiers_pricing.dir/pricing/engine.cpp.o"
  "CMakeFiles/manytiers_pricing.dir/pricing/engine.cpp.o.d"
  "CMakeFiles/manytiers_pricing.dir/pricing/scenario.cpp.o"
  "CMakeFiles/manytiers_pricing.dir/pricing/scenario.cpp.o.d"
  "CMakeFiles/manytiers_pricing.dir/pricing/sensitivity.cpp.o"
  "CMakeFiles/manytiers_pricing.dir/pricing/sensitivity.cpp.o.d"
  "CMakeFiles/manytiers_pricing.dir/pricing/welfare.cpp.o"
  "CMakeFiles/manytiers_pricing.dir/pricing/welfare.cpp.o.d"
  "libmanytiers_pricing.a"
  "libmanytiers_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
