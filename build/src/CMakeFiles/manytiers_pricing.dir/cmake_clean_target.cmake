file(REMOVE_RECURSE
  "libmanytiers_pricing.a"
)
