# Empty dependencies file for manytiers_topology.
# This may be replaced when dependencies are built.
