
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/dijkstra.cpp" "src/CMakeFiles/manytiers_topology.dir/topology/dijkstra.cpp.o" "gcc" "src/CMakeFiles/manytiers_topology.dir/topology/dijkstra.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/manytiers_topology.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/manytiers_topology.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/internet2.cpp" "src/CMakeFiles/manytiers_topology.dir/topology/internet2.cpp.o" "gcc" "src/CMakeFiles/manytiers_topology.dir/topology/internet2.cpp.o.d"
  "/root/repo/src/topology/utilization.cpp" "src/CMakeFiles/manytiers_topology.dir/topology/utilization.cpp.o" "gcc" "src/CMakeFiles/manytiers_topology.dir/topology/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
