file(REMOVE_RECURSE
  "CMakeFiles/manytiers_topology.dir/topology/dijkstra.cpp.o"
  "CMakeFiles/manytiers_topology.dir/topology/dijkstra.cpp.o.d"
  "CMakeFiles/manytiers_topology.dir/topology/graph.cpp.o"
  "CMakeFiles/manytiers_topology.dir/topology/graph.cpp.o.d"
  "CMakeFiles/manytiers_topology.dir/topology/internet2.cpp.o"
  "CMakeFiles/manytiers_topology.dir/topology/internet2.cpp.o.d"
  "CMakeFiles/manytiers_topology.dir/topology/utilization.cpp.o"
  "CMakeFiles/manytiers_topology.dir/topology/utilization.cpp.o.d"
  "libmanytiers_topology.a"
  "libmanytiers_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
