file(REMOVE_RECURSE
  "libmanytiers_topology.a"
)
