file(REMOVE_RECURSE
  "CMakeFiles/manytiers_workload.dir/workload/diurnal.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/diurnal.cpp.o.d"
  "CMakeFiles/manytiers_workload.dir/workload/flowset.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/flowset.cpp.o.d"
  "CMakeFiles/manytiers_workload.dir/workload/generators.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/generators.cpp.o.d"
  "CMakeFiles/manytiers_workload.dir/workload/gravity.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/gravity.cpp.o.d"
  "CMakeFiles/manytiers_workload.dir/workload/io.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/io.cpp.o.d"
  "CMakeFiles/manytiers_workload.dir/workload/table1.cpp.o"
  "CMakeFiles/manytiers_workload.dir/workload/table1.cpp.o.d"
  "libmanytiers_workload.a"
  "libmanytiers_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
