# Empty compiler generated dependencies file for manytiers_workload.
# This may be replaced when dependencies are built.
