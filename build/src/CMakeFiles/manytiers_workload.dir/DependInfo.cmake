
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/diurnal.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/diurnal.cpp.o.d"
  "/root/repo/src/workload/flowset.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/flowset.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/flowset.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/gravity.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/gravity.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/gravity.cpp.o.d"
  "/root/repo/src/workload/io.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/io.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/io.cpp.o.d"
  "/root/repo/src/workload/table1.cpp" "src/CMakeFiles/manytiers_workload.dir/workload/table1.cpp.o" "gcc" "src/CMakeFiles/manytiers_workload.dir/workload/table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manytiers_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/manytiers_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
