file(REMOVE_RECURSE
  "libmanytiers_workload.a"
)
