file(REMOVE_RECURSE
  "libmanytiers_demand.a"
)
