# Empty dependencies file for manytiers_demand.
# This may be replaced when dependencies are built.
