file(REMOVE_RECURSE
  "CMakeFiles/manytiers_demand.dir/demand/ced.cpp.o"
  "CMakeFiles/manytiers_demand.dir/demand/ced.cpp.o.d"
  "CMakeFiles/manytiers_demand.dir/demand/estimation.cpp.o"
  "CMakeFiles/manytiers_demand.dir/demand/estimation.cpp.o.d"
  "CMakeFiles/manytiers_demand.dir/demand/logit.cpp.o"
  "CMakeFiles/manytiers_demand.dir/demand/logit.cpp.o.d"
  "libmanytiers_demand.a"
  "libmanytiers_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manytiers_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
