file(REMOVE_RECURSE
  "CMakeFiles/csv_counterfactual.dir/csv_counterfactual.cpp.o"
  "CMakeFiles/csv_counterfactual.dir/csv_counterfactual.cpp.o.d"
  "csv_counterfactual"
  "csv_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
