# Empty compiler generated dependencies file for csv_counterfactual.
# This may be replaced when dependencies are built.
