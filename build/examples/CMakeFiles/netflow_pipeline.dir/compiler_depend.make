# Empty compiler generated dependencies file for netflow_pipeline.
# This may be replaced when dependencies are built.
