# Empty compiler generated dependencies file for tiered_accounting.
# This may be replaced when dependencies are built.
