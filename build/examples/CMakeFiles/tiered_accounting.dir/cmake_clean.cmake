file(REMOVE_RECURSE
  "CMakeFiles/tiered_accounting.dir/tiered_accounting.cpp.o"
  "CMakeFiles/tiered_accounting.dir/tiered_accounting.cpp.o.d"
  "tiered_accounting"
  "tiered_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
