file(REMOVE_RECURSE
  "CMakeFiles/tag_aware_routing.dir/tag_aware_routing.cpp.o"
  "CMakeFiles/tag_aware_routing.dir/tag_aware_routing.cpp.o.d"
  "tag_aware_routing"
  "tag_aware_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_aware_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
