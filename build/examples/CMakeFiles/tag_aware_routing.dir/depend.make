# Empty dependencies file for tag_aware_routing.
# This may be replaced when dependencies are built.
