# Empty dependencies file for peering_decision.
# This may be replaced when dependencies are built.
