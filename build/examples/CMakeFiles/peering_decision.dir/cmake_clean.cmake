file(REMOVE_RECURSE
  "CMakeFiles/peering_decision.dir/peering_decision.cpp.o"
  "CMakeFiles/peering_decision.dir/peering_decision.cpp.o.d"
  "peering_decision"
  "peering_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
