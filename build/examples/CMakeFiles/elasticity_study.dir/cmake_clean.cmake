file(REMOVE_RECURSE
  "CMakeFiles/elasticity_study.dir/elasticity_study.cpp.o"
  "CMakeFiles/elasticity_study.dir/elasticity_study.cpp.o.d"
  "elasticity_study"
  "elasticity_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elasticity_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
