file(REMOVE_RECURSE
  "CMakeFiles/commit_billing.dir/commit_billing.cpp.o"
  "CMakeFiles/commit_billing.dir/commit_billing.cpp.o.d"
  "commit_billing"
  "commit_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
