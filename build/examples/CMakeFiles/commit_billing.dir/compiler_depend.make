# Empty compiler generated dependencies file for commit_billing.
# This may be replaced when dependencies are built.
