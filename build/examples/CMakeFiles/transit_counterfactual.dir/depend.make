# Empty dependencies file for transit_counterfactual.
# This may be replaced when dependencies are built.
