file(REMOVE_RECURSE
  "CMakeFiles/transit_counterfactual.dir/transit_counterfactual.cpp.o"
  "CMakeFiles/transit_counterfactual.dir/transit_counterfactual.cpp.o.d"
  "transit_counterfactual"
  "transit_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
