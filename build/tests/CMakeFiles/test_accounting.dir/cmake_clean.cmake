file(REMOVE_RECURSE
  "CMakeFiles/test_accounting.dir/accounting/accounting_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/accounting_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/bgp_codec_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/bgp_codec_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/billing_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/billing_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/commit_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/commit_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/policy_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/policy_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/route_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/route_test.cpp.o.d"
  "CMakeFiles/test_accounting.dir/accounting/session_test.cpp.o"
  "CMakeFiles/test_accounting.dir/accounting/session_test.cpp.o.d"
  "test_accounting"
  "test_accounting.pdb"
  "test_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
