file(REMOVE_RECURSE
  "CMakeFiles/test_pricing.dir/pricing/counterfactual_test.cpp.o"
  "CMakeFiles/test_pricing.dir/pricing/counterfactual_test.cpp.o.d"
  "CMakeFiles/test_pricing.dir/pricing/engine_test.cpp.o"
  "CMakeFiles/test_pricing.dir/pricing/engine_test.cpp.o.d"
  "CMakeFiles/test_pricing.dir/pricing/scenario_test.cpp.o"
  "CMakeFiles/test_pricing.dir/pricing/scenario_test.cpp.o.d"
  "CMakeFiles/test_pricing.dir/pricing/sensitivity_test.cpp.o"
  "CMakeFiles/test_pricing.dir/pricing/sensitivity_test.cpp.o.d"
  "CMakeFiles/test_pricing.dir/pricing/welfare_test.cpp.o"
  "CMakeFiles/test_pricing.dir/pricing/welfare_test.cpp.o.d"
  "test_pricing"
  "test_pricing.pdb"
  "test_pricing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
