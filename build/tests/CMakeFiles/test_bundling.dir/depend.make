# Empty dependencies file for test_bundling.
# This may be replaced when dependencies are built.
