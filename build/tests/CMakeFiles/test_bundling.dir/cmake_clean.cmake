file(REMOVE_RECURSE
  "CMakeFiles/test_bundling.dir/bundling/bundle_test.cpp.o"
  "CMakeFiles/test_bundling.dir/bundling/bundle_test.cpp.o.d"
  "CMakeFiles/test_bundling.dir/bundling/optimal_test.cpp.o"
  "CMakeFiles/test_bundling.dir/bundling/optimal_test.cpp.o.d"
  "CMakeFiles/test_bundling.dir/bundling/strategies_test.cpp.o"
  "CMakeFiles/test_bundling.dir/bundling/strategies_test.cpp.o.d"
  "test_bundling"
  "test_bundling.pdb"
  "test_bundling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
