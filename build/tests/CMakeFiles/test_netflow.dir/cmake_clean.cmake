file(REMOVE_RECURSE
  "CMakeFiles/test_netflow.dir/netflow/codec_test.cpp.o"
  "CMakeFiles/test_netflow.dir/netflow/codec_test.cpp.o.d"
  "CMakeFiles/test_netflow.dir/netflow/collector_test.cpp.o"
  "CMakeFiles/test_netflow.dir/netflow/collector_test.cpp.o.d"
  "CMakeFiles/test_netflow.dir/netflow/exporter_test.cpp.o"
  "CMakeFiles/test_netflow.dir/netflow/exporter_test.cpp.o.d"
  "test_netflow"
  "test_netflow.pdb"
  "test_netflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
