# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_netflow[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_demand[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_bundling[1]_include.cmake")
include("/root/repo/build/tests/test_pricing[1]_include.cmake")
include("/root/repo/build/tests/test_market[1]_include.cmake")
include("/root/repo/build/tests/test_accounting[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
