file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_logit_demand.dir/bench_fig5_logit_demand.cpp.o"
  "CMakeFiles/bench_fig5_logit_demand.dir/bench_fig5_logit_demand.cpp.o.d"
  "bench_fig5_logit_demand"
  "bench_fig5_logit_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_logit_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
