# Empty dependencies file for bench_fig5_logit_demand.
# This may be replaced when dependencies are built.
