# Empty dependencies file for bench_fig1_market_efficiency.
# This may be replaced when dependencies are built.
