# Empty compiler generated dependencies file for bench_welfare_extension.
# This may be replaced when dependencies are built.
