file(REMOVE_RECURSE
  "CMakeFiles/bench_welfare_extension.dir/bench_welfare_extension.cpp.o"
  "CMakeFiles/bench_welfare_extension.dir/bench_welfare_extension.cpp.o.d"
  "bench_welfare_extension"
  "bench_welfare_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_welfare_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
