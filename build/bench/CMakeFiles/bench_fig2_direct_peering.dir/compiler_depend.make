# Empty compiler generated dependencies file for bench_fig2_direct_peering.
# This may be replaced when dependencies are built.
