file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_direct_peering.dir/bench_fig2_direct_peering.cpp.o"
  "CMakeFiles/bench_fig2_direct_peering.dir/bench_fig2_direct_peering.cpp.o.d"
  "bench_fig2_direct_peering"
  "bench_fig2_direct_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_direct_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
