# Empty compiler generated dependencies file for bench_fig16_s0_sensitivity.
# This may be replaced when dependencies are built.
