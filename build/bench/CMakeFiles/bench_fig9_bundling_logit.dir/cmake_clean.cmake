file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_bundling_logit.dir/bench_fig9_bundling_logit.cpp.o"
  "CMakeFiles/bench_fig9_bundling_logit.dir/bench_fig9_bundling_logit.cpp.o.d"
  "bench_fig9_bundling_logit"
  "bench_fig9_bundling_logit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_bundling_logit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
