# Empty dependencies file for bench_fig9_bundling_logit.
# This may be replaced when dependencies are built.
