# Empty dependencies file for bench_extension_competition.
# This may be replaced when dependencies are built.
