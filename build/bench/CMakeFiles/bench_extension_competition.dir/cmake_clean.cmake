file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_competition.dir/bench_extension_competition.cpp.o"
  "CMakeFiles/bench_extension_competition.dir/bench_extension_competition.cpp.o.d"
  "bench_extension_competition"
  "bench_extension_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
