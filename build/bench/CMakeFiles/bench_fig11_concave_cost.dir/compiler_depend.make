# Empty compiler generated dependencies file for bench_fig11_concave_cost.
# This may be replaced when dependencies are built.
