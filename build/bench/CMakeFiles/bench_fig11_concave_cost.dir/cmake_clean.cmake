file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_concave_cost.dir/bench_fig11_concave_cost.cpp.o"
  "CMakeFiles/bench_fig11_concave_cost.dir/bench_fig11_concave_cost.cpp.o.d"
  "bench_fig11_concave_cost"
  "bench_fig11_concave_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_concave_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
