# Empty dependencies file for bench_fig6_concave_fit.
# This may be replaced when dependencies are built.
