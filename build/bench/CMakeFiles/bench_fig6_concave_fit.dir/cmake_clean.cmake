file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_concave_fit.dir/bench_fig6_concave_fit.cpp.o"
  "CMakeFiles/bench_fig6_concave_fit.dir/bench_fig6_concave_fit.cpp.o.d"
  "bench_fig6_concave_fit"
  "bench_fig6_concave_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_concave_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
