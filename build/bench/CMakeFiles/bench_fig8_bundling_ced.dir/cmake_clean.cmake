file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bundling_ced.dir/bench_fig8_bundling_ced.cpp.o"
  "CMakeFiles/bench_fig8_bundling_ced.dir/bench_fig8_bundling_ced.cpp.o.d"
  "bench_fig8_bundling_ced"
  "bench_fig8_bundling_ced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bundling_ced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
