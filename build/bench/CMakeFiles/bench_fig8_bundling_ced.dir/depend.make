# Empty dependencies file for bench_fig8_bundling_ced.
# This may be replaced when dependencies are built.
