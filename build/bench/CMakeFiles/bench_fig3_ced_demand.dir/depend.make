# Empty dependencies file for bench_fig3_ced_demand.
# This may be replaced when dependencies are built.
