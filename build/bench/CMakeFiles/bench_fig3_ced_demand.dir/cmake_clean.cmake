file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ced_demand.dir/bench_fig3_ced_demand.cpp.o"
  "CMakeFiles/bench_fig3_ced_demand.dir/bench_fig3_ced_demand.cpp.o.d"
  "bench_fig3_ced_demand"
  "bench_fig3_ced_demand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ced_demand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
