file(REMOVE_RECURSE
  "CMakeFiles/bench_accounting_overhead.dir/bench_accounting_overhead.cpp.o"
  "CMakeFiles/bench_accounting_overhead.dir/bench_accounting_overhead.cpp.o.d"
  "bench_accounting_overhead"
  "bench_accounting_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accounting_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
