# Empty dependencies file for bench_accounting_overhead.
# This may be replaced when dependencies are built.
