file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_correlation.dir/bench_ablation_correlation.cpp.o"
  "CMakeFiles/bench_ablation_correlation.dir/bench_ablation_correlation.cpp.o.d"
  "bench_ablation_correlation"
  "bench_ablation_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
