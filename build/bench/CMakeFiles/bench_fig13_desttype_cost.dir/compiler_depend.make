# Empty compiler generated dependencies file for bench_fig13_desttype_cost.
# This may be replaced when dependencies are built.
